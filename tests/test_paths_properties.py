"""Property-based tests for path utilities."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paths

_component = st.text(alphabet=string.ascii_lowercase + string.digits,
                     min_size=1, max_size=6)
_parts = st.lists(_component, min_size=1, max_size=8)
_path = _parts.map(lambda ps: "/" + "/".join(ps))


class TestRoundTrips:
    @settings(max_examples=150, deadline=None)
    @given(_parts)
    def test_split_join_roundtrip(self, parts):
        path = "/" + "/".join(parts)
        assert paths.split_path(path) == parts
        assert paths.normalize(path) == path
        assert paths.join("/", *parts) == path

    @settings(max_examples=150, deadline=None)
    @given(_path)
    def test_parent_and_name_recompose(self, path):
        parent, name = paths.parent_and_name(path)
        assert paths.join(parent, name) == path
        assert paths.depth(parent) == paths.depth(path) - 1

    @settings(max_examples=150, deadline=None)
    @given(_path, st.integers(0, 10))
    def test_truncate_prefix_is_a_prefix(self, path, k):
        prefix = paths.truncate_prefix(path, k)
        assert paths.is_prefix(prefix, path)
        assert paths.depth(prefix) == max(0, paths.depth(path) - k)


class TestPrefixAlgebra:
    @settings(max_examples=150, deadline=None)
    @given(_path)
    def test_ancestors_are_strict_prefixes(self, path):
        for ancestor in paths.ancestors(path):
            assert paths.is_prefix(ancestor, path)
            assert ancestor != path

    @settings(max_examples=150, deadline=None)
    @given(_path, _path)
    def test_common_ancestor_properties(self, a, b):
        lca = paths.common_ancestor(a, b)
        assert paths.is_prefix(lca, a)
        assert paths.is_prefix(lca, b)
        # Maximality: one level deeper is no longer a common prefix.
        deeper_a = paths.split_path(a)[:paths.depth(lca) + 1]
        deeper_b = paths.split_path(b)[:paths.depth(lca) + 1]
        if deeper_a and deeper_b and len(deeper_a) > paths.depth(lca):
            if deeper_a == deeper_b:
                raise AssertionError("lca was not maximal")

    @settings(max_examples=150, deadline=None)
    @given(_path, _path)
    def test_common_ancestor_symmetric(self, a, b):
        assert paths.common_ancestor(a, b) == paths.common_ancestor(b, a)

    @settings(max_examples=150, deadline=None)
    @given(_path, _parts)
    def test_rewrite_prefix_moves_subtree(self, new_prefix_path, suffix):
        old_prefix = "/old/base"
        path = paths.join(old_prefix, *suffix)
        rewritten = paths.rewrite_prefix(path, old_prefix, new_prefix_path)
        assert paths.is_prefix(new_prefix_path, rewritten)
        assert paths.split_path(rewritten)[-len(suffix):] == suffix

    @settings(max_examples=150, deadline=None)
    @given(_path, st.integers(1, 5))
    def test_is_prefix_transitive_along_ancestors(self, path, step):
        chain = paths.ancestors(path) + [path]
        for i in range(len(chain)):
            j = min(i + step, len(chain) - 1)
            assert paths.is_prefix(chain[i], chain[j])
