"""Property test: TopDirPathCache is semantically transparent.

For any random directory tree and any sequence of lookups, a cached
IndexNodeState must return exactly the same (target id, permission) as an
uncached one — caching may only change the *cost*, never the answer.
Mutations interleave to exercise invalidation.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MetadataError
from repro.indexnode.state import IndexNodeState
from repro.types import ROOT_ID, Permission


def grow_tree(state: IndexNodeState, rng: random.Random, num_dirs: int):
    """Randomly grow a directory tree; returns path -> id."""
    paths = {"/": ROOT_ID}
    next_id = 2
    for _ in range(num_dirs):
        parent = rng.choice(sorted(paths))
        name = f"d{next_id}"
        child = (parent.rstrip("/") or "") + "/" + name
        perm = rng.choice([Permission.ALL,
                           Permission.READ | Permission.EXECUTE])
        state.bulk_insert_dir(paths[parent], name, next_id, permission=perm)
        paths[child] = next_id
        next_id += 1
    return paths


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2 ** 31), st.integers(1, 4))
def test_cached_and_uncached_lookups_agree(seed, k):
    rng = random.Random(seed)
    cached = IndexNodeState(cache_k=k, cache_enabled=True)
    plain = IndexNodeState(cache_k=k, cache_enabled=False)
    paths_a = grow_tree(cached, random.Random(seed), 25)
    paths_b = grow_tree(plain, random.Random(seed), 25)
    assert paths_a == paths_b
    all_paths = sorted(p for p in paths_a if p != "/")
    for step in range(60):
        action = rng.random()
        if action < 0.75 or len(all_paths) < 2:
            # Lookup a random (possibly repeated) path in both states.
            path = rng.choice(all_paths)
            want = rng.choice(["dir", "parent"])
            try:
                got_cached = cached.lookup(path, want=want)
                got_plain = plain.lookup(path, want=want)
            except MetadataError:
                continue
            assert got_cached.target_id == got_plain.target_id, (path, want)
            assert got_cached.permission == got_plain.permission, (path, want)
        elif action < 0.9:
            # setperm on a random directory (invalidation path).
            path = rng.choice(all_paths)
            meta_path, name = path.rsplit("/", 1)
            pid = paths_a[meta_path or "/"]
            perm = rng.choice([Permission.ALL, Permission.READ,
                               Permission.READ | Permission.EXECUTE])
            command = ("setperm", pid, name, int(perm), path)
            assert cached.apply(command) == plain.apply(command)
        else:
            # Purge the cached state's Invalidator (background thread tick).
            cached.invalidator.purge_pending()
    # Final sweep: every path must agree exactly.
    cached.invalidator.purge_pending()
    for path in all_paths:
        a = cached.lookup(path, want="dir")
        b = plain.lookup(path, want="dir")
        assert (a.target_id, a.permission) == (b.target_id, b.permission)
