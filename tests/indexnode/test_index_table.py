"""Unit tests for the IndexTable."""

import pytest

from repro.errors import AlreadyExistsError, NoSuchPathError, RenameLoopError
from repro.indexnode.index_table import IndexTable
from repro.types import ROOT_ID, AccessMeta, Permission


def build_tree():
    """/a(2)/b(3)/c(4);  /x(5)"""
    table = IndexTable()
    table.insert(AccessMeta(pid=ROOT_ID, name="a", id=2))
    table.insert(AccessMeta(pid=2, name="b", id=3))
    table.insert(AccessMeta(pid=3, name="c", id=4))
    table.insert(AccessMeta(pid=ROOT_ID, name="x", id=5))
    return table


class TestCrud:
    def test_insert_get(self):
        table = build_tree()
        meta = table.get(2, "b")
        assert meta.id == 3
        assert len(table) == 4
        assert table.memory_bytes == 4 * IndexTable.ENTRY_BYTES

    def test_duplicate_key_rejected(self):
        table = build_tree()
        with pytest.raises(AlreadyExistsError):
            table.insert(AccessMeta(pid=ROOT_ID, name="a", id=99))

    def test_duplicate_id_rejected(self):
        table = build_tree()
        with pytest.raises(AlreadyExistsError):
            table.insert(AccessMeta(pid=5, name="fresh", id=2))

    def test_root_id_reserved(self):
        table = IndexTable()
        with pytest.raises(AlreadyExistsError):
            table.insert(AccessMeta(pid=5, name="evil", id=ROOT_ID))

    def test_remove(self):
        table = build_tree()
        table.remove(3, "c")
        assert table.get(3, "c") is None
        assert table.locate(4) is None

    def test_remove_missing_raises(self):
        with pytest.raises(NoSuchPathError):
            build_tree().remove(9, "nope")

    def test_locate_reverse_map(self):
        table = build_tree()
        assert table.locate(3) == (2, "b")
        assert table.locate(ROOT_ID) is None

    def test_replace_updates_permission(self):
        table = build_tree()
        meta = table.get(2, "b")
        import dataclasses
        table.replace(dataclasses.replace(meta, permission=Permission.READ))
        assert table.get(2, "b").permission == Permission.READ


class TestResolution:
    def test_resolve_full_chain(self):
        table = build_tree()
        dir_id, perm, probes = table.resolve_dir(["a", "b", "c"])
        assert dir_id == 4
        assert probes == 3
        assert perm == Permission.ALL

    def test_resolve_empty_parts_is_root(self):
        table = build_tree()
        dir_id, perm, probes = table.resolve_dir([])
        assert dir_id == ROOT_ID
        assert probes == 0

    def test_resolve_missing_component(self):
        table = build_tree()
        with pytest.raises(NoSuchPathError):
            table.resolve_dir(["a", "ghost", "c"], path_for_errors="/a/ghost/c")

    def test_permission_intersection(self):
        table = IndexTable()
        table.insert(AccessMeta(pid=ROOT_ID, name="a", id=2,
                                permission=Permission.READ | Permission.EXECUTE))
        table.insert(AccessMeta(pid=2, name="b", id=3,
                                permission=Permission.ALL))
        _, perm, _ = table.resolve_dir(["a", "b"])
        assert perm == Permission.READ | Permission.EXECUTE

    def test_resolve_from_midpoint(self):
        table = build_tree()
        dir_id, _, probes = table.resolve_dir(["c"], start_id=3)
        assert dir_id == 4
        assert probes == 1

    def test_path_of(self):
        table = build_tree()
        assert table.path_of(4) == "/a/b/c"
        assert table.path_of(ROOT_ID) == "/"

    def test_ancestor_chain(self):
        table = build_tree()
        assert table.ancestor_chain(4) == [4, 3, 2, ROOT_ID]
        assert table.ancestor_chain(ROOT_ID) == [ROOT_ID]

    def test_is_ancestor(self):
        table = build_tree()
        assert table.is_ancestor(2, 4)
        assert table.is_ancestor(4, 4)
        assert not table.is_ancestor(4, 2)
        assert not table.is_ancestor(5, 4)


class TestLocks:
    def test_lock_cycle(self):
        table = build_tree()
        table.set_lock(2, "b", "uuid-1")
        assert table.get(2, "b").locked
        assert table.clear_lock(2, "b", "uuid-1")
        assert not table.get(2, "b").locked

    def test_clear_with_wrong_owner_fails(self):
        table = build_tree()
        table.set_lock(2, "b", "uuid-1")
        assert not table.clear_lock(2, "b", "uuid-2")
        assert table.get(2, "b").locked

    def test_clear_unlocked_is_noop(self):
        table = build_tree()
        assert not table.clear_lock(2, "b")

    def test_locked_on_chain(self):
        table = build_tree()
        table.set_lock(2, "b", "u1")  # dir id 3
        locked = table.locked_on_chain(4, ROOT_ID)
        assert locked == [3]
        # Stop at the LCA: nothing above id 3 is examined.
        assert table.locked_on_chain(4, 3) == []


class TestRename:
    def test_loop_detection(self):
        table = build_tree()
        with pytest.raises(RenameLoopError):
            table.check_rename_loop(src_id=2, dst_parent_id=4)  # /a under /a/b/c
        table.check_rename_loop(src_id=4, dst_parent_id=5)  # fine

    def test_rename_moves_entry_and_clears_lock(self):
        table = build_tree()
        table.set_lock(2, "b", "u1")
        moved = table.rename(2, "b", 5, "b2")
        assert table.get(2, "b") is None
        assert table.get(5, "b2").id == 3
        assert not moved.locked
        assert table.locate(3) == (5, "b2")
        # Children keep resolving through the moved directory.
        assert table.path_of(4) == "/x/b2/c"

    def test_rename_missing_source(self):
        with pytest.raises(NoSuchPathError):
            build_tree().rename(9, "nope", 5, "y")

    def test_rename_destination_conflict(self):
        table = build_tree()
        with pytest.raises(AlreadyExistsError):
            table.rename(2, "b", ROOT_ID, "x")
