"""Unit tests for the Invalidator (PrefixTree + RemovalList coordination)."""

from repro.indexnode.invalidator import Invalidator
from repro.indexnode.path_cache import TopDirPathCache
from repro.types import Permission


def build(k=2):
    cache = TopDirPathCache(k=k)
    return cache, Invalidator(cache)


def test_try_cache_inserts_and_mirrors_in_tree():
    cache, inv = build()
    v = inv.version()
    assert inv.try_cache("/a/b", 5, Permission.ALL, v)
    assert "/a/b" in cache
    assert "/a/b" in inv.prefix_tree


def test_try_cache_rejects_duplicate():
    cache, inv = build()
    v = inv.version()
    inv.try_cache("/a/b", 5, Permission.ALL, v)
    assert not inv.try_cache("/a/b", 5, Permission.ALL, inv.version())


def test_try_cache_rejects_on_version_race():
    """§5.1.2: a modification racing the lookup forbids caching."""
    cache, inv = build()
    v = inv.version()
    inv.mark_modifying("/elsewhere")  # bumps the version
    assert not inv.try_cache("/a/b", 5, Permission.ALL, v)
    assert "/a/b" not in cache


def test_try_cache_rejects_when_marked():
    cache, inv = build()
    inv.mark_modifying("/a")
    assert not inv.try_cache("/a/b", 5, Permission.ALL, inv.version())


def test_blocking_modification_prefix_match():
    cache, inv = build()
    inv.mark_modifying("/a/b")
    assert inv.blocking_modification("/a/b/c/d") == "/a/b"
    assert inv.blocking_modification("/a/bc") is None
    assert inv.blocking_modification("/z") is None


def test_unmark_restores_lookups():
    cache, inv = build()
    inv.mark_modifying("/a")
    inv.unmark("/a")
    assert inv.blocking_modification("/a/b") is None


def test_purge_removes_affected_range_only():
    cache, inv = build()
    for prefix, dir_id in (("/a/b", 5), ("/a/b/c", 6), ("/z", 9)):
        inv.try_cache(prefix, dir_id, Permission.ALL, inv.version())
    inv.mark_modifying("/a/b")
    removed = inv.purge_pending()
    assert removed == 2
    assert "/z" in cache
    assert "/a/b" not in cache and "/a/b/c" not in cache
    # RemovalList drained: lookups under /a/b may use the cache again.
    assert inv.blocking_modification("/a/b/x") is None


def test_purge_empty_is_cheap_noop():
    cache, inv = build()
    assert inv.purge_pending() == 0
    assert inv.purge_rounds == 0


def test_on_rmdir_drops_own_entry_without_marking():
    cache, inv = build()
    inv.try_cache("/a/b", 5, Permission.ALL, inv.version())
    inv.on_rmdir("/a/b")
    assert "/a/b" not in cache
    assert inv.blocking_modification("/a/b") is None  # no RemovalList entry


def test_on_rmdir_uncached_directory_is_noop():
    cache, inv = build()
    inv.on_rmdir("/never/cached")
    assert inv.purged_entries == 0


def test_pending_paths_listing():
    cache, inv = build()
    inv.mark_modifying("/b")
    inv.mark_modifying("/a")
    assert inv.pending_paths() == ["/a", "/b"]
