"""Unit tests for the IndexNode state machine: lookup workflow + apply."""

import pytest

from repro.errors import InvalidPathError, NoSuchPathError
from repro.indexnode.state import IndexNodeState
from repro.types import ROOT_ID, Permission


def build_state(k=2, cache_enabled=True, depth=5):
    """Chain /d1/d2/.../dN with ids 2..N+1."""
    state = IndexNodeState(cache_k=k, cache_enabled=cache_enabled)
    pid = ROOT_ID
    for level in range(1, depth + 1):
        dir_id = level + 1
        state.bulk_insert_dir(pid, f"d{level}", dir_id)
        pid = dir_id
    return state


class TestLookup:
    def test_parent_mode_resolves_parent(self):
        state = build_state()
        out = state.lookup("/d1/d2/d3/obj.bin", want="parent")
        assert out.target_id == 4  # id of /d1/d2/d3
        assert out.final_name == "obj.bin"
        assert out.depth == 4

    def test_dir_mode_resolves_full_path(self):
        state = build_state()
        out = state.lookup("/d1/d2/d3", want="dir")
        assert out.target_id == 4
        assert out.final_name is None

    def test_root_dir_lookup(self):
        state = build_state()
        out = state.lookup("/", want="dir")
        assert out.target_id == ROOT_ID
        assert out.index_probes == 0

    def test_parent_of_root_rejected(self):
        with pytest.raises(InvalidPathError):
            build_state().lookup("/", want="parent")

    def test_unknown_want_rejected(self):
        with pytest.raises(ValueError):
            build_state().lookup("/a", want="everything")

    def test_missing_component_raises(self):
        state = build_state()
        with pytest.raises(NoSuchPathError):
            state.lookup("/d1/ghost/d3", want="dir")

    def test_first_lookup_populates_cache(self):
        state = build_state(k=2)
        out1 = state.lookup("/d1/d2/d3/d4/d5", want="dir")
        assert not out1.cache_hit
        assert out1.index_probes == 5
        assert "/d1/d2/d3" in state.cache

    def test_second_lookup_hits_cache_and_probes_less(self):
        state = build_state(k=2)
        state.lookup("/d1/d2/d3/d4/d5", want="dir")
        out2 = state.lookup("/d1/d2/d3/d4/d5", want="dir")
        assert out2.cache_hit
        assert out2.index_probes == 2  # only the final k levels
        assert out2.target_id == 6

    def test_cache_disabled_always_full_resolution(self):
        state = build_state(k=2, cache_enabled=False)
        state.lookup("/d1/d2/d3/d4/d5", want="dir")
        out = state.lookup("/d1/d2/d3/d4/d5", want="dir")
        assert not out.cache_hit
        assert out.index_probes == 5

    def test_blocked_lookup_bypasses_cache(self):
        state = build_state(k=2)
        state.lookup("/d1/d2/d3/d4/d5", want="dir")  # warm the cache
        state.invalidator.mark_modifying("/d1/d2")
        out = state.lookup("/d1/d2/d3/d4/d5", want="dir")
        assert out.bypassed_cache
        assert not out.cache_hit
        assert out.index_probes == 5  # full IndexTable traversal

    def test_shared_prefix_across_siblings(self):
        state = build_state(k=1, depth=3)
        state.bulk_insert_dir(3, "sib", 99)  # /d1/d2/sib
        state.lookup("/d1/d2/d3", want="dir")
        out = state.lookup("/d1/d2/sib", want="dir")
        assert out.cache_hit  # both share prefix /d1/d2

    def test_parent_mode_shallow_path_has_no_prefix(self):
        state = build_state(k=3)
        out = state.lookup("/d1/obj", want="parent")
        assert out.cache_probes == 0
        assert out.target_id == 2

    def test_permission_aggregation_through_cache(self):
        state = IndexNodeState(cache_k=1)
        state.bulk_insert_dir(ROOT_ID, "a", 2,
                              permission=Permission.READ | Permission.EXECUTE)
        state.bulk_insert_dir(2, "b", 3)
        state.lookup("/a/b", want="dir")
        out = state.lookup("/a/b", want="dir")
        assert out.cache_hit
        assert out.permission == Permission.READ | Permission.EXECUTE


class TestApply:
    def test_mkdir_then_lookup(self):
        state = build_state(depth=1)
        result = state.apply(("mkdir", 2, "new", 50, int(Permission.ALL)))
        assert result == ("ok", 50)
        assert state.lookup("/d1/new", want="dir").target_id == 50

    def test_mkdir_idempotent_retry(self):
        state = build_state(depth=1)
        state.apply(("mkdir", 2, "new", 50, int(Permission.ALL)))
        assert state.apply(("mkdir", 2, "new", 50, int(Permission.ALL))) == ("ok", 50)

    def test_mkdir_conflict_different_id(self):
        state = build_state(depth=1)
        state.apply(("mkdir", 2, "new", 50, int(Permission.ALL)))
        assert state.apply(("mkdir", 2, "new", 51, int(Permission.ALL)))[0] == "exists"

    def test_rmdir(self):
        state = build_state(depth=2)
        assert state.apply(("rmdir", 2, "d2", "/d1/d2")) == ("ok", 3)
        with pytest.raises(NoSuchPathError):
            state.lookup("/d1/d2", want="dir")

    def test_rmdir_missing(self):
        state = build_state(depth=1)
        assert state.apply(("rmdir", 2, "ghost", "/d1/ghost"))[0] == "missing"

    def test_rename_lock_then_commit(self):
        state = build_state(depth=3)
        state.bulk_insert_dir(ROOT_ID, "dst", 90)
        assert state.apply(("rename_lock", 3, "d3", "u1", "/d1/d2/d3"))[0] == "ok"
        assert state.table.get(3, "d3").locked
        # Lookups under the locked subtree bypass the cache.
        assert state.lookup("/d1/d2/d3", want="dir").bypassed_cache
        assert state.apply(("rename_commit", 3, "d3", 90, "moved"))[0] == "ok"
        meta = state.table.get(90, "moved")
        assert meta.id == 4 and not meta.locked
        assert state.lookup("/dst/moved", want="dir").target_id == 4

    def test_rename_lock_conflict(self):
        state = build_state(depth=2)
        state.apply(("rename_lock", 2, "d2", "u1", "/d1/d2"))
        assert state.apply(("rename_lock", 2, "d2", "u2", "/d1/d2")) == \
            ("locked", "u1")

    def test_rename_lock_idempotent_same_owner(self):
        state = build_state(depth=2)
        state.apply(("rename_lock", 2, "d2", "u1", "/d1/d2"))
        assert state.apply(("rename_lock", 2, "d2", "u1", "/d1/d2"))[0] == "ok"

    def test_rename_abort_unlocks_and_unmarks(self):
        state = build_state(depth=2)
        state.apply(("rename_lock", 2, "d2", "u1", "/d1/d2"))
        state.apply(("rename_abort", 2, "d2", "u1", "/d1/d2"))
        assert not state.table.get(2, "d2").locked
        assert not state.lookup("/d1/d2", want="dir").bypassed_cache

    def test_rename_commit_invalidates_stale_cache_after_purge(self):
        state = build_state(k=1, depth=4)
        state.lookup("/d1/d2/d3/d4", want="dir")
        assert "/d1/d2/d3" in state.cache
        state.bulk_insert_dir(ROOT_ID, "dst", 90)
        state.apply(("rename_lock", 2, "d2", "u1", "/d1/d2"))
        state.apply(("rename_commit", 2, "d2", 90, "d2"))
        # Before the purge, lookups bypass the cache (RemovalList mark).
        assert state.lookup("/dst/d2/d3/d4", want="dir").target_id == 5
        state.invalidator.purge_pending()
        assert "/d1/d2/d3" not in state.cache
        with pytest.raises(NoSuchPathError):
            state.lookup("/d1/d2/d3/d4", want="dir")

    def test_setperm_updates_and_marks(self):
        state = build_state(depth=2)
        result = state.apply(("setperm", 2, "d2", int(Permission.READ), "/d1/d2"))
        assert result[0] == "ok"
        assert state.table.get(2, "d2").permission == Permission.READ
        assert state.lookup("/d1/d2", want="dir").bypassed_cache

    def test_unknown_command(self):
        assert build_state().apply(("frobnicate", 1))[0] == "err"

    def test_applied_counter(self):
        state = build_state(depth=1)
        state.apply(("mkdir", 2, "x", 50, int(Permission.ALL)))
        state.apply(("rmdir", 2, "x", "/d1/x"))
        assert state.applied_commands == 2
