"""Unit tests for TopDirPathCache."""

import pytest

from repro.indexnode.path_cache import TopDirPathCache
from repro.types import Permission


def test_k_validation():
    with pytest.raises(ValueError):
        TopDirPathCache(k=-1)


def test_cacheable_prefix_truncates_k_levels():
    cache = TopDirPathCache(k=3)
    assert cache.cacheable_prefix("/A/C/E/G/H") == "/A/C"


def test_shallow_paths_not_cacheable():
    cache = TopDirPathCache(k=3)
    assert cache.cacheable_prefix("/A/C/E") is None
    assert cache.cacheable_prefix("/A") is None


def test_disabled_cache_never_offers_prefix():
    cache = TopDirPathCache(k=3, enabled=False)
    assert cache.cacheable_prefix("/A/B/C/D/E") is None
    cache.insert("/A/B", 7, Permission.ALL)
    assert len(cache) == 0


def test_probe_hit_and_miss_counters():
    cache = TopDirPathCache(k=2)
    cache.insert("/a/b", 5, Permission.ALL)
    assert cache.probe("/a/b").dir_id == 5
    assert cache.probe("/nope") is None
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.hit_rate == 0.5


def test_insert_root_ignored():
    cache = TopDirPathCache(k=1)
    cache.insert("/", 1, Permission.ALL)
    assert len(cache) == 0


def test_remove():
    cache = TopDirPathCache(k=2)
    cache.insert("/a/b", 5, Permission.ALL)
    assert cache.remove("/a/b")
    assert not cache.remove("/a/b")
    assert cache.invalidations == 1


def test_clear_counts_invalidations():
    cache = TopDirPathCache(k=2)
    cache.insert("/a", 2, Permission.ALL)
    cache.insert("/b", 3, Permission.ALL)
    cache.clear()
    assert cache.invalidations == 2
    assert len(cache) == 0


def test_memory_accounting_scales_with_entries():
    cache = TopDirPathCache(k=1)
    assert cache.memory_bytes == 0
    cache.insert("/a", 2, Permission.ALL)
    one = cache.memory_bytes
    cache.insert("/a/verylongdirectoryname", 3, Permission.ALL)
    assert cache.memory_bytes > 2 * one


def test_permission_stored_with_entry():
    cache = TopDirPathCache(k=1)
    cache.insert("/a", 2, Permission.READ)
    assert cache.probe("/a").permission == Permission.READ
