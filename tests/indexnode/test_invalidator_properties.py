"""Property-based tests for the Invalidator's coherence guarantees."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexnode.invalidator import Invalidator
from repro.indexnode.path_cache import TopDirPathCache
from repro.paths import is_prefix
from repro.types import Permission

_component = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=3)
_path = st.lists(_component, min_size=1, max_size=5).map(
    lambda ps: "/" + "/".join(ps))

_action = st.one_of(
    st.tuples(st.just("cache"), _path),
    st.tuples(st.just("mark"), _path),
    st.tuples(st.just("unmark"), _path),
    st.tuples(st.just("purge"), st.just("")),
    st.tuples(st.just("rmdir"), _path),
)


class TestCoherenceInvariants:
    @settings(max_examples=120, deadline=None)
    @given(st.lists(_action, max_size=40))
    def test_no_cached_entry_survives_under_a_mark_after_purge(self, actions):
        """Whatever the interleaving, after a purge no cache entry lies
        under any path that was marked at purge time — the §5.1.2
        correctness condition."""
        cache = TopDirPathCache(k=2)
        inv = Invalidator(cache)
        dir_ids = iter(range(2, 10_000))
        for action, path in actions:
            if action == "cache":
                inv.try_cache(path, next(dir_ids), Permission.ALL,
                              inv.version())
            elif action == "mark":
                inv.mark_modifying(path)
            elif action == "unmark":
                inv.unmark(path)
            elif action == "rmdir":
                inv.on_rmdir(path)
            elif action == "purge":
                marked = inv.pending_paths()
                inv.purge_pending()
                for mark in marked:
                    for prefix in list(cache._entries):
                        assert not is_prefix(mark, prefix), (mark, prefix)
        # Final purge drains everything.
        inv.purge_pending()
        assert inv.pending_paths() == []

    @settings(max_examples=120, deadline=None)
    @given(st.lists(_action, max_size=40))
    def test_tree_mirrors_cache_exactly(self, actions):
        """PrefixTree must always contain exactly the cached prefixes —
        otherwise range invalidation would miss (or over-purge) entries."""
        cache = TopDirPathCache(k=2)
        inv = Invalidator(cache)
        dir_ids = iter(range(2, 10_000))
        for action, path in actions:
            if action == "cache":
                inv.try_cache(path, next(dir_ids), Permission.ALL,
                              inv.version())
            elif action == "mark":
                inv.mark_modifying(path)
            elif action == "unmark":
                inv.unmark(path)
            elif action == "rmdir":
                inv.on_rmdir(path)
            elif action == "purge":
                inv.purge_pending()
            assert sorted(inv.prefix_tree.paths()) == sorted(cache._entries)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(_path, min_size=1, max_size=15), _path)
    def test_blocked_lookup_iff_marked_prefix(self, marks, probe):
        cache = TopDirPathCache(k=2)
        inv = Invalidator(cache)
        for mark in marks:
            inv.mark_modifying(mark)
        expected = any(is_prefix(m, probe) for m in marks)
        assert (inv.blocking_modification(probe) is not None) == expected
