"""Integration tests for IndexNodeService: RPC surface, follower reads,
rename preparation and the background Invalidator purge."""

import pytest

from repro.core.config import MantleConfig
from repro.core.service import MantleSystem
from repro.errors import (
    NoSuchPathError,
    RenameLockConflict,
    RenameLoopError,
)
from repro.raft.node import NotLeaderError, Role


def build(**overrides):
    config = MantleConfig(num_db_servers=2, num_db_shards=4, num_proxies=1,
                          index_replicas=3, index_cores=8, db_cores=8,
                          proxy_cores=8).copy(**overrides)
    system = MantleSystem(config)
    system.startup()
    return system


def seed_tree(system):
    for path in ("/a", "/a/b", "/a/b/c", "/dst"):
        system.bulk_mkdir(path)
    system.bulk_create("/a/b/c/obj")


def rpc(system, service, method, *args):
    def body():
        result = yield from system.network.rpc(service, method, *args)
        return result
    return system.sim.run_process(body())


class TestLookupRPC:
    def test_leader_lookup(self):
        system = build()
        seed_tree(system)
        leader = system.index_group.leader_or_raise()
        service = system.index_services[leader.id]
        outcome = rpc(system, service, "lookup", "/a/b/c/obj", "parent")
        assert outcome.final_name == "obj"
        assert outcome.depth == 4
        assert service.lookups_served == 1
        system.shutdown()

    def test_follower_lookup_waits_for_barrier(self):
        system = build()
        seed_tree(system)
        leader = system.index_group.leader_or_raise()
        follower_id = next(nid for nid, node in system.index_group.nodes.items()
                           if node.role is Role.FOLLOWER)
        follower_service = system.index_services[follower_id]
        # Mutate through the leader, then read from the follower: the
        # commitIndex barrier must make the new directory visible.
        result = rpc(system, system.index_services[leader.id], "mutate",
                     ("mkdir", system.root_id, "fresh",
                      system.ids.next(), 7))
        assert result > 0
        outcome = rpc(system, follower_service, "lookup", "/fresh", "dir")
        assert outcome.target_id == result
        system.shutdown()

    def test_lookup_missing_path_raises(self):
        system = build()
        seed_tree(system)
        leader = system.index_group.leader_or_raise()
        with pytest.raises(NoSuchPathError):
            rpc(system, system.index_services[leader.id],
                "lookup", "/nope/deep", "dir")
        system.shutdown()


class TestRenamePrepare:
    def _leader_service(self, system):
        return system.index_services[system.index_group.leader_or_raise().id]

    def test_prepare_locks_source(self):
        system = build()
        seed_tree(system)
        service = self._leader_service(system)
        prep = rpc(system, service, "rename_prepare",
                   "/a/b", "/dst/b2", "uuid-1")
        assert prep.src_name == "b"
        assert prep.dst_name == "b2"
        leader = system.index_group.leader_or_raise()
        meta = leader.state_machine.table.get(prep.src_pid, "b")
        assert meta.locked and meta.lock_owner == "uuid-1"
        system.shutdown()

    def test_prepare_is_idempotent_for_same_uuid(self):
        """§5.3: a proxy retry with the same UUID recognises its own lock."""
        system = build()
        seed_tree(system)
        service = self._leader_service(system)
        first = rpc(system, service, "rename_prepare",
                    "/a/b", "/dst/b2", "uuid-1")
        second = rpc(system, service, "rename_prepare",
                     "/a/b", "/dst/b2", "uuid-1")
        assert first.src_id == second.src_id
        system.shutdown()

    def test_prepare_conflicts_for_other_uuid(self):
        system = build()
        seed_tree(system)
        service = self._leader_service(system)
        rpc(system, service, "rename_prepare", "/a/b", "/dst/b2", "uuid-1")
        with pytest.raises(RenameLockConflict):
            rpc(system, service, "rename_prepare",
                "/a/b", "/dst/other", "uuid-2")
        system.shutdown()

    def test_prepare_detects_loop(self):
        system = build()
        seed_tree(system)
        service = self._leader_service(system)
        with pytest.raises(RenameLoopError):
            rpc(system, service, "rename_prepare",
                "/a", "/a/b/c/a2", "uuid-1")
        system.shutdown()

    def test_prepare_missing_source(self):
        system = build()
        seed_tree(system)
        with pytest.raises(NoSuchPathError):
            rpc(system, self._leader_service(system), "rename_prepare",
                "/ghost", "/dst/g", "uuid-1")
        system.shutdown()

    def test_prepare_conflicts_with_locked_destination_chain(self):
        """Figure 9 step 6: a lock on the destination's ancestry aborts."""
        system = build()
        seed_tree(system)
        system.bulk_mkdir("/dst/inner")
        service = self._leader_service(system)
        # First rename locks /dst-side ancestor /a/b... lock /dst itself by
        # preparing a rename of /dst/inner's parent chain member.
        rpc(system, service, "rename_prepare", "/dst", "/a/dstmoved", "u1")
        with pytest.raises(RenameLockConflict):
            rpc(system, service, "rename_prepare",
                "/a/b", "/dst/inner/b2", "u2")
        system.shutdown()

    def test_prepare_on_follower_raises_not_leader(self):
        system = build()
        seed_tree(system)
        follower_id = next(
            nid for nid, node in system.index_group.nodes.items()
            if node.role is Role.FOLLOWER)
        with pytest.raises(NotLeaderError):
            rpc(system, system.index_services[follower_id],
                "rename_prepare", "/a/b", "/dst/b2", "u1")
        system.shutdown()

    def test_abort_after_conflict_releases_lock(self):
        system = build()
        seed_tree(system)
        service = self._leader_service(system)
        prep = rpc(system, service, "rename_prepare",
                   "/a/b", "/dst/b2", "uuid-1")
        rpc(system, service, "mutate",
            ("rename_abort", prep.src_pid, prep.src_name, "uuid-1",
             prep.src_path))
        leader = system.index_group.leader_or_raise()
        assert not leader.state_machine.table.get(prep.src_pid, "b").locked
        # Another rename may now proceed.
        prep2 = rpc(system, service, "rename_prepare",
                    "/a/b", "/dst/b3", "uuid-2")
        assert prep2.src_id == prep.src_id
        system.shutdown()


class TestInvalidatorPurge:
    def test_background_purge_cleans_marks_on_all_replicas(self):
        system = build()
        # Deep tree so prefixes are cacheable at k=3.
        for path in ("/p", "/p/q", "/p/q/r", "/p/q/r/s", "/p/q/r/s/t",
                     "/dst"):
            system.bulk_mkdir(path)
        leader = system.index_group.leader_or_raise()
        service = system.index_services[leader.id]
        # Warm the leader's cache.
        rpc(system, service, "lookup", "/p/q/r/s/t", "dir")
        assert len(leader.state_machine.cache) > 0
        # Rename an ancestor through the full op path.
        proxy = system.proxies[0]
        from repro.sim.stats import OpContext
        system.sim.run_process(
            proxy.op_dirrename("/p/q", "/dst/q2", OpContext("dirrename")))
        # Let the purge loops run.
        system.sim.run(until=system.sim.now + 5 * 200.0 + 1)
        for node in system.index_group.nodes.values():
            assert not node.state_machine.invalidator.pending_paths()
        assert len(leader.state_machine.invalidator.cached_under("/p/q")) == 0
        system.shutdown()

    def test_service_stop_halts_purger(self):
        system = build()
        leader = system.index_group.leader_or_raise()
        service = system.index_services[leader.id]
        service.stop()
        assert service._purger is None
        system.shutdown()
