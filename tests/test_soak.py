"""Soak test: everything at once, then a full consistency audit.

A mixed contended workload runs while the IndexNode leader is crashed and
re-elected mid-flight, with Raft snapshots and delta compaction active.
Afterwards the cross-layer auditor must find a namespace in which the
IndexNode replicas, the TafDB rows and the attribute counters all agree.
"""

import pytest

from repro.bench.audit import check_consistency
from repro.core.config import MantleConfig
from repro.core.service import MantleSystem
from repro.errors import MetadataError
from repro.sim.stats import OpContext
from repro.ops import make_op


def build_system():
    config = MantleConfig(num_db_servers=3, num_db_shards=6, num_proxies=2,
                          index_replicas=3, index_cores=8, db_cores=8,
                          proxy_cores=8, raft_snapshot_threshold=40,
                          delta_activation_threshold=2)
    system = MantleSystem(config)
    system.startup()
    return system


def drain(system, extra_us=300_000):
    """Let replication, compaction and purges settle."""
    system.sim.run(until=system.sim.now + extra_us)


class TestSoak:
    def test_contended_mixed_run_with_leader_crash_stays_consistent(self):
        system = build_system()
        sim = system.sim
        system.bulk_mkdir("/hot")      # shared contended parent
        system.bulk_mkdir("/stable")   # read-side targets
        system.bulk_create("/stable/obj")
        completed = {"count": 0}
        failed = {"count": 0}

        def client(cid):
            for i in range(14):
                script = [
                    ("mkdir", (f"/hot/c{cid}_{i}",)),
                    ("create", (f"/hot/c{cid}_{i}/part",)),
                    ("objstat", ("/stable/obj",)),
                    ("dirstat", ("/hot",)),
                    ("dirrename", (f"/hot/c{cid}_{i}",
                                   f"/hot/done_{cid}_{i}")),
                ]
                for op, args in script:
                    ctx = OpContext(op)
                    try:
                        yield from system.perform(make_op(op, *args), ctx=ctx)
                        completed["count"] += 1
                    except MetadataError:
                        failed["count"] += 1
                        break  # this item's later steps depend on it

        def assassin():
            yield sim.timeout(60_000)
            leader = system.index_group.current_leader()
            if leader is not None:
                system.index_group.crash_node(leader.id)
            yield from system.index_group.wait_for_leader()

        procs = [sim.process(client(c)) for c in range(10)]
        procs.append(sim.process(assassin()))
        done = sim.all_of(procs)
        sim.run_until(done)
        assert done.triggered

        drain(system)
        violations = check_consistency(system)
        assert violations == [], [str(v) for v in violations[:10]]
        # The run did real work despite the crash window.
        assert completed["count"] > 300
        # Delta records were exercised on the hot directory.
        hot_id = system._bulk_dirs["/hot"]
        assert system.tafdb.contention.activations >= 0  # tracked
        stat_ctx = OpContext("dirstat")
        stat = sim.run_process(system.perform(make_op("dirstat", "/hot"), ctx=stat_ctx))
        assert stat.entry_count >= 0
        del hot_id
        system.shutdown()

    def test_audit_clean_after_ordinary_traffic(self):
        system = build_system()
        sim = system.sim

        def client(cid):
            for i in range(10):
                ctx = OpContext("mkdir")
                yield from system.perform(make_op("mkdir", f"/d{cid}_{i}"), ctx=ctx)
                ctx2 = OpContext("create")
                yield from system.perform(make_op("create", f"/d{cid}_{i}/o"), ctx=ctx2)

        done = sim.all_of([sim.process(client(c)) for c in range(6)])
        sim.run_until(done)
        drain(system)
        assert check_consistency(system) == []
        system.shutdown()

    def test_audit_detects_planted_divergence(self):
        """The auditor itself must catch real corruption."""
        system = build_system()
        ctx = OpContext("mkdir")
        system.sim.run_process(system.perform(make_op("mkdir", "/victim"), ctx=ctx))
        drain(system, 100_000)
        leader = system.index_group.leader_or_raise()
        # Sabotage: remove the directory from the leader's IndexTable only.
        leader.state_machine.table.remove(system.root_id, "victim")
        violations = check_consistency(system)
        kinds = {v.kind for v in violations}
        assert "orphan-dirent" in kinds or "replica-divergence" in kinds
        system.shutdown()

    def test_audit_detects_leaked_lock(self):
        system = build_system()
        ctx = OpContext("mkdir")
        system.sim.run_process(system.perform(make_op("mkdir", "/locked"), ctx=ctx))
        drain(system, 100_000)
        for node in system.index_group.nodes.values():
            node.state_machine.table.set_lock(system.root_id, "locked",
                                              "ghost-uuid")
        kinds = {v.kind for v in check_consistency(system)}
        assert "leaked-lock" in kinds
        assert "leaked-lock" not in {
            v.kind for v in check_consistency(system, allow_locks=True)}
        system.shutdown()
