"""Tests for the zero-cost bulk loaders used by benchmark pre-fill."""

import pytest

from repro.bench.audit import check_consistency
from repro.core.config import MantleConfig
from repro.core.service import MantleSystem
from repro.errors import NoSuchPathError
from repro.sim.stats import OpContext
from repro.workloads.namespace import build_namespace, populate
from repro.ops import make_op


def build():
    system = MantleSystem(MantleConfig(
        num_db_servers=2, num_db_shards=4, num_proxies=1,
        index_replicas=3, index_cores=8, db_cores=8, proxy_cores=8))
    system.startup()
    return system


def run_op(system, op, *args):
    ctx = OpContext(op)
    return system.sim.run_process(system.perform(make_op(op, *args), ctx=ctx))


class TestBulkLoaders:
    def test_bulk_load_consumes_no_simulated_time(self):
        system = build()
        before = system.sim.now
        for i in range(30):
            system.bulk_mkdir(f"/b{i}")
            system.bulk_create(f"/b{i}/obj")
        assert system.sim.now == before
        system.shutdown()

    def test_bulk_state_is_fully_operational(self):
        system = build()
        system.bulk_mkdir("/pre")
        system.bulk_create("/pre/obj", size=2048)
        assert run_op(system, "objstat", "/pre/obj").size == 2048
        assert run_op(system, "dirstat", "/pre").entry_count == 1
        # Mutations interleave cleanly with bulk-loaded entries.
        run_op(system, "create", "/pre/live")
        assert run_op(system, "dirstat", "/pre").entry_count == 2
        system.shutdown()

    def test_bulk_mkdir_idempotent(self):
        system = build()
        first = system.bulk_mkdir("/same")
        second = system.bulk_mkdir("/same")
        assert first == second
        system.shutdown()

    def test_bulk_requires_existing_parent(self):
        system = build()
        with pytest.raises(NoSuchPathError):
            system.bulk_mkdir("/missing/child")
        with pytest.raises(NoSuchPathError):
            system.bulk_create("/missing/obj")
        system.shutdown()

    def test_bulk_load_passes_cross_layer_audit(self):
        system = build()
        populate(system, build_namespace(num_dirs=60, objects_per_dir=3,
                                         seed=8, root="/audit"))
        system.sim.run(until=system.sim.now + 200_000)
        assert check_consistency(system) == []
        system.shutdown()

    def test_bulk_counts_match_dirstat_after_populate(self):
        system = build()
        spec = build_namespace(num_dirs=25, objects_per_dir=4, seed=4,
                               root="/cnt")
        populate(system, spec)
        # Spot-check a leaf directory's entry count through the live path.
        leaf = spec.leaf_directories()[0]
        expected = sum(1 for o in spec.objects
                       if o.rsplit("/", 1)[0] == leaf)
        expected += sum(1 for d in spec.directories
                        if d != leaf and d.rsplit("/", 1)[0] == leaf)
        assert run_op(system, "dirstat", leaf).entry_count == expected
        system.shutdown()
