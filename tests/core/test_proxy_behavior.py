"""Behavioural tests for the Mantle proxy layer: delta activation,
follower-read spill, client caching, phase accounting."""

import pytest

from repro.core.config import MantleConfig
from repro.core.service import MantleSystem
from repro.ops import make_op
from repro.sim.stats import (
    PHASE_EXECUTION,
    PHASE_LOOKUP,
    PHASE_LOOP_DETECT,
    OpContext,
)


def build(**overrides):
    config = MantleConfig(num_db_servers=2, num_db_shards=4, num_proxies=2,
                          index_replicas=3, index_cores=8, db_cores=8,
                          proxy_cores=8).copy(**overrides)
    system = MantleSystem(config)
    system.startup()
    return system


def run_op(system, op, *args):
    ctx = OpContext(op)
    result = system.sim.run_process(system.perform(make_op(op, *args), ctx=ctx))
    return result, ctx


class TestDeltaActivation:
    def test_hot_directory_flips_into_delta_mode(self):
        system = build(delta_activation_threshold=3)
        system.bulk_mkdir("/hot")
        hot_id = system._bulk_dirs["/hot"]
        sim = system.sim
        registry = system.tafdb.contention
        assert not registry.is_delta_mode(hot_id, sim.now)

        def client(cid):
            for i in range(10):
                ctx = OpContext("mkdir")
                yield from system.perform(make_op("mkdir", f"/hot/d{cid}_{i}"), ctx=ctx)

        done = sim.all_of([sim.process(client(c)) for c in range(16)])
        sim.run_until(done)
        assert registry.is_delta_mode(hot_id, sim.now)
        assert registry.activations >= 1
        system.shutdown()

    def test_quiet_directory_stays_in_place(self):
        system = build()
        system.bulk_mkdir("/quiet")
        quiet_id = system._bulk_dirs["/quiet"]
        for i in range(5):
            run_op(system, "mkdir", f"/quiet/d{i}")  # serial: no contention
        assert not system.tafdb.contention.is_delta_mode(
            quiet_id, system.sim.now)
        system.shutdown()

    def test_counts_remain_exact_under_contention(self):
        """Delta records must not lose or double-count entries."""
        system = build(delta_activation_threshold=2)
        system.bulk_mkdir("/hot")
        sim = system.sim
        clients, per_client = 12, 6

        def client(cid):
            for i in range(per_client):
                ctx = OpContext("create")
                yield from system.perform(make_op("create", f"/hot/o{cid}_{i}"), ctx=ctx)

        done = sim.all_of([sim.process(client(c)) for c in range(clients)])
        sim.run_until(done)
        stat, _ = run_op(system, "dirstat", "/hot")
        assert stat.entry_count == clients * per_client
        system.shutdown()

    def test_disabled_deltas_still_converge(self):
        system = build(enable_delta_records=False)
        system.bulk_mkdir("/hot")
        sim = system.sim

        def client(cid):
            ctx = OpContext("mkdir")
            yield from system.perform(make_op("mkdir", f"/hot/d{cid}"), ctx=ctx)

        done = sim.all_of([sim.process(client(c)) for c in range(8)])
        sim.run_until(done)
        stat, _ = run_op(system, "dirstat", "/hot")
        assert stat.entry_count == 8
        system.shutdown()


class TestFollowerSpill:
    def test_serial_lookups_stay_on_leader(self):
        system = build()
        system.bulk_mkdir("/w")
        system.bulk_create("/w/obj")
        leader = system.index_group.leader_or_raise()
        before = {nid: svc.lookups_served
                  for nid, svc in system.index_services.items()}
        for _ in range(10):
            run_op(system, "objstat", "/w/obj")
        served = {nid: svc.lookups_served - before[nid]
                  for nid, svc in system.index_services.items()}
        assert served[leader.id] == 10
        assert all(v == 0 for nid, v in served.items() if nid != leader.id)
        system.shutdown()

    def test_concurrent_lookups_spill_to_replicas(self):
        system = build(num_proxies=1)
        system.bulk_mkdir("/w")
        system.bulk_create("/w/obj")
        sim = system.sim
        leader = system.index_group.leader_or_raise()
        before = {nid: svc.lookups_served
                  for nid, svc in system.index_services.items()}

        def client():
            for _ in range(10):
                ctx = OpContext("objstat")
                yield from system.perform(make_op("objstat", "/w/obj"), ctx=ctx)

        done = sim.all_of([sim.process(client()) for _ in range(24)])
        sim.run_until(done)
        served = {nid: svc.lookups_served - before[nid]
                  for nid, svc in system.index_services.items()}
        followers_served = sum(v for nid, v in served.items()
                               if nid != leader.id)
        assert followers_served > 0
        system.shutdown()

    def test_follower_read_disabled_never_spills(self):
        system = build(enable_follower_read=False, num_proxies=1)
        system.bulk_mkdir("/w")
        system.bulk_create("/w/obj")
        sim = system.sim
        leader = system.index_group.leader_or_raise()

        def client():
            for _ in range(5):
                ctx = OpContext("objstat")
                yield from system.perform(make_op("objstat", "/w/obj"), ctx=ctx)

        done = sim.all_of([sim.process(client()) for _ in range(16)])
        sim.run_until(done)
        for nid, svc in system.index_services.items():
            if nid != leader.id:
                assert svc.lookups_served == 0
        system.shutdown()


class TestClientCache:
    def test_cache_hits_for_sibling_objects(self):
        system = build(client_cache_capacity=128, num_proxies=1)
        system.bulk_mkdir("/d")
        for i in range(5):
            system.bulk_create(f"/d/o{i}")
        _, first = run_op(system, "objstat", "/d/o0")
        _, second = run_op(system, "objstat", "/d/o1")  # same parent
        assert second.rpcs < first.rpcs
        system.shutdown()

    def test_cache_invalidated_by_rename(self):
        system = build(client_cache_capacity=128, num_proxies=1)
        system.bulk_mkdir("/d")
        system.bulk_mkdir("/d/sub")
        system.bulk_create("/d/sub/o")
        system.bulk_mkdir("/dst")
        run_op(system, "objstat", "/d/sub/o")  # warm cache
        run_op(system, "dirrename", "/d/sub", "/dst/sub2")
        result, _ = run_op(system, "objstat", "/dst/sub2/o")
        assert result.id > 0
        from repro.errors import NoSuchPathError
        with pytest.raises(NoSuchPathError):
            run_op(system, "objstat", "/d/sub/o")
        system.shutdown()

    def test_cache_disabled_by_default(self):
        system = build()
        assert all(p.client_cache is None for p in system.proxies)
        system.shutdown()


class TestPhaseAccounting:
    def test_lookup_plus_execution_cover_most_of_latency(self):
        system = build()
        system.bulk_mkdir("/p")
        system.bulk_create("/p/o")
        _, ctx = run_op(system, "objstat", "/p/o")
        covered = ctx.phase_time(PHASE_LOOKUP) + ctx.phase_time(PHASE_EXECUTION)
        assert covered == pytest.approx(ctx.latency, rel=0.05)
        system.shutdown()

    def test_dirrename_has_no_lookup_phase(self):
        system = build()
        for p in ("/a", "/a/b", "/dst"):
            system.bulk_mkdir(p)
        _, ctx = run_op(system, "dirrename", "/a/b", "/dst/b")
        assert ctx.phase_time(PHASE_LOOKUP) == 0
        assert ctx.phase_time(PHASE_LOOP_DETECT) > 0
        assert ctx.phase_time(PHASE_EXECUTION) > 0
        system.shutdown()

    def test_retries_counted_on_context(self):
        system = build(enable_delta_records=False)
        system.bulk_mkdir("/hot")
        sim = system.sim
        contexts = []

        def client(cid):
            ctx = OpContext("mkdir")
            contexts.append(ctx)
            yield from system.perform(make_op("mkdir", f"/hot/r{cid}"), ctx=ctx)

        done = sim.all_of([sim.process(client(c)) for c in range(10)])
        sim.run_until(done)
        assert sum(c.retries for c in contexts) > 0
        system.shutdown()
