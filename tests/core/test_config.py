"""Unit tests for MantleConfig."""

import pytest

from repro.core.config import MantleConfig


def test_defaults_match_table2_shape():
    cfg = MantleConfig()
    cfg.validate()
    assert cfg.num_db_servers == 18
    assert cfg.index_replicas == 3
    assert cfg.path_cache_k == 3
    assert cfg.enable_path_cache
    assert cfg.enable_delta_records
    assert cfg.enable_raft_batching
    assert cfg.enable_follower_read


def test_base_disables_every_optimisation():
    base = MantleConfig.base()
    assert not base.enable_path_cache
    assert not base.enable_delta_records
    assert not base.enable_raft_batching
    assert not base.enable_follower_read


def test_copy_overrides_and_preserves():
    cfg = MantleConfig()
    tweaked = cfg.copy(path_cache_k=5, num_learners=2)
    assert tweaked.path_cache_k == 5
    assert tweaked.num_learners == 2
    assert cfg.path_cache_k == 3
    assert tweaked.num_db_servers == cfg.num_db_servers


def test_copy_rejects_unknown_field():
    with pytest.raises(AttributeError):
        MantleConfig().copy(nonsense=True)


def test_validate_rejects_bad_values():
    with pytest.raises(ValueError):
        MantleConfig(path_cache_k=-1).validate()
    with pytest.raises(ValueError):
        MantleConfig(index_replicas=0).validate()
    with pytest.raises(ValueError):
        MantleConfig(num_db_servers=5, num_db_shards=7).validate()
