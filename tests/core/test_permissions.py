"""Tests for Lazy-Hybrid permission aggregation and enforcement (§5.1.1)."""

import pytest

from repro import MantleClient, MantleConfig
from repro.errors import PermissionDeniedError
from repro.types import Permission
from repro.ops import make_op


def small(**overrides):
    return MantleClient(MantleConfig(
        num_db_servers=2, num_db_shards=4, num_proxies=2,
        index_replicas=3, index_cores=8, db_cores=8,
        proxy_cores=8).copy(**overrides))


class TestEnforcement:
    def test_read_only_directory_rejects_creates(self):
        with small() as client:
            client.mkdir("/ro")
            client.setattr("/ro", Permission.READ | Permission.EXECUTE)
            with pytest.raises(PermissionDeniedError):
                client.create("/ro/new.bin")

    def test_no_execute_blocks_traversal(self):
        with small() as client:
            client.mkdir("/locked/inner", parents=True)
            client.create("/locked/inner/obj")
            client.setattr("/locked", Permission.READ)  # EXECUTE revoked
            with pytest.raises(PermissionDeniedError):
                client.objstat("/locked/inner/obj")
            with pytest.raises(PermissionDeniedError):
                client.listdir("/locked/inner")

    def test_ancestor_restriction_propagates(self):
        """The Lazy-Hybrid intersection carries an ancestor's restriction
        to every descendant path."""
        with small() as client:
            client.mkdir("/a/b/c", parents=True)
            client.setattr("/a", Permission.READ | Permission.EXECUTE)
            with pytest.raises(PermissionDeniedError):
                client.mkdir("/a/b/c/d")  # needs WRITE along the path

    def test_restoring_permission_reopens_subtree(self):
        with small() as client:
            client.mkdir("/flip")
            client.setattr("/flip", Permission.READ)
            with pytest.raises(PermissionDeniedError):
                client.create("/flip/x")
            # setattr itself operates on /flip (root-aggregated: allowed).
            client.setattr("/flip", Permission.ALL)
            assert client.create("/flip/x") > 0

    def test_rename_requires_write(self):
        with small() as client:
            client.mkdir("/src/victim", parents=True)
            client.mkdir("/dst")
            client.setattr("/dst", Permission.READ | Permission.EXECUTE)
            with pytest.raises(PermissionDeniedError):
                client.rename("/src/victim", "/dst/moved")
            # The failed rename must have released its lock.
            client.mkdir("/dst2")
            assert client.rename("/src/victim", "/dst2/moved") > 0

    def test_enforcement_can_be_disabled(self):
        with small(enforce_permissions=False) as client:
            client.mkdir("/ro")
            client.setattr("/ro", Permission.READ)
            assert client.create("/ro/anyway.bin") > 0


class TestAggregationThroughCaches:
    def test_cached_prefix_carries_permission(self):
        """Permission changes invalidate TopDirPathCache entries so a
        cached prefix never grants stale access."""
        with small() as client:
            client.mkdir("/deep/a/b/c/d", parents=True)
            client.create("/deep/a/b/c/d/obj")
            # Warm the prefix cache with the permissive resolution.
            for _ in range(3):
                client.objstat("/deep/a/b/c/d/obj")
            client.setattr("/deep", Permission.READ)
            # Allow the Invalidator's background purge to run.
            client.system.sim.run(until=client.system.sim.now + 2_000)
            with pytest.raises(PermissionDeniedError):
                client.objstat("/deep/a/b/c/d/obj")

    def test_follower_replicas_enforce_too(self):
        with small() as client:
            client.mkdir("/f")
            client.create("/f/obj")
            client.setattr("/f", Permission.READ)
            client.system.sim.run(until=client.system.sim.now + 100_000)
            # Drive enough concurrent lookups that some spill to followers.
            sim = client.system.sim
            denied = {"count": 0}

            def prober():
                from repro.sim.stats import OpContext
                for _ in range(5):
                    ctx = OpContext("objstat")
                    try:
                        yield from client.system.perform(make_op(
                            "objstat", "/f/obj"), ctx=ctx)
                    except PermissionDeniedError:
                        denied["count"] += 1

            done = sim.all_of([sim.process(prober()) for _ in range(12)])
            sim.run_until(done)
            assert denied["count"] == 60  # every probe rejected
