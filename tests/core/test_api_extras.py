"""Tests for the client facade's paging and walking helpers."""

import pytest

from repro import MantleClient


@pytest.fixture()
def client():
    c = MantleClient()
    yield c
    c.close()


class TestPagedListing:
    def test_pages_cover_all_entries_in_order(self, client):
        client.mkdir("/big")
        names = [f"e{i:03d}" for i in range(25)]
        for name in names:
            client.create(f"/big/{name}")
        collected = []
        start_after = None
        while True:
            page = client.listdir_page("/big", limit=10,
                                       start_after=start_after)
            collected.extend(page)
            if len(page) < 10:
                break
            start_after = page[-1]
        assert collected == names

    def test_page_size_respected(self, client):
        client.mkdir("/p")
        for i in range(7):
            client.create(f"/p/o{i}")
        assert len(client.listdir_page("/p", limit=3)) == 3

    def test_empty_directory_single_empty_page(self, client):
        client.mkdir("/empty")
        assert client.listdir_page("/empty", limit=5) == []


class TestWalk:
    def test_walk_visits_every_entry(self, client):
        client.mkdir("/tree")
        client.mkdir("/tree/a")
        client.mkdir("/tree/a/b")
        client.create("/tree/a/b/leaf.bin")
        client.create("/tree/top.bin")
        visited = set(client.walk("/tree"))
        assert visited == {"/tree/a", "/tree/a/b", "/tree/a/b/leaf.bin",
                           "/tree/top.bin"}

    def test_walk_pages_through_wide_directories(self, client):
        client.mkdir("/wide")
        for i in range(15):
            client.create(f"/wide/o{i:02d}")
        visited = list(client.walk("/wide", page_size=4))
        assert len(visited) == 15
