"""Integration tests: the full Mantle stack through the MantleClient facade."""

import pytest

from repro import MantleClient, MantleConfig
from repro.errors import (
    AlreadyExistsError,
    IsADirectoryError,
    NoSuchPathError,
    NotEmptyError,
    RenameLoopError,
)
from repro.types import Permission


@pytest.fixture()
def client():
    c = MantleClient()
    yield c
    c.close()


class TestObjects:
    def test_create_and_stat(self, client):
        client.mkdir("/data")
        obj_id = client.create("/data/a.bin")
        stat = client.objstat("/data/a.bin")
        assert stat.id == obj_id
        assert not stat.is_dir

    def test_create_duplicate_rejected(self, client):
        client.mkdir("/data")
        client.create("/data/a.bin")
        with pytest.raises(AlreadyExistsError):
            client.create("/data/a.bin")

    def test_create_in_missing_dir_rejected(self, client):
        with pytest.raises(NoSuchPathError):
            client.create("/nowhere/a.bin")

    def test_delete(self, client):
        client.mkdir("/data")
        client.create("/data/a.bin")
        client.delete("/data/a.bin")
        assert not client.exists("/data/a.bin")

    def test_delete_directory_rejected(self, client):
        client.mkdir("/data")
        with pytest.raises(IsADirectoryError):
            client.delete("/data")

    def test_objstat_missing(self, client):
        client.mkdir("/data")
        with pytest.raises(NoSuchPathError):
            client.objstat("/data/ghost")


class TestDirectories:
    def test_mkdir_and_dirstat(self, client):
        client.mkdir("/a")
        client.mkdir("/a/b")
        stat = client.dirstat("/a")
        assert stat.is_dir
        assert stat.entry_count == 1
        assert stat.link_count == 1

    def test_mkdir_parents(self, client):
        client.mkdir("/x/y/z", parents=True)
        assert client.exists("/x/y/z")

    def test_mkdir_duplicate_rejected(self, client):
        client.mkdir("/a")
        with pytest.raises(AlreadyExistsError):
            client.mkdir("/a")

    def test_rmdir_empty(self, client):
        client.mkdir("/a")
        client.rmdir("/a")
        assert not client.exists("/a")

    def test_rmdir_non_empty_rejected(self, client):
        client.mkdir("/a")
        client.create("/a/obj")
        with pytest.raises(NotEmptyError):
            client.rmdir("/a")
        client.mkdir("/b")
        client.mkdir("/b/c")
        with pytest.raises(NotEmptyError):
            client.rmdir("/b")

    def test_listdir_sorted_union(self, client):
        client.mkdir("/a")
        client.create("/a/z.bin")
        client.mkdir("/a/dir1")
        client.create("/a/b.bin")
        assert client.listdir("/a") == ["b.bin", "dir1", "z.bin"]

    def test_entry_counts_track_mutations(self, client):
        client.mkdir("/a")
        client.create("/a/one")
        client.create("/a/two")
        client.delete("/a/one")
        assert client.dirstat("/a").entry_count == 1

    def test_setattr_changes_permission(self, client):
        client.mkdir("/a")
        stat = client.setattr("/a", Permission.READ | Permission.EXECUTE)
        assert stat.permission == Permission.READ | Permission.EXECUTE


class TestRename:
    def test_rename_moves_subtree(self, client):
        client.mkdir("/src/inner", parents=True)
        client.create("/src/inner/obj")
        client.mkdir("/dst")
        client.rename("/src/inner", "/dst/moved")
        assert client.exists("/dst/moved/obj")
        assert not client.exists("/src/inner")

    def test_rename_loop_rejected(self, client):
        client.mkdir("/a/b/c", parents=True)
        with pytest.raises(RenameLoopError):
            client.rename("/a", "/a/b/c/a2")

    def test_rename_onto_existing_rejected(self, client):
        client.mkdir("/a")
        client.mkdir("/b")
        client.mkdir("/b/a")
        with pytest.raises(AlreadyExistsError):
            client.rename("/a", "/b/a")
        # Failed rename must release its lock: a later rename succeeds.
        client.rename("/a", "/b/a2")
        assert client.exists("/b/a2")

    def test_rename_missing_source_rejected(self, client):
        client.mkdir("/dst")
        with pytest.raises(NoSuchPathError):
            client.rename("/ghost", "/dst/g")

    def test_rename_within_same_parent(self, client):
        client.mkdir("/a")
        client.mkdir("/a/old")
        before = client.dirstat("/a").entry_count
        client.rename("/a/old", "/a/new")
        assert client.exists("/a/new")
        assert client.dirstat("/a").entry_count == before

    def test_deep_rename_keeps_resolution_consistent(self, client):
        client.mkdir("/p/q/r/s", parents=True)
        client.create("/p/q/r/s/obj")
        # Warm the path cache, then move an ancestor.
        client.objstat("/p/q/r/s/obj")
        client.mkdir("/elsewhere")
        client.rename("/p/q", "/elsewhere/q2")
        assert client.objstat("/elsewhere/q2/r/s/obj").id > 0
        with pytest.raises(NoSuchPathError):
            client.objstat("/p/q/r/s/obj")


class TestFacade:
    def test_metrics_recorded(self, client):
        client.mkdir("/a")
        client.create("/a/obj")
        client.objstat("/a/obj")
        assert client.metrics.ops_completed == 3
        assert client.metrics.latency["objstat"].count == 1

    def test_failures_recorded_separately(self, client):
        with pytest.raises(NoSuchPathError):
            client.objstat("/ghost/obj")
        assert client.metrics.ops_failed == 1

    def test_simulated_time_advances(self, client):
        before = client.simulated_time_us
        client.mkdir("/a")
        assert client.simulated_time_us > before

    def test_cache_stats_shape(self, client):
        client.mkdir("/a/b/c/d/e", parents=True)
        client.dirstat("/a/b/c/d/e")
        stats = client.cache_stats()
        assert set(stats) == {"entries", "hits", "misses", "hit_rate",
                              "memory_bytes"}

    def test_context_manager(self):
        with MantleClient() as c:
            c.mkdir("/a")
            assert c.exists("/a")

    def test_stat_dispatches_both_kinds(self, client):
        client.mkdir("/d")
        client.create("/d/o")
        assert client.stat("/d").is_dir
        assert not client.stat("/d/o").is_dir


class TestConfigurationVariants:
    def _tiny(self, **overrides):
        cfg = MantleConfig(num_db_servers=2, num_db_shards=4, num_proxies=2,
                           index_replicas=3, index_cores=8, db_cores=8,
                           proxy_cores=8).copy(**overrides)
        return MantleClient(cfg)

    def test_mantle_base_still_correct(self):
        with self._tiny(enable_path_cache=False, enable_follower_read=False,
                        enable_delta_records=False,
                        enable_raft_batching=False) as c:
            c.mkdir("/a/b", parents=True)
            c.create("/a/b/obj")
            assert c.objstat("/a/b/obj").id > 0

    def test_single_replica_no_followers(self):
        with self._tiny(index_replicas=1) as c:
            c.mkdir("/solo")
            assert c.exists("/solo")

    def test_learners_configuration(self):
        with self._tiny(num_learners=2) as c:
            c.mkdir("/a")
            for _ in range(6):  # round-robin across replicas incl. learners
                assert c.dirstat("/a").is_dir
