"""Tests for multi-namespace deployments (§4 / §7)."""

import pytest

from repro.core.config import MantleConfig
from repro.core.multitenant import MantleDeployment
from repro.errors import NoSuchPathError
from repro.sim.stats import OpContext
from repro.ops import make_op


def tiny_config(**overrides):
    return MantleConfig(num_db_servers=2, num_db_shards=4, num_proxies=2,
                        index_replicas=3, index_cores=8, db_cores=8,
                        proxy_cores=8).copy(**overrides)


@pytest.fixture()
def deployment():
    dep = MantleDeployment(tiny_config())
    yield dep
    dep.shutdown()


def run_op(system, op, *args):
    ctx = OpContext(op)
    return system.sim.run_process(system.perform(make_op(op, *args), ctx=ctx))


class TestNamespaceIsolation:
    def test_same_paths_do_not_collide(self, deployment):
        ns_a = deployment.create_namespace("tenant-a")
        ns_b = deployment.create_namespace("tenant-b")
        id_a = run_op(ns_a, "mkdir", "/data")
        id_b = run_op(ns_b, "mkdir", "/data")
        assert id_a != id_b
        run_op(ns_a, "create", "/data/only-in-a.bin")
        assert run_op(ns_a, "objstat", "/data/only-in-a.bin").id > 0
        with pytest.raises(NoSuchPathError):
            run_op(ns_b, "objstat", "/data/only-in-a.bin")

    def test_distinct_root_ids(self, deployment):
        ns_a = deployment.create_namespace("a")
        ns_b = deployment.create_namespace("b")
        assert ns_a.root_id != ns_b.root_id

    def test_duplicate_namespace_rejected(self, deployment):
        deployment.create_namespace("dup")
        with pytest.raises(ValueError):
            deployment.create_namespace("dup")

    def test_unknown_namespace_rejected(self, deployment):
        with pytest.raises(KeyError):
            deployment.namespace("ghost")


class TestSharedTafDB:
    def test_rows_of_all_namespaces_share_one_cluster(self, deployment):
        ns_a = deployment.create_namespace("a")
        ns_b = deployment.create_namespace("b")
        before = deployment.total_metadata_rows
        run_op(ns_a, "mkdir", "/x")
        run_op(ns_b, "mkdir", "/y")
        # Both namespaces' new rows landed in the single shared TafDB.
        assert deployment.total_metadata_rows >= before + 4

    def test_namespace_sizes(self, deployment):
        ns_a = deployment.create_namespace("a")
        deployment.create_namespace("b")
        run_op(ns_a, "mkdir", "/one")
        run_op(ns_a, "mkdir", "/two")
        sizes = deployment.namespace_sizes()
        assert sizes["a"] == 2
        assert sizes["b"] == 0

    def test_ids_unique_across_namespaces(self, deployment):
        ns_a = deployment.create_namespace("a")
        ns_b = deployment.create_namespace("b")
        ids = set()
        for ns in (ns_a, ns_b):
            for i in range(5):
                ids.add(run_op(ns, "mkdir", f"/d{i}"))
        assert len(ids) == 10


class TestColocation:
    def test_colocated_namespaces_share_hosts(self):
        dep = MantleDeployment(tiny_config(), shared_index_pool=3)
        try:
            ns_a = dep.create_namespace("a", colocate=True)
            ns_b = dep.create_namespace("b", colocate=True)
            hosts_a = {n.host for n in ns_a.index_group.nodes.values()}
            hosts_b = {n.host for n in ns_b.index_group.nodes.values()}
            assert hosts_a == hosts_b  # 3 replicas on a 3-host pool
            # Both namespaces still function correctly.
            run_op(ns_a, "mkdir", "/a")
            run_op(ns_b, "mkdir", "/b")
            assert run_op(ns_a, "dirstat", "/a").is_dir
        finally:
            dep.shutdown()

    def test_colocate_without_pool_rejected(self, deployment):
        with pytest.raises(ValueError):
            deployment.create_namespace("x", colocate=True)

    def test_colocated_namespaces_contend_for_cpu(self):
        """§7.2: co-location trades isolation for utilisation — load on one
        namespace inflates the other's latency."""
        def run_burst(with_neighbor_load):
            dep = MantleDeployment(tiny_config(index_cores=1),
                                   shared_index_pool=3)
            try:
                ns_a = dep.create_namespace("a", colocate=True)
                ns_b = dep.create_namespace("b", colocate=True)
                ns_a.bulk_mkdir("/w")
                ns_a.bulk_create("/w/obj")
                ns_b.bulk_mkdir("/w")
                ns_b.bulk_create("/w/obj")
                sim = dep.sim
                latencies = []

                def victim():
                    for _ in range(20):
                        ctx = OpContext("objstat")
                        yield from ns_a.perform(make_op("objstat", "/w/obj"), ctx=ctx)
                        latencies.append(ctx.latency)

                def neighbor():
                    for _ in range(200):
                        ctx = OpContext("objstat")
                        yield from ns_b.perform(make_op("objstat", "/w/obj"), ctx=ctx)

                procs = [sim.process(victim())]
                if with_neighbor_load:
                    # Enough neighbour clients that ns_b's lookups spill
                    # over every replica, loading all pool hosts.
                    procs += [sim.process(neighbor()) for _ in range(24)]
                done = sim.all_of(procs)
                sim.run_until(done)
                return sum(latencies) / len(latencies)
            finally:
                dep.shutdown()

        quiet = run_burst(False)
        noisy = run_burst(True)
        assert noisy > quiet


class TestDedicatedVsShared:
    def test_mixed_placement(self):
        dep = MantleDeployment(tiny_config(), shared_index_pool=2)
        try:
            small = dep.create_namespace("small", colocate=True,
                                         index_replicas=1)
            big = dep.create_namespace("big", colocate=False)
            pool_hosts = set(dep._pool)
            small_hosts = {n.host for n in small.index_group.nodes.values()}
            big_hosts = {n.host for n in big.index_group.nodes.values()}
            assert small_hosts <= pool_hosts
            assert not (big_hosts & pool_hosts)
        finally:
            dep.shutdown()
