"""Typed operation registry, OpResult and the PR-2 client surface."""

import dataclasses

import pytest

from repro.core.api import BatchResult, MantleClient, _small_config
from repro.core.config import MantleConfig
from repro.errors import AlreadyExistsError, MetadataError
from repro.ops import (
    OP_NAMES,
    OP_TYPES,
    Create,
    Mkdir,
    Op,
    Rename,
    make_op,
)
from repro.types import OpResult, Permission


class TestOpRegistry:
    def test_every_name_maps_to_a_frozen_dataclass(self):
        for name, op_type in OP_TYPES.items():
            assert issubclass(op_type, Op)
            assert op_type.name == name
            assert dataclasses.is_dataclass(op_type)
        assert set(OP_NAMES) == set(OP_TYPES)

    def test_make_op_builds_typed_ops(self):
        assert make_op("mkdir", "/x") == Mkdir("/x")
        rename = make_op("dirrename", "/a", "/b")
        assert isinstance(rename, Rename)
        assert rename.handler_args() == ("/a", "/b")
        setattr_op = make_op("setattr", "/x", Permission.READ)
        assert setattr_op.handler_args() == ("/x", Permission.READ)

    def test_make_op_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown operation"):
            make_op("chmodx", "/")

    def test_ops_are_immutable(self):
        op = Create("/f")
        with pytest.raises(dataclasses.FrozenInstanceError):
            op.path = "/g"


class TestOpResult:
    def test_is_an_int(self):
        result = OpResult(7, rpcs=3, retries=1, latency_us=2.5)
        assert result == 7
        assert isinstance(result, int)
        assert result.inode_id == 7
        assert result + 1 == 8
        assert (result.rpcs, result.retries, result.latency_us) == (3, 1, 2.5)
        assert "OpResult" in repr(result)


class TestConfigPresets:
    def test_small_is_the_example_shape(self):
        config = MantleConfig.small()
        assert config.num_db_servers == 3
        assert config.num_proxies == 2
        assert config.tracing is False
        assert _small_config() == config  # deprecated alias stays equivalent

    def test_paper_scale_matches_defaults(self):
        assert MantleConfig.paper_scale() == MantleConfig()

    def test_presets_take_overrides(self):
        assert MantleConfig.small(tracing=True).tracing is True
        assert MantleConfig.paper_scale(num_proxies=7).num_proxies == 7


class TestClientSurface:
    def test_mutations_return_op_results(self):
        with MantleClient() as client:
            made = client.mkdir("/d")
            assert isinstance(made, OpResult)
            assert made.rpcs > 0
            assert made.latency_us > 0
            created = client.create("/d/f")
            assert client.objstat("/d/f").id == created

    def test_perform_and_legacy_submit_agree(self):
        with MantleClient() as client:
            system, sim = client.system, client.system.sim
            typed = sim.run_process(system.perform(Mkdir("/typed")))
            with pytest.warns(DeprecationWarning, match="submit.*deprecated"):
                legacy = sim.run_process(system.submit("mkdir", "/legacy"))
            assert isinstance(typed, int) and isinstance(legacy, int)
            assert client.dirstat("/typed").id == typed
            assert client.dirstat("/legacy").id == legacy

    def test_mkdir_parents_probes_one_walk(self):
        with MantleClient() as client:
            result = client.mkdir("/a/b/c", parents=True)
            assert client.dirstat("/a/b/c").id == result
            metrics = client.metrics
            # one dirstat probe per missing ancestor (both fail), then the
            # three mkdirs -- no exists() double-drives.
            assert metrics.latency["mkdir"].count == 3
            assert metrics.ops_failed == 2
            # deepest existing ancestor found on the first probe now:
            probes_before = metrics.latency["dirstat"].count
            client.mkdir("/a/b/d", parents=True)
            assert metrics.latency["mkdir"].count == 4
            assert metrics.latency["dirstat"].count == probes_before + 1
            assert metrics.ops_failed == 2

    def test_batch_runs_ops_in_one_drive(self):
        with MantleClient() as client:
            client.mkdir("/base")
            outcomes = client.batch([
                Create("/base/f0"),
                Create("/base/f1"),
                Mkdir("/base/sub"),
                Mkdir("/base"),  # duplicate -> per-op error, not a raise
            ])
            assert [isinstance(o, BatchResult) for o in outcomes]
            assert [o.ok for o in outcomes] == [True, True, True, False]
            assert isinstance(outcomes[0].result, OpResult)
            assert isinstance(outcomes[3].error, AlreadyExistsError)
            assert client.exists("/base/f1")
            # batch overlapped: cheaper than four sequential drives would be
            names = set(client.listdir("/base"))
            assert names == {"f0", "f1", "sub"}

    def test_batch_empty_is_a_noop(self):
        with MantleClient() as client:
            assert client.batch([]) == []

    def test_untraced_client_has_null_tracer(self):
        with MantleClient() as client:
            assert client.tracer.enabled is False
            assert client.tracer.spans == ()

    def test_stat_falls_back_to_dirstat(self):
        with MantleClient() as client:
            client.mkdir("/onlydir")
            assert client.stat("/onlydir").is_dir
            with pytest.raises(MetadataError):
                client.stat("/absent")
