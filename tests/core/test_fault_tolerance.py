"""Fault-tolerance tests (§5.3): leader failover, idempotent retries,
consistency across replicas."""

import pytest

from repro.core.config import MantleConfig
from repro.core.service import MantleSystem
from repro.errors import MetadataError
from repro.sim.stats import OpContext
from repro.ops import make_op


def build(**overrides):
    config = MantleConfig(num_db_servers=2, num_db_shards=4, num_proxies=2,
                          index_replicas=3, index_cores=8, db_cores=8,
                          proxy_cores=8).copy(**overrides)
    system = MantleSystem(config)
    system.startup()
    return system


def run_op(system, op, *args):
    ctx = OpContext(op)
    return system.sim.run_process(system.perform(make_op(op, *args), ctx=ctx))


class TestLeaderFailover:
    def test_directories_survive_leader_crash(self):
        system = build()
        system.bulk_mkdir("/base")
        for i in range(5):
            run_op(system, "mkdir", f"/base/pre{i}")
        old = system.index_group.leader_or_raise()
        system.index_group.crash_node(old.id)
        system.sim.run_process(system.index_group.wait_for_leader())
        # Every pre-crash directory still resolves through the new leader.
        for i in range(5):
            assert run_op(system, "dirstat", f"/base/pre{i}").is_dir
        # And new mutations work.
        run_op(system, "mkdir", "/base/post")
        assert run_op(system, "dirstat", "/base/post").is_dir
        system.shutdown()

    def test_lookups_recover_after_failover_window(self):
        system = build()
        system.bulk_mkdir("/w")
        system.bulk_create("/w/obj")
        sim = system.sim
        outcomes = []

        def reader():
            for _ in range(50):
                ctx = OpContext("objstat")
                try:
                    yield from system.perform(make_op("objstat", "/w/obj"), ctx=ctx)
                    outcomes.append("ok")
                except MetadataError:
                    outcomes.append("failed")
                yield sim.timeout(4_000)

        def assassin():
            yield sim.timeout(20_000)
            system.index_group.crash_node(
                system.index_group.leader_or_raise().id)

        done = sim.all_of([sim.process(reader()), sim.process(assassin())])
        sim.run_until(done)
        # Reads succeed before the crash, fail during the leaderless
        # election window, and recover once a new leader is elected.
        assert outcomes[0] == "ok"
        assert "failed" in outcomes  # the window is real
        assert outcomes[-3:] == ["ok", "ok", "ok"]  # service recovered
        assert outcomes.count("ok") > 20
        system.shutdown()

    def test_replica_states_converge_after_mutations(self):
        system = build()
        system.bulk_mkdir("/conv")
        for i in range(8):
            run_op(system, "mkdir", f"/conv/d{i}")
        run_op(system, "dirrename", "/conv/d0", "/conv/d0moved")
        run_op(system, "rmdir", "/conv/d1")
        # Let replication heartbeats flush commitIndex everywhere.
        system.sim.run(until=system.sim.now + 100_000)
        tables = [sorted((m.pid, m.name, m.id)
                         for m in node.state_machine.table.entries())
                  for node in system.index_group.nodes.values()]
        assert all(t == tables[0] for t in tables)
        system.shutdown()


class TestIdempotentRename:
    def test_retried_rename_after_proxy_crash(self):
        """§5.3: a new proxy resubmits with the same UUID; the IndexNode
        recognises the existing lock and the rename completes exactly once."""
        system = build()
        for path in ("/a", "/a/b", "/dst"):
            system.bulk_mkdir(path)
        sim = system.sim
        leader = system.index_group.leader_or_raise()
        service = system.index_services[leader.id]
        owner = "crashing-proxy-uuid"

        def first_attempt():
            # The original proxy performs steps 1-7 then dies before the
            # transaction (Figure 9: crash between (7) and (8a)).
            prep = yield from system.network.rpc(
                service, "rename_prepare", "/a/b", "/dst/b2", owner)
            return prep

        prep1 = sim.run_process(first_attempt())
        assert leader.state_machine.table.get(prep1.src_pid, "b").locked

        # The replacement proxy re-runs the whole operation with the same
        # UUID through a fresh op_dirrename-equivalent flow.
        proxy = system.proxies[1]

        def retry():
            prep = yield from system.network.rpc(
                service, "rename_prepare", "/a/b", "/dst/b2", owner)
            from repro.tafdb.rows import Dirent, dirent_key
            from repro.tafdb.shard import WriteIntent
            from repro.types import EntryKind
            yield from proxy.db.execute_txn([
                WriteIntent(dirent_key(prep.src_pid, prep.src_name),
                            "delete"),
                WriteIntent(dirent_key(prep.dst_parent_id, prep.dst_name),
                            "insert",
                            Dirent(id=prep.src_id,
                                   kind=EntryKind.DIRECTORY)),
            ])
            result = yield from system.network.rpc(
                service, "mutate",
                ("rename_commit", prep.src_pid, prep.src_name,
                 prep.dst_parent_id, prep.dst_name))
            return result

        moved_id = sim.run_process(retry())
        assert moved_id == prep1.src_id
        # Lock released by the commit; directory resolvable at new path.
        assert run_op(system, "dirstat", "/dst/b2").is_dir
        meta = leader.state_machine.table.get(prep1.src_pid, "b")
        assert meta is None  # moved away
        system.shutdown()


class TestDeterminism:
    def test_same_seed_same_simulated_timeline(self):
        def run():
            system = build()
            system.bulk_mkdir("/det")
            for i in range(10):
                run_op(system, "create", f"/det/o{i}")
                run_op(system, "objstat", f"/det/o{i}")
            now = system.sim.now
            system.shutdown()
            return now

        assert run() == run()
