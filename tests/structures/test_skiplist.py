"""Unit + property tests for the RemovalList skiplist."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.skiplist import SkipList

_key = st.text(alphabet=string.ascii_lowercase + "/", min_size=1, max_size=8)


class TestBasics:
    def test_insert_get(self):
        sl = SkipList()
        assert sl.insert("/a", 1)
        assert sl.get("/a") == 1
        assert len(sl) == 1

    def test_overwrite_returns_false(self):
        sl = SkipList()
        sl.insert("/a", 1)
        assert not sl.insert("/a", 2)
        assert sl.get("/a") == 2
        assert len(sl) == 1

    def test_remove(self):
        sl = SkipList()
        sl.insert("/a")
        assert sl.remove("/a")
        assert "/a" not in sl
        assert not sl.remove("/a")

    def test_get_default(self):
        sl = SkipList()
        assert sl.get("/missing", "fallback") == "fallback"
        assert sl.get("/missing") is None

    def test_items_sorted(self):
        sl = SkipList()
        for key in ("/m", "/a", "/z", "/c"):
            sl.insert(key)
        assert list(sl.keys()) == ["/a", "/c", "/m", "/z"]

    def test_version_bumps_on_mutation_only(self):
        sl = SkipList()
        v0 = sl.version
        sl.insert("/a")
        v1 = sl.version
        assert v1 > v0
        sl.get("/a")
        assert sl.version == v1
        sl.remove("/a")
        assert sl.version > v1

    def test_pop_all(self):
        sl = SkipList()
        sl.insert("/b", 2)
        sl.insert("/a", 1)
        drained = sl.pop_all()
        assert drained == [("/a", 1), ("/b", 2)]
        assert len(sl) == 0
        assert list(sl.items()) == []

    def test_pop_all_empty_does_not_bump_version(self):
        sl = SkipList()
        v = sl.version
        assert sl.pop_all() == []
        assert sl.version == v


class TestContainsPrefixOf:
    def test_exact_match(self):
        sl = SkipList()
        sl.insert("/a/b")
        assert sl.contains_prefix_of("/a/b") == "/a/b"

    def test_ancestor_match(self):
        sl = SkipList()
        sl.insert("/a")
        assert sl.contains_prefix_of("/a/b/c") == "/a"

    def test_component_boundary(self):
        sl = SkipList()
        sl.insert("/a/bc")
        assert sl.contains_prefix_of("/a/b") is None
        assert sl.contains_prefix_of("/a/bcd") is None

    def test_empty_list_fast_path(self):
        sl = SkipList()
        assert sl.contains_prefix_of("/anything") is None

    def test_descendant_is_not_prefix(self):
        sl = SkipList()
        sl.insert("/a/b/c")
        assert sl.contains_prefix_of("/a/b") is None


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.dictionaries(_key, st.integers(), max_size=40))
    def test_matches_dict_semantics(self, mapping):
        sl = SkipList()
        for key, value in mapping.items():
            sl.insert(key, value)
        assert len(sl) == len(mapping)
        assert list(sl.keys()) == sorted(mapping)
        for key, value in mapping.items():
            assert sl.get(key) == value
        for key in mapping:
            assert sl.remove(key)
        assert len(sl) == 0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), _key), max_size=60))
    def test_interleaved_ops_stay_sorted(self, ops):
        sl = SkipList()
        reference = {}
        for is_insert, key in ops:
            if is_insert:
                sl.insert(key, key)
                reference[key] = key
            else:
                assert sl.remove(key) == (key in reference)
                reference.pop(key, None)
            assert list(sl.keys()) == sorted(reference)
