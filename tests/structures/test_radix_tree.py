"""Unit + property tests for the Invalidator's PrefixTree."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.radix_tree import PrefixTree

_component = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4)
_path = st.lists(_component, min_size=1, max_size=6).map(lambda ps: "/" + "/".join(ps))


class TestBasics:
    def test_insert_and_contains(self):
        t = PrefixTree()
        assert t.insert("/a/b")
        assert "/a/b" in t
        assert "/a" not in t  # interior node, not terminal
        assert len(t) == 1

    def test_duplicate_insert_returns_false(self):
        t = PrefixTree()
        assert t.insert("/a")
        assert not t.insert("/a")
        assert len(t) == 1

    def test_remove(self):
        t = PrefixTree()
        t.insert("/a/b")
        assert t.remove("/a/b")
        assert "/a/b" not in t
        assert len(t) == 0

    def test_remove_absent_returns_false(self):
        t = PrefixTree()
        assert not t.remove("/ghost")
        t.insert("/a/b")
        assert not t.remove("/a")  # interior, not terminal

    def test_remove_keeps_descendants(self):
        t = PrefixTree()
        t.insert("/a")
        t.insert("/a/b")
        assert t.remove("/a")
        assert "/a/b" in t
        assert len(t) == 1

    def test_root_path(self):
        t = PrefixTree()
        t.insert("/")
        assert "/" in t
        assert t.remove("/")


class TestDescendants:
    def test_descendants_includes_self(self):
        t = PrefixTree()
        t.insert("/a")
        t.insert("/a/b")
        t.insert("/a/b/c")
        t.insert("/x")
        assert sorted(t.descendants("/a")) == ["/a", "/a/b", "/a/b/c"]

    def test_descendants_respects_component_boundary(self):
        t = PrefixTree()
        t.insert("/ab")
        t.insert("/a/b")
        assert list(t.descendants("/a")) == ["/a/b"]

    def test_descendants_of_absent_prefix_empty(self):
        t = PrefixTree()
        t.insert("/a")
        assert list(t.descendants("/zzz")) == []

    def test_descendants_lexicographic(self):
        t = PrefixTree()
        for p in ("/m", "/a", "/z", "/a/q", "/a/b"):
            t.insert(p)
        assert list(t.descendants("/")) == ["/a", "/a/b", "/a/q", "/m", "/z"]

    def test_remove_subtree(self):
        t = PrefixTree()
        for p in ("/a", "/a/b", "/a/b/c", "/other"):
            t.insert(p)
        victims = t.remove_subtree("/a")
        assert sorted(victims) == ["/a", "/a/b", "/a/b/c"]
        assert len(t) == 1
        assert "/other" in t

    def test_has_descendant(self):
        t = PrefixTree()
        t.insert("/a/b/c")
        assert t.has_descendant("/a")
        assert t.has_descendant("/a/b/c")
        assert not t.has_descendant("/a/b/c/d")
        assert not t.has_descendant("/x")


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(_path, max_size=30))
    def test_matches_set_semantics(self, paths):
        t = PrefixTree()
        reference = set()
        for p in paths:
            assert t.insert(p) == (p not in reference)
            reference.add(p)
        assert len(t) == len(reference)
        assert sorted(t.paths()) == sorted(reference)
        for p in list(reference):
            assert t.remove(p)
        assert len(t) == 0
        assert list(t.paths()) == []

    @settings(max_examples=100, deadline=None)
    @given(st.lists(_path, max_size=20), _path)
    def test_descendants_equal_filter(self, paths, prefix):
        t = PrefixTree()
        reference = set()
        for p in paths:
            t.insert(p)
            reference.add(p)

        def is_under(p):
            return p == prefix or p.startswith(prefix + "/")

        expected = sorted(p for p in reference if is_under(p))
        assert sorted(t.descendants(prefix)) == expected

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_path, min_size=1, max_size=20))
    def test_interleaved_insert_remove(self, paths):
        t = PrefixTree()
        present = set()
        for i, p in enumerate(paths):
            if i % 3 == 2 and present:
                victim = sorted(present)[0]
                assert t.remove(victim)
                present.discard(victim)
            else:
                t.insert(p)
                present.add(p)
            assert sorted(t.paths()) == sorted(present)
