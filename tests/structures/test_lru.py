"""Unit tests for LRUCache (AM-Cache substrate)."""

import pytest

from repro.structures.lru import LRUCache


def test_capacity_validated():
    with pytest.raises(ValueError):
        LRUCache(0)


def test_put_get_roundtrip():
    c = LRUCache(4)
    c.put("a", 1)
    assert c.get("a") == 1
    assert c.hits == 1
    assert c.misses == 0


def test_miss_counts_and_default():
    c = LRUCache(4)
    assert c.get("missing", "dflt") == "dflt"
    assert c.misses == 1


def test_eviction_order_is_lru():
    c = LRUCache(2)
    c.put("a", 1)
    c.put("b", 2)
    c.get("a")  # touch 'a' so 'b' is the LRU victim
    evicted = c.put("c", 3)
    assert evicted == ("b", 2)
    assert "a" in c and "c" in c and "b" not in c
    assert c.evictions == 1


def test_update_moves_to_front_without_eviction():
    c = LRUCache(2)
    c.put("a", 1)
    c.put("b", 2)
    assert c.put("a", 10) is None
    evicted = c.put("c", 3)
    assert evicted == ("b", 2)
    assert c.get("a") == 10


def test_peek_does_not_touch_recency_or_counters():
    c = LRUCache(2)
    c.put("a", 1)
    c.put("b", 2)
    assert c.peek("a") == 1
    assert c.hits == 0
    c.put("c", 3)  # 'a' must still be the LRU victim
    assert "a" not in c


def test_invalidate():
    c = LRUCache(2)
    c.put("a", 1)
    assert c.invalidate("a")
    assert not c.invalidate("a")
    assert len(c) == 0


def test_invalidate_where_prefix():
    c = LRUCache(8)
    for path in ("/a/1", "/a/2", "/b/1"):
        c.put(path, path)
    dropped = c.invalidate_where(lambda k: k.startswith("/a/"))
    assert dropped == 2
    assert len(c) == 1
    assert "/b/1" in c


def test_hit_rate():
    c = LRUCache(2)
    c.put("a", 1)
    c.get("a")
    c.get("x")
    assert c.hit_rate == 0.5
    empty = LRUCache(2)
    assert empty.hit_rate == 0.0


def test_clear_and_items():
    c = LRUCache(4)
    c.put("a", 1)
    c.put("b", 2)
    assert list(c.items()) == [("a", 1), ("b", 2)]
    c.clear()
    assert len(c) == 0
