"""Tests for the interactive namespace shell."""

import pytest

from repro.errors import MetadataError
from repro.tools.shell import MantleShell, ShellError


@pytest.fixture()
def shell():
    sh = MantleShell()
    yield sh
    sh.client.close()


class TestPathResolution:
    def test_absolute_and_relative(self, shell):
        shell.execute("mkdir -p /a/b")
        shell.execute("cd /a")
        assert shell.resolve("b") == "/a/b"
        assert shell.resolve("/x") == "/x"
        assert shell.resolve(".") == "/a"
        assert shell.resolve("..") == "/"

    def test_parent_of_root_is_root(self, shell):
        assert shell.resolve("..") == "/"


class TestCommands:
    def test_mkdir_ls_roundtrip(self, shell):
        shell.execute("mkdir /data")
        shell.execute("put /data/a.bin")
        shell.execute("mkdir /data/sub")
        assert shell.execute("ls /data") == "a.bin\nsub/"

    def test_mkdir_p(self, shell):
        shell.execute("mkdir -p /x/y/z")
        assert "z/" in shell.execute("ls /x/y")

    def test_cd_pwd(self, shell):
        shell.execute("mkdir -p /w/deep")
        shell.execute("cd /w/deep")
        assert shell.execute("pwd") == "/w/deep"
        shell.execute("cd ..")
        assert shell.execute("pwd") == "/w"

    def test_cd_into_object_rejected(self, shell):
        shell.execute("mkdir /d")
        shell.execute("put /d/o")
        with pytest.raises(MetadataError):
            shell.execute("cd /d/o")

    def test_stat_output(self, shell):
        shell.execute("mkdir /s")
        shell.execute("put /s/o")
        out = shell.execute("stat /s")
        assert "directory" in out and "entries:     1" in out
        out = shell.execute("stat /s/o")
        assert "object" in out

    def test_mv_and_rm(self, shell):
        shell.execute("mkdir -p /m/src")
        shell.execute("put /m/src/o")
        shell.execute("mv /m/src /m/dst")
        assert shell.execute("ls /m") == "dst/"
        shell.execute("rm /m/dst/o")
        shell.execute("rmdir /m/dst")
        assert shell.execute("ls /m") == ""

    def test_chmod_spec_parsing(self, shell):
        shell.execute("mkdir /perm")
        shell.execute("chmod r-x /perm")
        with pytest.raises(MetadataError):
            shell.execute("put /perm/blocked")
        with pytest.raises(ShellError):
            shell.execute("chmod rwxx /perm")

    def test_tree_lists_recursively(self, shell):
        shell.execute("mkdir -p /t/a/b")
        shell.execute("put /t/a/b/leaf")
        out = shell.execute("tree /t")
        assert "leaf" in out and out.splitlines()[0] == "/t"

    def test_stats_reports_latencies(self, shell):
        shell.execute("mkdir /z")
        out = shell.execute("stats")
        assert "mkdir" in out
        assert "pathcache" in out

    def test_help_lists_commands(self, shell):
        out = shell.execute("help")
        for cmd in ("ls", "mkdir", "mv", "chmod"):
            assert cmd in out


class TestErrors:
    def test_unknown_command(self, shell):
        with pytest.raises(ShellError, match="unknown command"):
            shell.execute("frobnicate /x")

    def test_usage_errors(self, shell):
        for line in ("mkdir", "rmdir", "put", "rm", "stat", "mv /only-one",
                     "chmod rwx"):
            with pytest.raises(ShellError):
                shell.execute(line)

    def test_empty_line_is_noop(self, shell):
        assert shell.execute("") == ""
        assert shell.execute("   ") == ""

    def test_namespace_errors_bubble(self, shell):
        with pytest.raises(MetadataError):
            shell.execute("ls /missing")
