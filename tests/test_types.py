"""Unit tests for core value types (repro.types)."""

from repro.types import (
    ROOT_ID,
    AccessMeta,
    AttrMeta,
    DirentKey,
    EntryKind,
    Permission,
    make_stat,
)


def test_permission_intersection_is_lazy_hybrid():
    path_perm = Permission.ALL
    for level_perm in (Permission.ALL, Permission.READ | Permission.EXECUTE):
        path_perm &= level_perm
    assert path_perm == Permission.READ | Permission.EXECUTE
    assert not path_perm & Permission.WRITE


def test_access_meta_lock_cycle():
    meta = AccessMeta(pid=ROOT_ID, name="a", id=7)
    locked = meta.with_lock("uuid-1")
    assert locked.locked and locked.lock_owner == "uuid-1"
    assert not meta.locked  # frozen: original unchanged
    unlocked = locked.without_lock()
    assert not unlocked.locked and unlocked.lock_owner is None


def test_attr_meta_copy_is_independent():
    attr = AttrMeta(id=3, kind=EntryKind.DIRECTORY, entry_count=5)
    dup = attr.copy()
    dup.entry_count += 1
    assert attr.entry_count == 5
    assert dup.entry_count == 6


def test_dirent_key_hashable_and_equal():
    assert DirentKey(1, "a") == DirentKey(1, "a")
    assert len({DirentKey(1, "a"), DirentKey(1, "a"), DirentKey(2, "a")}) == 2


def test_make_stat_maps_fields():
    attr = AttrMeta(id=9, kind=EntryKind.OBJECT, size=123, ctime=1.0,
                    mtime=2.0, link_count=1)
    stat = make_stat("/a/obj", attr)
    assert stat.path == "/a/obj"
    assert stat.id == 9
    assert stat.size == 123
    assert not stat.is_dir


def test_dir_stat_is_dir():
    attr = AttrMeta(id=4, kind=EntryKind.DIRECTORY)
    assert make_stat("/d", attr).is_dir
