"""Tests for the mixed production-style workload and Zipf picker."""

import collections

import pytest

from repro.bench.cluster import build_system
from repro.bench.harness import run_workload
from repro.workloads.mixed import DEFAULT_MIX, MixedWorkload, ZipfPicker
from repro.workloads.namespace import build_namespace


class TestZipfPicker:
    def test_skewed_toward_head(self):
        picker = ZipfPicker(list(range(100)), s=1.2, seed=1)
        counts = collections.Counter(picker.pick() for _ in range(3000))
        head = sum(counts[i] for i in range(10))
        tail = sum(counts[i] for i in range(90, 100))
        assert head > 5 * max(1, tail)

    def test_uniform_when_s_zero(self):
        picker = ZipfPicker(list(range(10)), s=0.0, seed=2)
        counts = collections.Counter(picker.pick() for _ in range(5000))
        assert min(counts.values()) > 300  # roughly uniform

    def test_deterministic_per_seed(self):
        a = ZipfPicker(list(range(50)), seed=3)
        b = ZipfPicker(list(range(50)), seed=3)
        assert [a.pick() for _ in range(20)] == [b.pick() for _ in range(20)]

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfPicker([])
        with pytest.raises(ValueError):
            ZipfPicker([1], s=-1)


class TestMixedWorkload:
    def _spec(self):
        return build_namespace(num_dirs=60, objects_per_dir=5, seed=9,
                               root="/mix")

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            MixedWorkload(self._spec(), mix={"chown": 1.0})
        with pytest.raises(ValueError):
            MixedWorkload(self._spec(), mix={"objstat": 0.0})

    def test_weights_normalised(self):
        workload = MixedWorkload(self._spec(), mix={"objstat": 2, "create": 2})
        assert workload.mix == {"objstat": 0.5, "create": 0.5}

    def test_stream_respects_mix_shape(self):
        system = build_system("mantle", "quick")
        workload = MixedWorkload(self._spec(), num_clients=2,
                                 ops_per_client=300, seed=5)
        workload.setup(system)
        counts = collections.Counter(op for op, _ in workload.client_ops(0))
        # Lookup-dominated, like Table 3's production profile.
        assert counts["objstat"] > counts["create"] > counts["rmdir"]
        assert set(counts) <= set(DEFAULT_MIX)
        system.shutdown()

    def test_runs_clean_on_every_system(self):
        from repro.bench.cluster import SYSTEMS
        for name in SYSTEMS:
            system = build_system(name, "quick")
            workload = MixedWorkload(self._spec(), num_clients=4,
                                     ops_per_client=25, seed=6)
            metrics = run_workload(system, workload)
            assert metrics.ops_failed == 0, name
            assert metrics.ops_completed == 100
            system.shutdown()

    def test_zipf_access_hits_cache_well(self):
        """Skewed access should give TopDirPathCache a high hit rate."""
        system = build_system("mantle", "quick")
        workload = MixedWorkload(self._spec(), num_clients=8,
                                 ops_per_client=40,
                                 mix={"objstat": 1.0}, zipf_s=1.2)
        run_workload(system, workload)
        leader = system.index_group.leader_or_raise()
        assert leader.state_machine.cache.hit_rate > 0.5
        system.shutdown()

    def test_requires_setup(self):
        workload = MixedWorkload(self._spec())
        with pytest.raises(RuntimeError):
            list(workload.client_ops(0))
