"""Tests for trace recording and replay."""

import io

import pytest

from repro.bench.cluster import build_system
from repro.bench.harness import run_workload
from repro.workloads.mdtest import MdtestWorkload
from repro.workloads.trace import TraceRecorder, TraceWorkload


def record_mdtest_trace(op="create", items=4, clients=3):
    system = build_system("mantle", "quick")
    workload = MdtestWorkload(op, depth=6, items=items, num_clients=clients)
    recorder = TraceRecorder(workload)
    run_workload(system, recorder)
    buffer = io.StringIO()
    recorder.dump(buffer)
    system.shutdown()
    buffer.seek(0)
    return workload, buffer


class TestRecord:
    def test_records_every_operation(self):
        workload, buffer = record_mdtest_trace(items=4, clients=3)
        lines = buffer.read().strip().splitlines()
        assert len(lines) == 12

    def test_jsonl_shape(self):
        import json
        _w, buffer = record_mdtest_trace(items=2, clients=1)
        for line in buffer.read().strip().splitlines():
            record = json.loads(line)
            assert set(record) == {"client", "op", "args"}
            assert record["op"] == "create"


class TestReplay:
    def test_replay_reproduces_namespace(self):
        original, buffer = record_mdtest_trace(op="mkdir", items=3, clients=2)
        trace = TraceWorkload.load(buffer)
        assert trace.total_ops == 6
        # Replay against a fresh system (pre-populated like the original).
        system = build_system("mantle", "quick")
        original.setup(system)  # same working-dir pre-fill
        metrics = run_workload(system, trace, setup=False)
        assert metrics.ops_failed == 0
        assert metrics.ops_completed == 6
        system.shutdown()

    def test_replay_on_a_different_system(self):
        original, buffer = record_mdtest_trace(op="create", items=3,
                                               clients=2)
        trace = TraceWorkload.load(buffer)
        system = build_system("tectonic", "quick")
        original.setup(system)
        metrics = run_workload(system, trace, setup=False)
        assert metrics.ops_failed == 0
        system.shutdown()

    def test_per_client_order_preserved(self):
        _w, buffer = record_mdtest_trace(op="create", items=5, clients=2)
        trace = TraceWorkload.load(buffer)
        ops0 = [args[0] for _op, args in trace.client_ops(0)]
        assert ops0 == sorted(ops0)  # mdtest creates in sequence


class TestValidation:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            TraceWorkload([])

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            TraceWorkload(["not json"])

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            TraceWorkload(['{"client": 0, "op": "chmodx", "args": ["/x"]}'])

    def test_blank_lines_skipped(self):
        trace = TraceWorkload([
            "", '{"client": 0, "op": "objstat", "args": ["/x"]}', "  "])
        assert trace.total_ops == 1
