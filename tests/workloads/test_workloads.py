"""Tests for mdtest/spark/audio workloads and the bench harness."""

import pytest

from repro.bench.cluster import build_system
from repro.bench.harness import run_single_op, run_workload
from repro.workloads.audio import AudioPreprocessWorkload
from repro.workloads.mdtest import MdtestWorkload, lookup_only_workload
from repro.workloads.spark import SparkAnalyticsWorkload


def tiny_system(name="mantle"):
    return build_system(name, "quick")


class TestMdtestWorkload:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MdtestWorkload("chown")
        with pytest.raises(ValueError):
            MdtestWorkload("create", mode="warp")
        with pytest.raises(ValueError):
            MdtestWorkload("create", depth=1)

    def test_ops_require_setup(self):
        w = MdtestWorkload("create", num_clients=2, items=3)
        with pytest.raises(RuntimeError):
            list(w.client_ops(0))

    def test_create_stream_targets_own_dir(self):
        system = tiny_system()
        w = MdtestWorkload("create", depth=6, items=3, num_clients=2)
        w.setup(system)
        ops0 = list(w.client_ops(0))
        ops1 = list(w.client_ops(1))
        assert all(op == "create" for op, _ in ops0)
        paths0 = {args[0] for _, args in ops0}
        paths1 = {args[0] for _, args in ops1}
        assert not paths0 & paths1  # exclusive mode: disjoint targets
        system.shutdown()

    def test_shared_mode_same_parent(self):
        system = tiny_system()
        w = MdtestWorkload("mkdir", mode="shared", depth=6, items=2,
                           num_clients=3)
        w.setup(system)
        parents = set()
        for cid in range(3):
            for _op, args in w.client_ops(cid):
                parents.add(args[0].rsplit("/", 1)[0])
        assert len(parents) == 1  # one contended parent directory
        system.shutdown()

    def test_depth_matches_request(self):
        system = tiny_system()
        w = MdtestWorkload("create", depth=10, items=1, num_clients=1)
        w.setup(system)
        (_op, args), = list(w.client_ops(0))
        assert args[0].count("/") == 10
        system.shutdown()

    def test_describe_mentions_mode(self):
        assert "mkdir-s" in MdtestWorkload("mkdir", mode="shared").describe()
        assert "create-e" in MdtestWorkload("create").describe()

    @pytest.mark.parametrize("op", ["create", "delete", "objstat", "dirstat",
                                    "readdir", "mkdir", "rmdir", "dirrename"])
    def test_every_op_runs_clean_on_mantle(self, op):
        system = tiny_system()
        w = MdtestWorkload(op, depth=6, items=3, num_clients=4)
        metrics = run_workload(system, w)
        assert metrics.ops_failed == 0
        assert metrics.ops_completed == 12
        system.shutdown()

    def test_lookup_only_factory(self):
        w = lookup_only_workload(depth=8, items=2, num_clients=2)
        assert w.op == "objstat"
        assert w.depth == 8


class TestSparkWorkload:
    def test_stream_structure(self):
        system = tiny_system()
        w = SparkAnalyticsWorkload(num_clients=2, parts_per_task=2, rounds=1)
        w.setup(system)
        ops = [op for op, _ in w.client_ops(0)]
        assert ops == ["mkdir", "create", "create", "dirstat", "dirrename"]
        assert w.ops_per_client == len(ops)
        system.shutdown()

    def test_all_renames_target_shared_output(self):
        system = tiny_system()
        w = SparkAnalyticsWorkload(num_clients=3, parts_per_task=0, rounds=2)
        w.setup(system)
        outputs = set()
        for cid in range(3):
            for op, args in w.client_ops(cid):
                if op == "dirrename":
                    outputs.add(args[1].rsplit("/", 1)[0])
        assert outputs == {w.output}
        system.shutdown()

    def test_runs_clean_under_contention(self):
        system = tiny_system()
        w = SparkAnalyticsWorkload(num_clients=6, parts_per_task=1, rounds=2)
        metrics = run_workload(system, w)
        assert metrics.ops_failed == 0
        assert metrics.ops_completed == 6 * w.ops_per_client
        system.shutdown()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SparkAnalyticsWorkload(rounds=0)


class TestAudioWorkload:
    def test_stream_structure(self):
        system = tiny_system()
        w = AudioPreprocessWorkload(num_clients=2, segments=3, depth=8)
        w.setup(system)
        ops = [op for op, _ in w.client_ops(0)]
        assert ops == ["readdir"] + ["objstat"] * 3 + ["create"] * 3
        assert w.ops_per_client == len(ops)
        system.shutdown()

    def test_clients_have_disjoint_paths(self):
        system = tiny_system()
        w = AudioPreprocessWorkload(num_clients=3, segments=2)
        w.setup(system)
        all_paths = []
        for cid in range(3):
            all_paths.append({args[0] for _, args in w.client_ops(cid)})
        assert not (all_paths[0] & all_paths[1])
        assert not (all_paths[1] & all_paths[2])
        system.shutdown()

    def test_runs_clean(self):
        system = tiny_system()
        w = AudioPreprocessWorkload(num_clients=4, segments=3)
        metrics = run_workload(system, w)
        assert metrics.ops_failed == 0
        assert metrics.ops_completed == 4 * w.ops_per_client
        system.shutdown()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AudioPreprocessWorkload(segments=0)


class TestHarness:
    def test_metrics_throughput_positive(self):
        system = tiny_system()
        w = MdtestWorkload("objstat", depth=6, items=5, num_clients=4)
        metrics = run_workload(system, w)
        assert metrics.throughput_kops() > 0
        assert metrics.duration_us > 0
        system.shutdown()

    def test_failures_counted_not_raised(self):
        system = tiny_system()

        class BrokenWorkload:
            num_clients = 2

            def setup(self, _system):
                pass

            def client_ops(self, cid):
                yield ("objstat", (f"/missing/{cid}.bin",))

        metrics = run_workload(system, BrokenWorkload())
        assert metrics.ops_failed == 2
        assert metrics.ops_completed == 0
        system.shutdown()

    def test_run_single_op_context(self):
        system = tiny_system()
        system.bulk_mkdir("/x")
        system.bulk_create("/x/o")
        ctx = run_single_op(system, "objstat", "/x/o")
        assert ctx.latency > 0
        assert ctx.rpcs >= 1
        system.shutdown()

    def test_run_workload_on_every_system(self):
        from repro.bench.cluster import SYSTEMS
        for name in SYSTEMS:
            system = build_system(name, "quick")
            w = MdtestWorkload("objstat", depth=6, items=3, num_clients=2)
            metrics = run_workload(system, w)
            assert metrics.ops_failed == 0, name
            system.shutdown()
