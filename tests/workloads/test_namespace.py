"""Unit + property tests for the synthetic namespace generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paths import parent_and_name
from repro.workloads.namespace import (
    NamespaceSpec,
    build_namespace,
    client_paths,
    deep_chain,
    ensure_chain,
)
from repro.workloads.profiles import (
    FIGURE3_PROFILES,
    TABLE3_PROFILES,
    depth_cdf,
    profile_by_name,
)


class TestBuildNamespace:
    def test_deterministic_for_seed(self):
        a = build_namespace(num_dirs=50, seed=7)
        b = build_namespace(num_dirs=50, seed=7)
        assert a.directories == b.directories
        assert a.objects == b.objects

    def test_different_seeds_differ(self):
        a = build_namespace(num_dirs=50, seed=7)
        b = build_namespace(num_dirs=50, seed=8)
        assert a.directories != b.directories or a.objects != b.objects

    def test_every_parent_exists(self):
        spec = build_namespace(num_dirs=120, seed=3)
        dirs = set(spec.directories) | {"/"}
        for path in spec.directories:
            if path.count("/") > 1:
                parent, _name = parent_and_name(path)
                assert parent in dirs
        for obj in spec.objects:
            parent, _name = parent_and_name(obj)
            assert parent in dirs

    def test_object_ratio_near_request(self):
        spec = build_namespace(num_dirs=200, objects_per_dir=10, seed=5)
        assert spec.object_ratio > 0.6

    def test_mean_depth_in_range(self):
        spec = build_namespace(num_dirs=400, mean_depth=11.0, max_depth=24,
                               seed=5)
        assert 7.0 <= spec.average_depth() <= 15.0
        assert spec.max_depth() <= 24

    def test_invalid_num_dirs(self):
        with pytest.raises(ValueError):
            build_namespace(num_dirs=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=120),
           st.integers(min_value=0, max_value=6),
           st.integers(min_value=0, max_value=2 ** 31))
    def test_property_consistency(self, num_dirs, objects_per_dir, seed):
        spec = build_namespace(num_dirs=num_dirs,
                               objects_per_dir=objects_per_dir, seed=seed)
        assert len(set(spec.directories)) == len(spec.directories)
        assert len(set(spec.objects)) == len(spec.objects)
        assert spec.total_entries == len(spec.directories) + len(spec.objects)
        histogram = spec.depth_histogram()
        assert sum(histogram.values()) == spec.total_entries


class TestHelpers:
    def test_deep_chain(self):
        assert deep_chain("/r", 3) == ["/r/l1", "/r/l1/l2", "/r/l1/l2/l3"]

    def test_client_paths_deterministic(self):
        spec = build_namespace(num_dirs=30, seed=1)
        a = client_paths(spec, 4, 5, seed=2)
        b = client_paths(spec, 4, 5, seed=2)
        assert a == b
        assert len(a) == 4 and all(len(c) == 5 for c in a)

    def test_client_paths_requires_objects(self):
        empty = NamespaceSpec(directories=["/x"], objects=[], seed=0)
        with pytest.raises(ValueError):
            client_paths(empty, 2, 2)

    def test_ensure_chain_populates_system(self):
        from repro.core.config import MantleConfig
        from repro.core.service import MantleSystem
        system = MantleSystem(MantleConfig(
            num_db_servers=2, num_db_shards=4, num_proxies=1,
            index_replicas=1, index_cores=4, db_cores=4, proxy_cores=4))
        system.startup()
        deepest = ensure_chain(system, "/w", 4)
        assert deepest == "/w/l1/l2/l3/l4"
        system.shutdown()


class TestProfiles:
    def test_profile_lookup(self):
        assert profile_by_name("ns4").mean_depth == 10.6
        assert profile_by_name("C1").peak_lookup_kops == 400
        with pytest.raises(KeyError):
            profile_by_name("nope")

    def test_figure3_profiles_match_paper_stats(self):
        assert len(FIGURE3_PROFILES) == 5
        for profile in FIGURE3_PROFILES:
            assert profile.total_entries > 2e9
            assert 0.82 <= profile.object_fraction <= 0.917
            assert 10.0 <= profile.mean_depth <= 12.0

    def test_table3_small_object_fractions(self):
        fractions = [p.small_object_fraction for p in TABLE3_PROFILES]
        assert fractions == [0.620, 0.292, 0.337, 0.288, 0.281]

    def test_synthesize_respects_shape(self):
        spec = profile_by_name("ns1").synthesize(scale_entries=1500, seed=3)
        assert 500 <= spec.total_entries <= 4000
        assert spec.object_ratio > 0.7

    def test_depth_cdf_monotone_and_complete(self):
        spec = profile_by_name("ns2").synthesize(scale_entries=800, seed=4)
        cdf = depth_cdf(spec)
        values = list(cdf.values())
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)
