"""Differential testing: all four systems against a reference model.

A seeded random operation sequence is applied to Mantle, Tectonic,
InfiniFS and LocoFS and to a trivially-correct in-memory reference
filesystem.  Every system must agree with the reference on (a) whether
each operation succeeds and (b) the final namespace tree.  This is the
strongest conformance check in the suite: any divergence in rename
semantics, entry counting or error handling shows up here.
"""

import random

import pytest

from repro.errors import MetadataError
from repro.paths import is_prefix, normalize, parent_and_name
from repro.sim.stats import OpContext
from repro.ops import make_op
from tests.baselines.conftest import SYSTEM_NAMES, build_system


class ReferenceFS:
    """Dict-based model of the namespace semantics under test."""

    def __init__(self):
        self.dirs = {"/"}
        self.objects = set()

    def _parent_ok(self, path):
        parent, _name = parent_and_name(path)
        return parent in self.dirs

    def _exists(self, path):
        return path in self.dirs or path in self.objects

    def mkdir(self, path):
        if not self._parent_ok(path):
            return "error"
        if self._exists(path):
            return "error"
        self.dirs.add(path)
        return "ok"

    def create(self, path):
        if not self._parent_ok(path) or self._exists(path):
            return "error"
        self.objects.add(path)
        return "ok"

    def delete(self, path):
        if path not in self.objects:
            return "error"
        self.objects.remove(path)
        return "ok"

    def rmdir(self, path):
        if path not in self.dirs or path == "/":
            return "error"
        if any(p != path and is_prefix(path, p)
               for p in self.dirs | self.objects):
            return "error"
        self.dirs.remove(path)
        return "ok"

    def dirrename(self, src, dst):
        if src not in self.dirs or src == "/":
            return "error"
        if self._exists(dst) or not self._parent_ok(dst):
            return "error"
        if is_prefix(src, dst):
            return "error"  # loop
        moved_dirs = {p for p in self.dirs if is_prefix(src, p)}
        moved_objs = {p for p in self.objects if is_prefix(src, p)}
        self.dirs -= moved_dirs
        self.objects -= moved_objs
        for p in moved_dirs:
            self.dirs.add(dst + p[len(src):])
        for p in moved_objs:
            self.objects.add(dst + p[len(src):])
        return "ok"

    def objstat(self, path):
        return "ok" if path in self.objects else "error"

    def dirstat(self, path):
        return "ok" if path in self.dirs else "error"

    def listdir(self, path):
        if path not in self.dirs:
            return None
        out = set()
        for p in self.dirs | self.objects:
            if p != path and is_prefix(path, p):
                rest = p[len(path):].lstrip("/")
                out.add(rest.split("/")[0])
        return sorted(out)


def generate_ops(seed, count=60):
    """Seeded random op sequence over a small path universe."""
    rng = random.Random(seed)
    names = ["a", "b", "c", "d"]
    paths = ["/" + "/".join(combo)
             for depth in (1, 2, 3)
             for combo in _combos(names, depth)]
    ops = []
    for _ in range(count):
        kind = rng.choices(
            ["mkdir", "create", "delete", "rmdir", "dirrename",
             "objstat", "dirstat", "readdir"],
            [4, 4, 2, 2, 3, 2, 2, 1])[0]
        if kind == "dirrename":
            ops.append((kind, (rng.choice(paths), rng.choice(paths))))
        else:
            ops.append((kind, (rng.choice(paths),)))
    return ops


def _combos(names, depth):
    if depth == 1:
        return [(n,) for n in names]
    return [(n,) + rest for n in names for rest in _combos(names, depth - 1)]


def apply_to_system(system, ops):
    outcomes = []
    for op, args in ops:
        ctx = OpContext(op)
        target = "readdir" if op == "readdir" else op
        try:
            system.sim.run_process(system.perform(make_op(target, *args), ctx=ctx))
            outcomes.append("ok")
        except MetadataError:
            outcomes.append("error")
    return outcomes


def apply_to_reference(ref, ops):
    outcomes = []
    for op, args in ops:
        if op == "readdir":
            outcomes.append("ok" if ref.listdir(args[0]) is not None
                            else "error")
        elif op == "dirrename":
            outcomes.append(ref.dirrename(*args))
        else:
            outcomes.append(getattr(ref, op)(*args))
    return outcomes


def final_tree(system, ref):
    """Walk the reference's directories through the system and compare."""
    mismatches = []
    for directory in sorted(ref.dirs):
        expected = ref.listdir(directory)
        ctx = OpContext("readdir")
        try:
            got = system.sim.run_process(
                system.perform(make_op("readdir", directory), ctx=ctx))
        except MetadataError:
            mismatches.append((directory, expected, "<error>"))
            continue
        if sorted(got) != expected:
            mismatches.append((directory, expected, sorted(got)))
    return mismatches


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("name", SYSTEM_NAMES)
def test_system_agrees_with_reference(name, seed):
    ops = generate_ops(seed)
    system = build_system(name)
    try:
        ref = ReferenceFS()
        expected = apply_to_reference(ref, ops)
        got = apply_to_system(system, ops)
        disagreements = [
            (i, ops[i], e, g)
            for i, (e, g) in enumerate(zip(expected, got)) if e != g
        ]
        assert not disagreements, disagreements[:5]
        assert final_tree(system, ref) == []
    finally:
        system.shutdown()


def test_reference_model_sanity():
    ref = ReferenceFS()
    assert ref.mkdir("/a") == "ok"
    assert ref.mkdir("/a") == "error"
    assert ref.create("/a/o") == "ok"
    assert ref.rmdir("/a") == "error"  # not empty
    assert ref.dirrename("/a", "/b") == "ok"
    assert ref.objstat("/b/o") == "ok"
    assert ref.listdir("/b") == ["o"]
    assert ref.dirrename("/b", "/b/c") == "error"  # loop
    assert ref.delete("/b/o") == "ok"
    assert ref.rmdir("/b") == "ok"
    assert ref.listdir("/") == []
