"""LocoFS and Tectonic internals: tiering quirks and relaxed consistency."""

import pytest

from repro.baselines.locofs import LocoFSSystem
from repro.baselines.tectonic import TectonicSystem
from repro.errors import AlreadyExistsError, NoSuchPathError
from repro.raft.node import Role
from repro.sim.stats import OpContext
from repro.ops import make_op


def build_locofs(**kw):
    params = dict(num_db_servers=2, num_db_shards=4, num_proxies=2,
                  db_cores=8, proxy_cores=8)
    params.update(kw)
    system = LocoFSSystem(**params)
    system.startup()
    return system


def build_tectonic(**kw):
    params = dict(num_db_servers=2, num_db_shards=4, num_proxies=2,
                  db_cores=8, proxy_cores=8)
    params.update(kw)
    return TectonicSystem(**params)


def run_op(system, op, *args):
    ctx = OpContext(op)
    result = system.sim.run_process(system.perform(make_op(op, *args), ctx=ctx))
    return result, ctx


class TestLocoFSTiering:
    def test_directory_metadata_only_at_dir_server(self):
        system = build_locofs()
        system.bulk_mkdir("/onlydirs")
        from repro.tafdb.rows import dirent_key
        from repro.types import ROOT_ID
        shard_id = system.tafdb.partitioner.shard_of(ROOT_ID)
        server = system.tafdb.servers[
            system.tafdb.partitioner.server_of_shard(shard_id)]
        # No dirent row for the directory in the object store.
        assert server.shard(shard_id).read(
            dirent_key(ROOT_ID, "onlydirs")) is None
        leader = system.dir_group.leader_or_raise()
        assert leader.state_machine.table.get(ROOT_ID, "onlydirs") is not None
        system.shutdown()

    def test_mkdir_cannot_shadow_object(self):
        system = build_locofs()
        system.bulk_mkdir("/t")
        run_op(system, "create", "/t/name")
        with pytest.raises(AlreadyExistsError):
            run_op(system, "mkdir", "/t/name")
        system.shutdown()

    def test_rename_cannot_land_on_object(self):
        system = build_locofs()
        for p in ("/t", "/t/dir"):
            system.bulk_mkdir(p)
        run_op(system, "create", "/t/occupied")
        with pytest.raises(AlreadyExistsError):
            run_op(system, "dirrename", "/t/dir", "/t/occupied")
        system.shutdown()

    def test_failed_create_rolls_back_parent_counter(self):
        system = build_locofs()
        system.bulk_mkdir("/t")
        run_op(system, "create", "/t/o")
        count_before, _ = run_op(system, "dirstat", "/t")
        with pytest.raises(AlreadyExistsError):
            run_op(system, "create", "/t/o")  # duplicate
        count_after, _ = run_op(system, "dirstat", "/t")
        assert count_after.entry_count == count_before.entry_count
        system.shutdown()

    def test_dir_mutations_are_raft_committed(self):
        system = build_locofs()
        system.bulk_mkdir("/r")
        leader = system.dir_group.leader_or_raise()
        before = leader.proposals
        run_op(system, "mkdir", "/r/one")
        run_op(system, "dirrename", "/r/one", "/r/two")
        run_op(system, "rmdir", "/r/two")
        assert leader.proposals == before + 3
        # All replicas converge.
        system.sim.run(until=system.sim.now + 100_000)
        tables = [len(n.state_machine.table)
                  for n in system.dir_group.nodes.values()]
        assert len(set(tables)) == 1
        system.shutdown()

    def test_object_counter_updates_skip_raft(self):
        """LocoFS relaxes durability for object counters: creates bump the
        leader's state without a Raft round (followers lag until the next
        dir mutation replays... they never see it — the tiering trade)."""
        system = build_locofs()
        system.bulk_mkdir("/rc")
        leader = system.dir_group.leader_or_raise()
        before = leader.proposals
        run_op(system, "create", "/rc/o1")
        run_op(system, "create", "/rc/o2")
        assert leader.proposals == before  # no proposals for object ops
        stat, _ = run_op(system, "dirstat", "/rc")
        assert stat.entry_count == 2
        system.shutdown()

    def test_followers_do_not_serve(self):
        system = build_locofs()
        system.bulk_mkdir("/f")
        follower_id = next(nid for nid, n in system.dir_group.nodes.items()
                           if n.role is Role.FOLLOWER)
        follower_service = system.dir_services[follower_id]
        from repro.raft.node import NotLeaderError

        def body():
            yield from system.network.rpc(
                follower_service, "resolve", "/f", True)

        with pytest.raises(NotLeaderError):
            system.sim.run_process(body())
        system.shutdown()


class TestTectonicRelaxedConsistency:
    def test_sequential_resolution_one_rpc_per_level(self):
        system = build_tectonic()
        path = "/t1/t2/t3/t4"
        for i in range(1, 5):
            system.bulk_mkdir("/" + "/".join(f"t{j}" for j in range(1, i + 1)))
        system.bulk_create(path + "/obj")
        _, ctx = run_op(system, "objstat", path + "/obj")
        assert ctx.rpcs == 5  # 4 lookup levels + the final dirent read
        system.shutdown()

    def test_mkdir_uses_separate_transactions(self):
        """Relaxed consistency (§6.1): one mkdir commits as three separate
        single-shard transactions (dirent, attribute row, parent update)
        instead of one distributed transaction."""
        system = build_tectonic()
        system.bulk_mkdir("/w")
        commits_before = system.tafdb.total_commits
        run_op(system, "mkdir", "/w/fresh")
        assert system.tafdb.total_commits - commits_before == 3

    def test_dirent_visible_before_parent_update(self):
        """The relaxed window is real: commit the first transaction by hand
        and the child is already listable while the parent count is stale."""
        system = build_tectonic()
        system.bulk_mkdir("/w")
        sim = system.sim
        proxy_host, db = system.proxies[0]
        del proxy_host
        from repro.tafdb.rows import Dirent, attr_key, dirent_key
        from repro.tafdb.shard import WriteIntent
        from repro.types import AttrMeta, EntryKind
        pid = system._bulk_dirs["/w"]

        def half_mkdir():
            # Exactly what op_mkdir's first two transactions do.
            yield from db.execute_txn([WriteIntent(
                dirent_key(pid, "fresh"), "insert",
                Dirent(id=999, kind=EntryKind.DIRECTORY))])
            yield from db.execute_txn([WriteIntent(
                attr_key(999), "insert",
                AttrMeta(id=999, kind=EntryKind.DIRECTORY))])

        sim.run_process(half_mkdir())
        listing, _ = run_op(system, "readdir", "/w")
        parent, _ = run_op(system, "dirstat", "/w")
        assert "fresh" in listing          # child already visible...
        assert parent.entry_count == 0     # ...parent counter not yet bumped
        system.shutdown()

    def test_no_loop_detection_rpc_cost(self):
        system = build_tectonic()
        for p in ("/a", "/a/b", "/dst"):
            system.bulk_mkdir(p)
        _, ctx = run_op(system, "dirrename", "/a/b", "/dst/b2")
        assert ctx.phase_time("loop_detect") == 0
        system.shutdown()

    def test_rename_loop_still_rejected_client_side(self):
        system = build_tectonic()
        system.bulk_mkdir("/a")
        system.bulk_mkdir("/a/b")
        from repro.errors import RenameLoopError
        with pytest.raises(RenameLoopError):
            run_op(system, "dirrename", "/a", "/a/b/a2")
        system.shutdown()

    def test_missing_source_rename(self):
        system = build_tectonic()
        system.bulk_mkdir("/dst")
        with pytest.raises(NoSuchPathError):
            run_op(system, "dirrename", "/ghost", "/dst/g")
        system.shutdown()
