"""Shared fixtures: build each of the four systems at a tiny scale."""

import pytest

from repro.baselines import InfiniFSSystem, LocoFSSystem, TectonicSystem
from repro.core.config import MantleConfig
from repro.core.service import MantleSystem
from repro.sim.stats import OpContext
from repro.ops import make_op

SYSTEM_NAMES = ("mantle", "tectonic", "infinifs", "locofs")


def build_system(name: str):
    if name == "mantle":
        system = MantleSystem(MantleConfig(
            num_db_servers=2, num_db_shards=4, num_proxies=2,
            index_replicas=3, index_cores=8, db_cores=8, proxy_cores=8))
    elif name == "tectonic":
        system = TectonicSystem(num_db_servers=2, num_db_shards=4,
                                num_proxies=2, db_cores=8, proxy_cores=8)
    elif name == "infinifs":
        system = InfiniFSSystem(num_db_servers=2, num_db_shards=4,
                                num_proxies=2, db_cores=8, proxy_cores=8)
    elif name == "locofs":
        system = LocoFSSystem(num_db_servers=2, num_db_shards=4,
                              num_proxies=2, db_cores=8, proxy_cores=8)
    else:  # pragma: no cover
        raise ValueError(name)
    system.startup()
    return system


class SyncDriver:
    """Synchronous wrapper running one op at a time on any system."""

    def __init__(self, system):
        self.system = system
        self.contexts = []

    def run(self, op, *args):
        ctx = OpContext(op)
        result = self.system.sim.run_process(
            self.system.perform(make_op(op, *args), ctx=ctx))
        self.contexts.append(ctx)
        return result


@pytest.fixture(params=SYSTEM_NAMES)
def driver(request):
    system = build_system(request.param)
    yield SyncDriver(system)
    system.shutdown()
