"""Conformance suite: all four systems implement identical semantics.

Every scenario runs against Mantle, Tectonic, InfiniFS and LocoFS through
the shared MetadataSystem interface; only *performance* may differ between
systems, never results.
"""

import pytest

from repro.ops import make_op
from repro.errors import (
    AlreadyExistsError,
    IsADirectoryError,
    NoSuchPathError,
    NotEmptyError,
    RenameLoopError,
)


class TestObjectSemantics:
    def test_create_stat_delete_roundtrip(self, driver):
        driver.system.bulk_mkdir("/data")
        obj_id = driver.run("create", "/data/a.bin")
        stat = driver.run("objstat", "/data/a.bin")
        assert stat.id == obj_id
        driver.run("delete", "/data/a.bin")
        with pytest.raises(NoSuchPathError):
            driver.run("objstat", "/data/a.bin")

    def test_duplicate_create_rejected(self, driver):
        driver.system.bulk_mkdir("/data")
        driver.run("create", "/data/a.bin")
        with pytest.raises(AlreadyExistsError):
            driver.run("create", "/data/a.bin")

    def test_create_under_missing_parent_rejected(self, driver):
        with pytest.raises(NoSuchPathError):
            driver.run("create", "/missing/a.bin")

    def test_deep_path_operations(self, driver):
        path = "/l1/l2/l3/l4/l5/l6/l7/l8"
        parts = path.strip("/").split("/")
        for i in range(1, len(parts) + 1):
            driver.system.bulk_mkdir("/" + "/".join(parts[:i]))
        driver.run("create", path + "/deep.bin")
        assert driver.run("objstat", path + "/deep.bin").id > 0


class TestDirectorySemantics:
    def test_mkdir_visible_to_stat_and_readdir(self, driver):
        driver.system.bulk_mkdir("/top")
        driver.run("mkdir", "/top/sub")
        stat = driver.run("dirstat", "/top/sub")
        assert stat.is_dir
        assert "sub" in driver.run("readdir", "/top")

    def test_mkdir_duplicate_rejected(self, driver):
        driver.system.bulk_mkdir("/top")
        driver.run("mkdir", "/top/sub")
        with pytest.raises(AlreadyExistsError):
            driver.run("mkdir", "/top/sub")

    def test_parent_entry_count_grows(self, driver):
        driver.system.bulk_mkdir("/top")
        driver.run("mkdir", "/top/sub")
        driver.run("create", "/top/obj")
        assert driver.run("dirstat", "/top").entry_count == 2

    def test_rmdir_empty_only(self, driver):
        driver.system.bulk_mkdir("/top")
        driver.run("mkdir", "/top/victim")
        driver.run("create", "/top/victim/obj")
        with pytest.raises(NotEmptyError):
            driver.run("rmdir", "/top/victim")
        driver.run("delete", "/top/victim/obj")
        driver.run("rmdir", "/top/victim")
        with pytest.raises(NoSuchPathError):
            driver.run("dirstat", "/top/victim")


class TestRenameSemantics:
    def test_rename_moves_descendants(self, driver):
        driver.system.bulk_mkdir("/src")
        driver.system.bulk_mkdir("/src/inner")
        driver.system.bulk_create("/src/inner/obj")
        driver.system.bulk_mkdir("/dst")
        driver.run("dirrename", "/src/inner", "/dst/moved")
        assert driver.run("objstat", "/dst/moved/obj").id > 0
        with pytest.raises(NoSuchPathError):
            driver.run("objstat", "/src/inner/obj")

    def test_rename_loop_rejected(self, driver):
        driver.system.bulk_mkdir("/a")
        driver.system.bulk_mkdir("/a/b")
        with pytest.raises(RenameLoopError):
            driver.run("dirrename", "/a", "/a/b/a2")

    def test_lookup_after_rename_uses_new_path(self, driver):
        """Stale-cache check: warm lookups, rename, resolve again."""
        driver.system.bulk_mkdir("/w")
        driver.system.bulk_mkdir("/w/x")
        driver.system.bulk_mkdir("/w/x/y")
        driver.system.bulk_create("/w/x/y/obj")
        driver.run("objstat", "/w/x/y/obj")  # warm caches/predictions
        driver.system.bulk_mkdir("/dst")
        driver.run("dirrename", "/w/x", "/dst/x2")
        assert driver.run("objstat", "/dst/x2/y/obj").id > 0
        with pytest.raises(NoSuchPathError):
            driver.run("objstat", "/w/x/y/obj")


class TestErrors:
    def test_delete_on_directory_rejected(self, driver):
        driver.system.bulk_mkdir("/d")
        with pytest.raises(IsADirectoryError):
            driver.run("delete", "/d")

    def test_unknown_operation_rejected(self, driver):
        with pytest.raises(ValueError):
            driver.system.sim.run_process(
                driver.system.perform(make_op("chmodx", "/")))


class TestPhaseAccounting:
    def test_objstat_has_lookup_phase(self, driver):
        driver.system.bulk_mkdir("/p")
        driver.system.bulk_create("/p/o")
        driver.run("objstat", "/p/o")
        ctx = driver.contexts[-1]
        assert ctx.latency > 0
        # LocoFS folds dir-op resolution into execution; all systems must
        # still account the whole operation to *some* phase.
        assert sum(ctx.phases.values()) > 0

    def test_rpc_rounds_counted(self, driver):
        driver.system.bulk_mkdir("/p")
        driver.system.bulk_create("/p/o")
        driver.run("objstat", "/p/o")
        assert driver.contexts[-1].rpcs >= 1


class TestDataAccessMode:
    def test_data_access_adds_latency(self, driver):
        driver.system.bulk_mkdir("/p")
        driver.system.bulk_create("/p/o")
        driver.run("objstat", "/p/o")
        without = driver.contexts[-1].latency
        driver.system.data_access_enabled = True
        driver.run("objstat", "/p/o")
        with_data = driver.contexts[-1].latency
        driver.system.data_access_enabled = False
        assert with_data > without
