"""InfiniFS internals: id prediction, speculative fallback, coordinator."""

import pytest

from repro.baselines.infinifs import InfiniFSSystem, predict_dir_id
from repro.errors import NoSuchPathError, RenameLockConflict, RenameLoopError
from repro.sim.stats import OpContext
from repro.types import ROOT_ID
from repro.ops import make_op


def build(**kw):
    params = dict(num_db_servers=2, num_db_shards=4, num_proxies=2,
                  db_cores=8, proxy_cores=8)
    params.update(kw)
    system = InfiniFSSystem(**params)
    system.startup()
    return system


def run_op(system, op, *args):
    ctx = OpContext(op)
    result = system.sim.run_process(system.perform(make_op(op, *args), ctx=ctx))
    return result, ctx


class TestIdPrediction:
    def test_root_maps_to_root_id(self):
        assert predict_dir_id("/") == ROOT_ID

    def test_deterministic_and_distinct(self):
        assert predict_dir_id("/a/b") == predict_dir_id("/a/b")
        assert predict_dir_id("/a/b") != predict_dir_id("/a/c")

    def test_bulk_dirs_use_predicted_ids(self):
        system = build()
        dir_id = system.bulk_mkdir("/pred")
        assert dir_id == predict_dir_id("/pred")
        system.shutdown()

    def test_mkdir_uses_predicted_id(self):
        system = build()
        system.bulk_mkdir("/p")
        result, _ = run_op(system, "mkdir", "/p/q")
        assert result == predict_dir_id("/p/q")
        system.shutdown()


class TestSpeculativeResolution:
    def test_fresh_paths_resolve_in_one_parallel_round(self):
        system = build()
        for i in range(1, 6):
            system.bulk_mkdir("/" + "/".join(f"l{j}" for j in range(1, i + 1)))
        system.bulk_create("/l1/l2/l3/l4/l5/obj")
        _, ctx = run_op(system, "objstat", "/l1/l2/l3/l4/l5/obj")
        # All level reads issued concurrently: latency far below 6 serial
        # RTTs (600 us+), despite 6+ RPCs on the wire.
        assert ctx.rpcs >= 6
        assert ctx.latency < 450
        system.shutdown()

    def test_renamed_subtree_breaks_predictions_but_resolves(self):
        """After a rename, descendants keep creation-time ids != the hash of
        their new path: speculation misses and the sequential fallback must
        kick in (correct, slower)."""
        system = build()
        for path in ("/a", "/a/b", "/a/b/c", "/dst"):
            system.bulk_mkdir(path)
        system.bulk_create("/a/b/c/obj")
        run_op(system, "dirrename", "/a/b", "/dst/b2")
        fresh, ctx_renamed = run_op(system, "objstat", "/dst/b2/c/obj")
        assert fresh.id > 0
        # And equivalent-depth un-renamed paths still speculate fine.
        system.bulk_mkdir("/x")
        system.bulk_mkdir("/x/y")
        system.bulk_mkdir("/x/y/z")
        system.bulk_create("/x/y/z/obj")
        _, ctx_clean = run_op(system, "objstat", "/x/y/z/obj")
        assert ctx_renamed.latency > ctx_clean.latency
        system.shutdown()


class TestCoordinator:
    def test_mirror_tracks_mkdirs(self):
        system = build()
        system.bulk_mkdir("/m")
        result, _ = run_op(system, "mkdir", "/m/n")
        pid = predict_dir_id("/m")
        assert system.coordinator.mirror.get(pid, "n").id == result
        system.shutdown()

    def test_loop_detection_through_mirror(self):
        system = build()
        system.bulk_mkdir("/a")
        system.bulk_mkdir("/a/b")
        with pytest.raises(RenameLoopError):
            run_op(system, "dirrename", "/a", "/a/b/a2")
        system.shutdown()

    def test_rename_lock_conflicts(self):
        system = build()
        for path in ("/a", "/a/b", "/d1", "/d2"):
            system.bulk_mkdir(path)
        sim = system.sim

        def prepare_only(owner):
            result = yield from system.network.rpc(
                system.coordinator, "rename_prepare", "/a/b", "/d1/b", owner)
            return result

        sim.run_process(prepare_only("u1"))
        with pytest.raises(RenameLockConflict):
            sim.run_process(prepare_only("u2"))
        # Same owner re-prepares fine (§5.3-style idempotence).
        sim.run_process(prepare_only("u1"))
        system.shutdown()

    def test_lock_released_after_finish(self):
        system = build()
        for path in ("/a", "/a/b", "/d1"):
            system.bulk_mkdir(path)
        run_op(system, "dirrename", "/a/b", "/d1/b")
        assert system.coordinator.locks == {}
        system.shutdown()


class TestAMCache:
    def test_cache_accelerates_repeated_lookups(self):
        # One proxy, so repeated lookups share one AM-Cache instance.
        system = build(am_cache_capacity=256, num_proxies=1)
        chain = "/c1/c2/c3/c4/c5"
        for i in range(1, 6):
            system.bulk_mkdir("/" + "/".join(f"c{j}" for j in range(1, i + 1)))
        system.bulk_create(chain + "/obj")
        _, cold = run_op(system, "objstat", chain + "/obj")
        _, warm = run_op(system, "objstat", chain + "/obj")
        assert warm.rpcs < cold.rpcs
        system.shutdown()

    def test_stale_cache_entry_recovers_after_rename(self):
        system = build(am_cache_capacity=256)
        for path in ("/a", "/a/b", "/a/b/c", "/dst"):
            system.bulk_mkdir(path)
        system.bulk_create("/a/b/c/obj")
        run_op(system, "objstat", "/a/b/c/obj")  # warm the cache
        run_op(system, "dirrename", "/a/b", "/dst/b2")
        result, _ = run_op(system, "objstat", "/dst/b2/c/obj")
        assert result.id > 0
        with pytest.raises(NoSuchPathError):
            run_op(system, "objstat", "/a/b/c/obj")
        system.shutdown()
