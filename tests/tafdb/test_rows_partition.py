"""Unit tests for TafDB row model and partitioning."""

import pytest

from repro.tafdb.partition import Partitioner, pid_hash
from repro.tafdb.rows import (
    AttrDelta,
    Dirent,
    Row,
    RowKey,
    attr_key,
    delta_key,
    dirent_key,
)
from repro.types import AttrMeta, EntryKind


class TestRowKeys:
    def test_dirent_key_is_primary(self):
        key = dirent_key(5, "docs")
        assert key.ts == 0
        assert not key.is_attr
        assert not key.is_delta

    def test_attr_key_is_attr_not_delta(self):
        key = attr_key(5)
        assert key.is_attr
        assert not key.is_delta

    def test_delta_key(self):
        key = delta_key(5, 42)
        assert key.is_attr
        assert key.is_delta

    def test_delta_key_zero_ts_rejected(self):
        with pytest.raises(ValueError):
            delta_key(5, 0)

    def test_keys_order_and_hash(self):
        assert RowKey(1, "a") < RowKey(1, "b") < RowKey(2, "a")
        assert len({RowKey(1, "a"), RowKey(1, "a")}) == 1


class TestValues:
    def test_delta_apply(self):
        attrs = AttrMeta(id=1, kind=EntryKind.DIRECTORY,
                         link_count=2, entry_count=3, size=10, mtime=5.0)
        AttrDelta(link_delta=1, entry_delta=-1, size_delta=4, mtime=9.0).apply_to(attrs)
        assert (attrs.link_count, attrs.entry_count, attrs.size) == (3, 2, 14)
        assert attrs.mtime == 9.0

    def test_delta_does_not_move_mtime_backwards(self):
        attrs = AttrMeta(id=1, kind=EntryKind.DIRECTORY, mtime=10.0)
        AttrDelta(mtime=3.0).apply_to(attrs)
        assert attrs.mtime == 10.0

    def test_row_snapshot_isolates_attr_meta(self):
        attrs = AttrMeta(id=1, kind=EntryKind.DIRECTORY, entry_count=1)
        row = Row(attr_key(1), attrs)
        snap = row.snapshot()
        attrs.entry_count = 99
        assert snap.value.entry_count == 1

    def test_dirent_is_dir(self):
        d = Dirent(id=2, kind=EntryKind.DIRECTORY)
        o = Dirent(id=3, kind=EntryKind.OBJECT, attrs=AttrMeta(3, EntryKind.OBJECT))
        assert d.is_dir and not o.is_dir


class TestPartitioner:
    def test_deterministic(self):
        p = Partitioner(72, 18)
        assert p.shard_of(12345) == p.shard_of(12345)
        assert pid_hash(1) == pid_hash(1)

    def test_locality_same_pid_same_shard(self):
        p = Partitioner(8, 4)
        # dirent rows, attr row and delta rows of one directory share a pid.
        assert p.shard_of(7) == p.shard_of(7)

    def test_spread_across_shards(self):
        p = Partitioner(16, 4)
        shards = {p.shard_of(pid) for pid in range(1000)}
        assert len(shards) == 16

    def test_server_placement_round_robin(self):
        p = Partitioner(6, 3)
        assert [p.server_of_shard(s) for s in range(6)] == [0, 1, 2, 0, 1, 2]
        assert p.shards_on_server(1) == [1, 4]

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError):
            Partitioner(7, 3)

    def test_bad_shard_id_rejected(self):
        p = Partitioner(4, 2)
        with pytest.raises(ValueError):
            p.server_of_shard(4)

    def test_balance_is_reasonable(self):
        p = Partitioner(8, 4)
        counts = [0] * 8
        for pid in range(1, 8001):
            counts[p.shard_of(pid)] += 1
        assert min(counts) > 0.5 * (8000 / 8)
        assert max(counts) < 2.0 * (8000 / 8)
