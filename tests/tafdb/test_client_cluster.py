"""Integration tests: TafDBClient against a simulated TafDBCluster."""

import pytest

from repro.errors import TransactionAbort
from repro.sim.core import Simulator
from repro.sim.network import Network
from repro.tafdb.cluster import TafDBCluster
from repro.tafdb.rows import AttrDelta, Dirent, attr_key, delta_key, dirent_key
from repro.tafdb.shard import WriteIntent
from repro.types import AttrMeta, EntryKind


def build_cluster(num_servers=3, num_shards=6, **kw):
    sim = Simulator()
    net = Network(sim, one_way_us=50)
    cluster = TafDBCluster(sim, net, num_servers=num_servers,
                           num_shards=num_shards, start_compactors=False, **kw)
    return sim, net, cluster


def dir_attrs(dir_id, **kw):
    return AttrMeta(id=dir_id, kind=EntryKind.DIRECTORY, **kw)


def obj_dirent(obj_id):
    return Dirent(id=obj_id, kind=EntryKind.OBJECT,
                  attrs=AttrMeta(id=obj_id, kind=EntryKind.OBJECT))


def find_copartitioned_pids(client, base_pid, want_same=True, limit=10000):
    """Find a pid whose shard placement matches/differs from base_pid."""
    base = client.shard_of(base_pid)
    for pid in range(base_pid + 1, base_pid + limit):
        if (client.shard_of(pid) == base) == want_same:
            return pid
    raise AssertionError("no suitable pid found")


class TestSingleShard:
    def test_write_then_read(self):
        sim, net, cluster = build_cluster()
        client = cluster.client()

        def body():
            yield from client.execute_txn(
                [WriteIntent(attr_key(1), "insert", dir_attrs(1))])
            row = yield from client.read(attr_key(1))
            return row

        row = sim.run_process(body())
        assert row.value.id == 1

    def test_single_shard_txn_is_one_rpc(self):
        sim, net, cluster = build_cluster()
        client = cluster.client()

        def body():
            yield from client.execute_txn(
                [WriteIntent(attr_key(1), "insert", dir_attrs(1)),
                 WriteIntent(dirent_key(1, "a"), "insert", obj_dirent(2))])

        sim.run_process(body())
        assert net.rpc_count == 1

    def test_abort_propagates(self):
        sim, net, cluster = build_cluster()
        client = cluster.client()

        def body():
            yield from client.execute_txn(
                [WriteIntent(attr_key(1), "insert", dir_attrs(1))])
            yield from client.execute_txn(
                [WriteIntent(attr_key(1), "insert", dir_attrs(1))])

        with pytest.raises(TransactionAbort, match="exists"):
            sim.run_process(body())
        assert client.txn_aborts == 1


class TestTwoPhaseCommit:
    def _cross_shard_pids(self):
        sim, net, cluster = build_cluster()
        client = cluster.client()
        pid_b = find_copartitioned_pids(client, 1, want_same=False)
        return sim, net, cluster, client, 1, pid_b

    def test_cross_shard_txn_commits_atomically(self):
        sim, net, cluster, client, pa, pb = self._cross_shard_pids()

        def body():
            yield from client.execute_txn([
                WriteIntent(attr_key(pa), "insert", dir_attrs(pa)),
                WriteIntent(attr_key(pb), "insert", dir_attrs(pb)),
            ])
            ra = yield from client.read(attr_key(pa))
            rb = yield from client.read(attr_key(pb))
            return ra, rb

        ra, rb = sim.run_process(body())
        assert ra is not None and rb is not None
        # 2 prepares + 2 commits = 4 RPCs.
        assert net.rpc_count == 4 + 2  # plus the two reads

    def test_2pc_failure_aborts_prepared_branch(self):
        sim, net, cluster, client, pa, pb = self._cross_shard_pids()

        def body():
            # Pre-install pb so the second branch's insert will conflict.
            yield from client.execute_txn(
                [WriteIntent(attr_key(pb), "insert", dir_attrs(pb))])
            try:
                yield from client.execute_txn([
                    WriteIntent(attr_key(pa), "insert", dir_attrs(pa)),
                    WriteIntent(attr_key(pb), "insert", dir_attrs(pb)),
                ])
            except TransactionAbort:
                pass
            # pa's branch must have been rolled back: row absent, lock free.
            row = yield from client.read(attr_key(pa))
            return row

        assert sim.run_process(body()) is None
        for server in cluster.servers:
            for shard in server.shards.values():
                assert not shard._locks

    def test_concurrent_hot_row_updates_abort(self):
        """Two clients read-modify-write the same attr row; one must abort."""
        sim, net, cluster = build_cluster()
        c1, c2 = cluster.client(), cluster.client()
        outcomes = []

        def seed():
            yield from c1.execute_txn(
                [WriteIntent(attr_key(5), "insert", dir_attrs(5))])

        sim.run_process(seed())

        def updater(client, tag):
            try:
                row = yield from client.read(attr_key(5))
                new = row.value.copy()
                new.entry_count += 1
                # Cross-shard txn forces the prepare/commit window open.
                other = find_copartitioned_pids(client, 5, want_same=False)
                yield from client.execute_txn([
                    WriteIntent(attr_key(5), "update", new,
                                expect_version=row.version),
                    WriteIntent(dirent_key(other, tag), "insert",
                                obj_dirent(99)),
                ])
                outcomes.append((tag, "ok"))
            except TransactionAbort:
                outcomes.append((tag, "abort"))

        sim.process(updater(c1, "a"))
        sim.process(updater(c2, "b"))
        sim.run()
        assert sorted(o for _, o in outcomes) == ["abort", "ok"]

    def test_concurrent_delta_appends_all_commit(self):
        """Same hot directory, but via delta records: zero aborts."""
        sim, net, cluster = build_cluster()
        clients = [cluster.client() for _ in range(4)]
        failures = []

        def seed():
            yield from clients[0].execute_txn(
                [WriteIntent(attr_key(5), "insert", dir_attrs(5))])

        sim.run_process(seed())

        def appender(client):
            try:
                yield from client.execute_txn([
                    WriteIntent(delta_key(5, client.next_delta_ts()), "insert",
                                AttrDelta(entry_delta=1)),
                ])
            except TransactionAbort as exc:  # pragma: no cover
                failures.append(exc)

        for client in clients:
            sim.process(appender(client))
        sim.run()
        assert not failures
        assert cluster.total_aborts == 0


class TestClusterPlumbing:
    def test_scan_and_has_children(self):
        sim, net, cluster = build_cluster()
        client = cluster.client()

        def body():
            yield from client.execute_txn([
                WriteIntent(attr_key(1), "insert", dir_attrs(1)),
                WriteIntent(dirent_key(1, "b"), "insert", obj_dirent(2)),
                WriteIntent(dirent_key(1, "a"), "insert", obj_dirent(3)),
            ])
            page = yield from client.scan_children(1)
            empty = yield from client.has_children(999)
            return page, empty

        page, empty = sim.run_process(body())
        assert [n for n, _ in page] == ["a", "b"]
        assert empty is False

    def test_read_dir_attrs_folds_deltas(self):
        sim, net, cluster = build_cluster()
        client = cluster.client()

        def body():
            yield from client.execute_txn(
                [WriteIntent(attr_key(1), "insert", dir_attrs(1))])
            yield from client.execute_txn(
                [WriteIntent(delta_key(1, client.next_delta_ts()), "insert",
                             AttrDelta(entry_delta=4))])
            attrs = yield from client.read_dir_attrs(1)
            return attrs

        assert sim.run_process(body()).entry_count == 4

    def test_background_compactor_folds(self):
        sim = Simulator()
        net = Network(sim, one_way_us=50)
        cluster = TafDBCluster(sim, net, num_servers=2, num_shards=4,
                               compaction_period_us=1000.0)
        client = cluster.client()

        def body():
            yield from client.execute_txn(
                [WriteIntent(attr_key(1), "insert", dir_attrs(1))])
            yield from client.execute_txn(
                [WriteIntent(delta_key(1, client.next_delta_ts()), "insert",
                             AttrDelta(entry_delta=2))])
            yield sim.timeout(5000)
            row = yield from client.read(attr_key(1))
            return row

        row = sim.run_process(body())
        assert row.value.entry_count == 2  # folded into the primary row
        cluster.stop_compactors()
        sim.run()

    def test_unique_delta_timestamps_across_clients(self):
        sim, net, cluster = build_cluster()
        c1, c2 = cluster.client(), cluster.client()
        stamps = {c1.next_delta_ts() for _ in range(100)}
        stamps |= {c2.next_delta_ts() for _ in range(100)}
        assert len(stamps) == 200

    def test_total_rows_counter(self):
        sim, net, cluster = build_cluster()
        client = cluster.client()

        def body():
            yield from client.execute_txn(
                [WriteIntent(attr_key(1), "insert", dir_attrs(1))])

        sim.run_process(body())
        assert cluster.total_rows == 1
        assert cluster.total_commits == 1
