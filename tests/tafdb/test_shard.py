"""Unit tests for ShardState: transactions, conflicts, deltas, compaction."""

import pytest

from repro.errors import TransactionAbort
from repro.tafdb.rows import AttrDelta, Dirent, attr_key, delta_key, dirent_key
from repro.tafdb.shard import ShardState, WriteIntent
from repro.types import AttrMeta, EntryKind


def dir_attrs(dir_id, **kw):
    return AttrMeta(id=dir_id, kind=EntryKind.DIRECTORY, **kw)


def obj_dirent(obj_id):
    return Dirent(id=obj_id, kind=EntryKind.OBJECT,
                  attrs=AttrMeta(id=obj_id, kind=EntryKind.OBJECT))


def seed_directory(shard, dir_id=10, entries=("a", "b")):
    """Install a directory's attr row plus some child dirents."""
    intents = [WriteIntent(attr_key(dir_id), "insert", dir_attrs(dir_id))]
    for i, name in enumerate(entries):
        intents.append(WriteIntent(dirent_key(dir_id, name), "insert",
                                   obj_dirent(100 + i)))
    shard.execute("seed", intents)
    return dir_id


class TestBasicTxn:
    def test_insert_then_read(self):
        shard = ShardState()
        shard.execute("t1", [WriteIntent(dirent_key(1, "x"), "insert", obj_dirent(2))])
        row = shard.read(dirent_key(1, "x"))
        assert row is not None
        assert row.value.id == 2
        assert row.version == 1

    def test_read_missing_returns_none(self):
        assert ShardState().read(dirent_key(1, "ghost")) is None

    def test_update_bumps_version(self):
        shard = ShardState()
        seed_directory(shard, 10)
        key = attr_key(10)
        v1 = shard.read(key).version
        shard.execute("t2", [WriteIntent(key, "update", dir_attrs(10, entry_count=5),
                                         expect_version=v1)])
        row = shard.read(key)
        assert row.version == v1 + 1
        assert row.value.entry_count == 5

    def test_delete_removes_row_and_index(self):
        shard = ShardState()
        seed_directory(shard, 10, entries=("a",))
        shard.execute("t2", [WriteIntent(dirent_key(10, "a"), "delete")])
        assert shard.read(dirent_key(10, "a")) is None
        assert not shard.has_children(10)

    def test_insert_existing_aborts(self):
        shard = ShardState()
        seed_directory(shard, 10, entries=("a",))
        with pytest.raises(TransactionAbort, match="exists"):
            shard.execute("t2", [WriteIntent(dirent_key(10, "a"), "insert",
                                             obj_dirent(9))])
        assert shard.aborts == 1

    def test_update_missing_aborts(self):
        shard = ShardState()
        with pytest.raises(TransactionAbort, match="missing"):
            shard.execute("t1", [WriteIntent(attr_key(1), "update", dir_attrs(1))])

    def test_version_mismatch_aborts(self):
        shard = ShardState()
        seed_directory(shard, 10)
        with pytest.raises(TransactionAbort, match="version"):
            shard.execute("t2", [WriteIntent(attr_key(10), "update",
                                             dir_attrs(10), expect_version=999)])

    def test_failed_prepare_releases_all_locks(self):
        shard = ShardState()
        seed_directory(shard, 10, entries=("a",))
        # Second intent fails (exists), so the first intent's lock must drop.
        with pytest.raises(TransactionAbort):
            shard.prepare("t2", [
                WriteIntent(attr_key(10), "update", dir_attrs(10)),
                WriteIntent(dirent_key(10, "a"), "insert", obj_dirent(9)),
            ])
        assert not shard.is_locked(attr_key(10))

    def test_atomicity_nothing_applied_on_abort(self):
        shard = ShardState()
        seed_directory(shard, 10, entries=("a",))
        before = shard.read(attr_key(10))
        with pytest.raises(TransactionAbort):
            shard.execute("t2", [
                WriteIntent(attr_key(10), "update", dir_attrs(10, entry_count=99)),
                WriteIntent(dirent_key(10, "a"), "insert", obj_dirent(9)),
            ])
        after = shard.read(attr_key(10))
        assert after.version == before.version
        assert after.value.entry_count == before.value.entry_count


class TestTwoPhase:
    def test_prepare_blocks_conflicting_prepare(self):
        shard = ShardState()
        seed_directory(shard, 10)
        shard.prepare("t1", [WriteIntent(attr_key(10), "update", dir_attrs(10))])
        with pytest.raises(TransactionAbort, match="lock"):
            shard.prepare("t2", [WriteIntent(attr_key(10), "update", dir_attrs(10))])
        assert shard.lock_owner(attr_key(10)) == "t1"

    def test_commit_applies_and_releases(self):
        shard = ShardState()
        seed_directory(shard, 10)
        shard.prepare("t1", [WriteIntent(attr_key(10), "update",
                                         dir_attrs(10, entry_count=7))])
        shard.commit("t1")
        assert shard.read(attr_key(10)).value.entry_count == 7
        assert not shard.is_locked(attr_key(10))
        # The row is writable again.
        shard.prepare("t2", [WriteIntent(attr_key(10), "update", dir_attrs(10))])
        shard.abort("t2")

    def test_abort_discards_staged_writes(self):
        shard = ShardState()
        seed_directory(shard, 10)
        shard.prepare("t1", [WriteIntent(attr_key(10), "update",
                                         dir_attrs(10, entry_count=7))])
        shard.abort("t1")
        assert shard.read(attr_key(10)).value.entry_count == 0
        assert not shard.is_locked(attr_key(10))

    def test_commit_unprepared_rejected(self):
        with pytest.raises(TransactionAbort):
            ShardState().commit("ghost")

    def test_double_prepare_same_txn_rejected(self):
        shard = ShardState()
        seed_directory(shard, 10)
        shard.prepare("t1", [WriteIntent(attr_key(10), "update", dir_attrs(10))])
        with pytest.raises(TransactionAbort):
            shard.prepare("t1", [WriteIntent(attr_key(10), "update", dir_attrs(10))])

    def test_same_txn_may_lock_multiple_rows(self):
        shard = ShardState()
        seed_directory(shard, 10, entries=("a",))
        shard.prepare("t1", [
            WriteIntent(attr_key(10), "update", dir_attrs(10, entry_count=1)),
            WriteIntent(dirent_key(10, "new"), "insert", obj_dirent(55)),
        ])
        shard.commit("t1")
        assert shard.read(dirent_key(10, "new")) is not None


class TestScans:
    def test_scan_children_sorted(self):
        shard = ShardState()
        seed_directory(shard, 10, entries=("zeta", "alpha", "mid"))
        names = [n for n, _ in shard.scan_children(10)]
        assert names == ["alpha", "mid", "zeta"]

    def test_scan_children_paging(self):
        shard = ShardState()
        seed_directory(shard, 10, entries=tuple(f"e{i:02d}" for i in range(10)))
        page1 = shard.scan_children(10, limit=4)
        assert [n for n, _ in page1] == ["e00", "e01", "e02", "e03"]
        page2 = shard.scan_children(10, limit=4, start_after="e03")
        assert [n for n, _ in page2] == ["e04", "e05", "e06", "e07"]

    def test_scan_excludes_attr_and_delta_rows(self):
        shard = ShardState()
        seed_directory(shard, 10, entries=("a",))
        shard.execute("t9", [WriteIntent(delta_key(10, 5), "insert", AttrDelta(1))])
        names = [n for n, _ in shard.scan_children(10)]
        assert names == ["a"]

    def test_has_children(self):
        shard = ShardState()
        seed_directory(shard, 10, entries=("a",))
        assert shard.has_children(10)
        assert not shard.has_children(999)


class TestDeltas:
    def test_concurrent_delta_inserts_do_not_conflict(self):
        shard = ShardState()
        seed_directory(shard, 10)
        shard.prepare("t1", [WriteIntent(delta_key(10, 1), "insert",
                                         AttrDelta(entry_delta=1))])
        # A second txn appends its own delta while t1 is still in flight.
        shard.prepare("t2", [WriteIntent(delta_key(10, 2), "insert",
                                         AttrDelta(entry_delta=1))])
        shard.commit("t1")
        shard.commit("t2")
        assert shard.delta_count(10) == 2

    def test_read_attrs_folded_includes_deltas(self):
        shard = ShardState()
        seed_directory(shard, 10)
        for ts, delta in ((1, 2), (2, 3)):
            shard.execute(f"d{ts}", [WriteIntent(delta_key(10, ts), "insert",
                                                 AttrDelta(entry_delta=delta))])
        attrs = shard.read_attrs_folded(10)
        assert attrs.entry_count == 5
        # Folding at read time must not mutate the stored primary row.
        assert shard.read(attr_key(10)).value.entry_count == 0

    def test_compact_folds_and_removes_deltas(self):
        shard = ShardState()
        seed_directory(shard, 10)
        for ts in (1, 2, 3):
            shard.execute(f"d{ts}", [WriteIntent(delta_key(10, ts), "insert",
                                                 AttrDelta(entry_delta=1))])
        folded = shard.compact(10)
        assert folded == 3
        assert shard.delta_count(10) == 0
        assert shard.read(attr_key(10)).value.entry_count == 3
        assert shard.compactions == 1

    def test_compact_skips_when_primary_locked(self):
        shard = ShardState()
        seed_directory(shard, 10)
        shard.execute("d1", [WriteIntent(delta_key(10, 1), "insert",
                                         AttrDelta(entry_delta=1))])
        shard.prepare("t1", [WriteIntent(attr_key(10), "update", dir_attrs(10))])
        assert shard.compact(10) == 0
        shard.abort("t1")
        assert shard.compact(10) == 1

    def test_compact_orphaned_deltas_after_dir_removal(self):
        shard = ShardState()
        seed_directory(shard, 10)
        shard.execute("d1", [WriteIntent(delta_key(10, 1), "insert",
                                         AttrDelta(entry_delta=1))])
        shard.execute("rm", [WriteIntent(attr_key(10), "delete")])
        assert shard.compact(10) == 1  # orphan GC
        assert shard.pending_delta_rows == 0

    def test_compact_all(self):
        shard = ShardState()
        seed_directory(shard, 10)
        seed_directory(shard, 20)
        shard.execute("d1", [WriteIntent(delta_key(10, 1), "insert", AttrDelta(1))])
        shard.execute("d2", [WriteIntent(delta_key(20, 2), "insert", AttrDelta(1))])
        assert shard.compact_all() == 2
        assert shard.pending_delta_rows == 0

    def test_compaction_preserves_folded_semantics(self):
        """Folded read before compaction == plain read after compaction."""
        shard = ShardState()
        seed_directory(shard, 10)
        for ts in range(1, 6):
            shard.execute(f"d{ts}", [WriteIntent(delta_key(10, ts), "insert",
                                                 AttrDelta(entry_delta=1,
                                                           link_delta=2))])
        before = shard.read_attrs_folded(10)
        shard.compact(10)
        after = shard.read_attrs_folded(10)
        assert (before.entry_count, before.link_count) == \
               (after.entry_count, after.link_count)


class TestIntentValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            WriteIntent(attr_key(1), "upsert", dir_attrs(1))

    def test_insert_needs_value(self):
        with pytest.raises(ValueError):
            WriteIntent(attr_key(1), "insert")

    def test_delete_needs_no_value(self):
        WriteIntent(attr_key(1), "delete")  # should not raise
