"""Tests for the DBServer RPC layer: cost charging, latches, failures."""

import pytest

from repro.errors import ServiceUnavailableError, TransactionAbort
from repro.sim.core import Simulator
from repro.sim.host import CostModel, Host
from repro.sim.network import Network
from repro.tafdb.rows import Dirent, attr_key, dirent_key
from repro.tafdb.server import DBServer
from repro.tafdb.shard import WriteIntent
from repro.types import AttrMeta, EntryKind


def build():
    sim = Simulator()
    net = Network(sim, one_way_us=50)
    host = Host(sim, "db-0", cores=4)
    server = DBServer(host, [0, 1], CostModel())
    return sim, net, host, server


def seed_dir(sim, net, server, shard_id=0, dir_id=1):
    def body():
        yield from net.rpc(server, "execute", shard_id, "seed", [WriteIntent(
            attr_key(dir_id), "insert",
            AttrMeta(id=dir_id, kind=EntryKind.DIRECTORY))])
    sim.run_process(body())


class TestDispatch:
    def test_unknown_shard_rejected(self):
        sim, net, host, server = build()
        with pytest.raises(KeyError):
            server.shard(7)

    def test_read_charges_row_cost(self):
        sim, net, host, server = build()
        seed_dir(sim, net, server)
        busy_before = host.cpu_busy_us

        def body():
            row = yield from net.rpc(server, "read", 0, attr_key(1))
            return row

        assert sim.run_process(body()) is not None
        assert host.cpu_busy_us - busy_before == CostModel().db_row_read_us

    def test_dir_attrs_read_charges_per_delta(self):
        sim, net, host, server = build()
        seed_dir(sim, net, server)
        from repro.tafdb.rows import AttrDelta, delta_key

        def add_deltas():
            for ts in (1, 2, 3):
                yield from net.rpc(server, "execute", 0, f"d{ts}", [
                    WriteIntent(delta_key(1, ts), "insert",
                                AttrDelta(entry_delta=1))])

        sim.run_process(add_deltas())
        busy_before = host.cpu_busy_us

        def body():
            attrs = yield from net.rpc(server, "read_dir_attrs", 0, 1)
            return attrs

        attrs = sim.run_process(body())
        assert attrs.entry_count == 3
        assert host.cpu_busy_us - busy_before == 4 * CostModel().db_row_read_us

    def test_execute_fsyncs_once(self):
        sim, net, host, server = build()
        before = host.fsync_count
        seed_dir(sim, net, server)
        assert host.fsync_count == before + 1


class TestAtomicAdd:
    def test_serialises_on_per_directory_latch(self):
        sim, net, host, server = build()
        seed_dir(sim, net, server)
        finish_times = []

        def caller():
            yield from net.rpc(server, "atomic_add", 0, 1, 0, 1, 0.0)
            finish_times.append(sim.now)

        for _ in range(3):
            sim.process(caller())
        sim.run()
        # Each holds the latch through its work + durable write; arrivals
        # serialise rather than abort.
        assert len(finish_times) == 3
        assert finish_times == sorted(finish_times)
        gaps = [b - a for a, b in zip(finish_times, finish_times[1:])]
        assert all(gap >= CostModel().db_commit_sync_us for gap in gaps)

        def check():
            attrs = yield from net.rpc(server, "read_dir_attrs", 0, 1)
            return attrs

        assert sim.run_process(check()).entry_count == 3

    def test_different_directories_do_not_serialise(self):
        sim, net, host, server = build()
        seed_dir(sim, net, server, dir_id=1)
        seed_dir(sim, net, server, dir_id=2)
        finish_times = []

        def caller(dir_id):
            yield from net.rpc(server, "atomic_add", 0, dir_id, 0, 1, 0.0)
            finish_times.append(sim.now)

        sim.process(caller(1))
        sim.process(caller(2))
        sim.run()
        # Disk serialises the two durable writes, but no latch waiting on
        # top: both finish within one sync of each other.
        assert abs(finish_times[0] - finish_times[1]) <= \
            CostModel().db_commit_sync_us + 1

    def test_vanished_directory_returns_false(self):
        sim, net, host, server = build()

        def body():
            ok = yield from net.rpc(server, "atomic_add", 0, 99, 0, 1, 0.0)
            return ok

        assert sim.run_process(body()) is False


class TestFailureInjection:
    def test_crashed_server_rejects_rpcs(self):
        sim, net, host, server = build()
        seed_dir(sim, net, server)
        host.crash()

        def body():
            yield from net.rpc(server, "read", 0, attr_key(1))

        with pytest.raises(ServiceUnavailableError):
            sim.run_process(body())

    def test_state_survives_crash_recover(self):
        sim, net, host, server = build()
        seed_dir(sim, net, server)
        host.crash()
        host.recover()

        def body():
            row = yield from net.rpc(server, "read", 0, attr_key(1))
            return row

        assert sim.run_process(body()).value.id == 1

    def test_prepared_txn_abortable_after_proxy_gives_up(self):
        """A proxy crash between prepare and commit leaves locks; the abort
        path releases them so later transactions proceed."""
        sim, net, host, server = build()
        seed_dir(sim, net, server)

        def prepare_only():
            yield from net.rpc(server, "prepare", 0, "orphan", [WriteIntent(
                dirent_key(1, "x"), "insert",
                Dirent(id=5, kind=EntryKind.OBJECT,
                       attrs=AttrMeta(id=5, kind=EntryKind.OBJECT)))])

        sim.run_process(prepare_only())

        def conflicting():
            yield from net.rpc(server, "execute", 0, "t2", [WriteIntent(
                dirent_key(1, "x"), "insert",
                Dirent(id=6, kind=EntryKind.OBJECT,
                       attrs=AttrMeta(id=6, kind=EntryKind.OBJECT)))])

        with pytest.raises(TransactionAbort):
            sim.run_process(conflicting())

        def abort_then_retry():
            yield from net.rpc(server, "abort", 0, "orphan")
            yield from net.rpc(server, "execute", 0, "t3", [WriteIntent(
                dirent_key(1, "x"), "insert",
                Dirent(id=7, kind=EntryKind.OBJECT,
                       attrs=AttrMeta(id=7, kind=EntryKind.OBJECT)))])
            row = yield from net.rpc(server, "read", 0, dirent_key(1, "x"))
            return row

        assert sim.run_process(abort_then_retry()).value.id == 7
