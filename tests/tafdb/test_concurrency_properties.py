"""Property-based concurrency tests for TafDB.

Hypothesis drives random interleavings of transaction steps and delta
schedules; the invariants checked are the ones the paper's correctness
rests on: prepared-but-uncommitted writes are invisible, commits are
all-or-nothing, delta folding is order-insensitive and compaction is
semantically transparent.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TransactionAbort
from repro.tafdb.rows import AttrDelta, Dirent, attr_key, delta_key, dirent_key
from repro.tafdb.shard import ShardState, WriteIntent
from repro.types import AttrMeta, EntryKind


def fresh_shard(dir_ids=(1,)):
    shard = ShardState()
    for dir_id in dir_ids:
        shard.execute(f"seed-{dir_id}", [WriteIntent(
            attr_key(dir_id), "insert",
            AttrMeta(id=dir_id, kind=EntryKind.DIRECTORY))])
    return shard


@dataclasses.dataclass
class _Txn:
    txn_id: str
    entry_delta: int
    prepared: bool = False
    committed: bool = False
    aborted: bool = False


class TestInterleavedTransactions:
    @settings(max_examples=120, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3),       # which txn
                              st.sampled_from(["prepare", "commit", "abort"])),
                    max_size=24))
    def test_rmw_interleavings_never_corrupt_the_counter(self, schedule):
        """Optimistically updating one attr row from 4 interleaved txns:
        whatever the schedule, the final entry_count equals the number of
        successfully committed transactions."""
        shard = fresh_shard()
        txns = [_Txn(f"t{i}", 1) for i in range(4)]
        for which, action in schedule:
            txn = txns[which]
            if action == "prepare" and not (txn.prepared or txn.committed
                                            or txn.aborted):
                row = shard.read(attr_key(1))
                attrs = row.value.copy()
                attrs.entry_count += txn.entry_delta
                try:
                    shard.prepare(txn.txn_id, [WriteIntent(
                        attr_key(1), "update", attrs,
                        expect_version=row.version)])
                    txn.prepared = True
                except TransactionAbort:
                    txn.aborted = True
            elif action == "commit" and txn.prepared and not txn.committed:
                shard.commit(txn.txn_id)
                txn.committed = True
                txn.prepared = False
            elif action == "abort" and txn.prepared:
                shard.abort(txn.txn_id)
                txn.prepared = False
                txn.aborted = True
        # Release anything still holding a lock.
        for txn in txns:
            if txn.prepared:
                shard.abort(txn.txn_id)
        committed = sum(1 for t in txns if t.committed)
        assert shard.read(attr_key(1)).value.entry_count == committed
        assert not shard._locks

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(-3, 5), min_size=1, max_size=20),
           st.randoms(use_true_random=False))
    def test_delta_folding_is_order_insensitive(self, deltas, rng):
        """Deltas fold to the same attributes regardless of insertion or
        compaction order — the property that makes out-of-place updates
        conflict-free."""
        shard_a = fresh_shard()
        shard_b = fresh_shard()
        stamps = list(range(1, len(deltas) + 1))
        shuffled = stamps[:]
        rng.shuffle(shuffled)
        for ts, delta in zip(stamps, deltas):
            shard_a.execute(f"a{ts}", [WriteIntent(
                delta_key(1, ts), "insert", AttrDelta(entry_delta=delta))])
        for position, ts in enumerate(shuffled):
            delta = deltas[ts - 1]
            shard_b.execute(f"b{position}", [WriteIntent(
                delta_key(1, ts), "insert", AttrDelta(entry_delta=delta))])
        assert (shard_a.read_attrs_folded(1).entry_count
                == shard_b.read_attrs_folded(1).entry_count
                == sum(deltas))

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(-2, 4), min_size=1, max_size=16),
           st.integers(0, 16))
    def test_compaction_at_any_point_is_transparent(self, deltas, cut):
        """Compacting after any prefix of the delta stream never changes
        what dirstat reads."""
        shard = fresh_shard()
        for i, delta in enumerate(deltas, start=1):
            shard.execute(f"d{i}", [WriteIntent(
                delta_key(1, i), "insert", AttrDelta(entry_delta=delta))])
            if i == cut:
                shard.compact(1)
        folded = shard.read_attrs_folded(1).entry_count
        shard.compact(1)
        assert shard.read(attr_key(1)).value.entry_count == folded
        assert folded == sum(deltas)
        assert shard.delta_count(1) == 0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.sampled_from(["insert", "delete"]), min_size=1,
                    max_size=30))
    def test_children_index_matches_rows(self, operations):
        """The per-directory children index stays consistent with the row
        store under arbitrary insert/delete sequences."""
        shard = fresh_shard()
        live = set()
        counter = 0
        for i, op in enumerate(operations):
            if op == "insert":
                name = f"e{counter}"
                counter += 1
                shard.execute(f"i{i}", [WriteIntent(
                    dirent_key(1, name), "insert",
                    Dirent(id=100 + counter, kind=EntryKind.OBJECT,
                           attrs=AttrMeta(id=100 + counter,
                                          kind=EntryKind.OBJECT)))])
                live.add(name)
            elif live:
                victim = sorted(live)[0]
                shard.execute(f"d{i}", [WriteIntent(
                    dirent_key(1, victim), "delete")])
                live.discard(victim)
            names = [n for n, _ in shard.scan_children(1)]
            assert names == sorted(live)
            assert shard.has_children(1) == bool(live)


class TestTwoPhaseAtomicity:
    @settings(max_examples=60, deadline=None)
    @given(st.booleans(), st.integers(1, 3))
    def test_prepared_writes_invisible_until_commit(self, do_commit, n_rows):
        shard = fresh_shard()
        intents = []
        for i in range(n_rows):
            intents.append(WriteIntent(
                dirent_key(1, f"x{i}"), "insert",
                Dirent(id=50 + i, kind=EntryKind.OBJECT,
                       attrs=AttrMeta(id=50 + i, kind=EntryKind.OBJECT))))
        shard.prepare("txn", intents)
        for i in range(n_rows):
            assert shard.read(dirent_key(1, f"x{i}")) is None
        if do_commit:
            shard.commit("txn")
            for i in range(n_rows):
                assert shard.read(dirent_key(1, f"x{i}")) is not None
        else:
            shard.abort("txn")
            for i in range(n_rows):
                assert shard.read(dirent_key(1, f"x{i}")) is None
        assert not shard._locks
