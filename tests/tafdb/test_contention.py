"""Unit tests for the delta-mode ContentionRegistry."""

import pytest

from repro.tafdb.contention import ContentionRegistry


def test_below_threshold_stays_in_place():
    reg = ContentionRegistry(threshold=3, window_us=100.0)
    reg.note_abort(1, now=0.0)
    reg.note_abort(1, now=1.0)
    assert not reg.is_delta_mode(1, now=2.0)


def test_threshold_activates_delta_mode():
    reg = ContentionRegistry(threshold=3, window_us=100.0)
    for t in (0.0, 1.0, 2.0):
        reg.note_abort(1, now=t)
    assert reg.is_delta_mode(1, now=3.0)
    assert reg.activations == 1


def test_aborts_outside_window_do_not_count():
    reg = ContentionRegistry(threshold=3, window_us=10.0)
    reg.note_abort(1, now=0.0)
    reg.note_abort(1, now=1.0)
    reg.note_abort(1, now=50.0)  # first two expired
    assert not reg.is_delta_mode(1, now=51.0)


def test_mode_decays_after_quiet_window():
    reg = ContentionRegistry(threshold=2, window_us=10.0)
    reg.note_abort(1, now=0.0)
    reg.note_abort(1, now=1.0)
    assert reg.is_delta_mode(1, now=5.0)
    assert not reg.is_delta_mode(1, now=100.0)
    assert reg.active_count == 0


def test_sustained_contention_keeps_mode_alive():
    reg = ContentionRegistry(threshold=2, window_us=10.0)
    for t in range(0, 100, 5):
        reg.note_abort(1, now=float(t))
    assert reg.is_delta_mode(1, now=105.0)


def test_directories_tracked_independently():
    reg = ContentionRegistry(threshold=2, window_us=100.0)
    reg.note_abort(1, now=0.0)
    reg.note_abort(1, now=1.0)
    reg.note_abort(2, now=1.0)
    assert reg.is_delta_mode(1, now=2.0)
    assert not reg.is_delta_mode(2, now=2.0)


def test_disabled_registry_never_activates():
    reg = ContentionRegistry(threshold=1, window_us=100.0, enabled=False)
    reg.note_abort(1, now=0.0)
    assert not reg.is_delta_mode(1, now=1.0)


def test_force_delta_mode():
    reg = ContentionRegistry()
    reg.force_delta_mode(7, now=0.0)
    assert reg.is_delta_mode(7, now=1e12)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ContentionRegistry(threshold=0)
    with pytest.raises(ValueError):
        ContentionRegistry(window_us=0.0)
