"""Tests for cluster builders and the inspection helpers."""

import pytest

from repro.bench.cluster import SYSTEMS, build_system
from repro.bench.harness import run_workload
from repro.bench.inspect import (
    bottleneck,
    host_utilization_table,
    subsystem_counters_table,
)
from repro.workloads.mdtest import MdtestWorkload


class TestClusterBuilder:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            build_system("hdfs")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            build_system("mantle", scale="galactic")

    @pytest.mark.parametrize("name", SYSTEMS)
    def test_every_system_starts_at_quick_scale(self, name):
        system = build_system(name, "quick")
        assert system.name == name
        system.shutdown()

    def test_mantle_overrides_reach_config(self):
        system = build_system("mantle", "quick", num_learners=2)
        assert system.config.num_learners == 2
        assert len(system.index_group.learner_ids()) == 2
        system.shutdown()

    def test_tectonic_gets_extra_db_servers(self):
        tectonic = build_system("tectonic", "quick")
        mantle = build_system("mantle", "quick")
        assert len(tectonic.tafdb.servers) == len(mantle.tafdb.servers) + 3
        tectonic.shutdown()
        mantle.shutdown()


class TestInspection:
    def _run(self, name="mantle"):
        system = build_system(name, "quick")
        workload = MdtestWorkload("mkdir", depth=6, items=5, num_clients=8)
        metrics = run_workload(system, workload)
        return system, metrics

    def test_host_utilization_table_covers_hosts(self):
        system, metrics = self._run()
        table = host_utilization_table(system, metrics.duration_us)
        hosts = table.column("host")
        assert any(h.startswith("tafdb-") for h in hosts)
        assert any("indexnode" in h for h in hosts)
        assert any(h.startswith("proxy-") for h in hosts)
        assert all(0 <= u <= 100 for u in table.column("utilisation %"))
        system.shutdown()

    def test_subsystem_counters(self):
        system, _metrics = self._run()
        table = subsystem_counters_table(system)
        counters = dict(zip(table.column("counter"), table.column("value")))
        assert counters["tafdb.commits"] > 0
        assert counters["raft.proposals"] == 40  # 8 clients x 5 mkdirs
        system.shutdown()

    def test_bottleneck_names_a_host(self):
        system, metrics = self._run()
        name = bottleneck(system, metrics.duration_us)
        assert isinstance(name, str) and name != "unknown"
        system.shutdown()

    def test_inspection_works_for_baselines(self):
        for name in ("tectonic", "infinifs", "locofs"):
            system, metrics = self._run(name)
            table = host_utilization_table(system, metrics.duration_us)
            assert len(table.rows) > 0
            system.shutdown()
