"""Phase segmentation: labels, kernel-independence, digest agreement.

``segment_run`` replaces the fixed middle-half analysis window with
change-point segmentation over the busy-fraction and latency-digest
timelines.  Everything it consumes is simulated-time bookkeeping, so a
segmented run must produce byte-identical phases on all three kernels
— and the per-phase p99s it reads from the merged digests must agree
with the exact :class:`~repro.sim.stats.LatencyRecorder` quantiles
within the digest's documented error bound.
"""

import pytest

from repro.bench.analyze import (
    PHASE_LABELS,
    anomalous_phases,
    latency_p99_series,
    primary_phase,
    segment_run,
)
from repro.experiments.base import mdtest_metrics_triaged
from repro.sim.telemetry import DIGEST_ALPHA, latency_digests

import math


def _storm(clients: int = 48, items: int = 8):
    """A shared-directory mkdir storm — the fig14 '-s' regime."""
    return mdtest_metrics_triaged("mantle", "mkdir", mode="shared",
                                  clients=clients, items=items)


def _phase_dump(phases):
    return [(p.label, p.window, p.busy, p.rate_per_s, p.p99_us, p.ops,
             p.verdict.label, tuple(sorted(p.verdict.scores.items())),
             tuple(sorted(p.verdict.hotspots.items())))
            for p in phases]


class TestSegmentation:
    def test_storm_segments_into_labeled_contiguous_phases(self):
        metrics, _tracer, _telemetry, phases = _storm()
        assert phases, "a saturating storm must segment"
        assert all(p.label in PHASE_LABELS for p in phases)
        lo0 = phases[0].window[0]
        hiN = phases[-1].window[1]
        assert lo0 >= metrics.started_at - 1e-9
        assert hiN <= metrics.finished_at + 1e-9
        for left, right in zip(phases, phases[1:]):
            assert left.window[1] == right.window[0], "phases must tile"
        assert primary_phase(phases) is not None

    def test_storm_has_a_saturated_anomalous_phase(self):
        _metrics, _tracer, _telemetry, phases = _storm()
        assert any(p.label == "saturated" for p in phases)
        anomalous = anomalous_phases(phases)
        assert anomalous
        assert primary_phase(phases).label == "saturated"

    def test_each_phase_gets_its_own_verdict(self):
        _metrics, _tracer, _telemetry, phases = _storm()
        for phase in phases:
            assert phase.verdict.window == phase.window
            assert set(phase.verdict.scores) == {
                "cpu", "fsync", "rpc", "contention"}

    def test_phase_p99_agrees_with_latency_recorder(self):
        metrics, _tracer, telemetry, phases = _storm()
        digests = dict(latency_digests(telemetry))
        assert "mkdir" in digests
        digest = digests["mkdir"]
        recorder = metrics.latency["mkdir"]
        assert digest.count_over() == recorder.count
        est_p99 = digest.quantile(0.99)
        # The documented bound: DIGEST_ALPHA relative error against the
        # integer-rank sample quantile (the digest's own rank walk).
        ordered = sorted(recorder.samples)
        rank = max(0, int(math.ceil(0.99 * len(ordered))) - 1)
        true_rank_p99 = ordered[rank]
        assert abs(est_p99 - true_rank_p99) / true_rank_p99 \
            <= DIGEST_ALPHA + 1e-9
        # LatencyRecorder.p99 interpolates between ranks, so against it
        # the bound widens by at most the neighbouring-rank gap: the
        # estimate must land inside the alpha-widened envelope of the
        # two samples the interpolation mixes.
        frac_rank = 0.99 * (len(ordered) - 1)
        lo_sample = ordered[int(frac_rank)]
        hi_sample = ordered[min(len(ordered) - 1, int(frac_rank) + 1)]
        envelope_lo = (1 - DIGEST_ALPHA) * min(lo_sample, true_rank_p99)
        envelope_hi = (1 + DIGEST_ALPHA) * max(hi_sample, true_rank_p99)
        assert envelope_lo <= est_p99 <= envelope_hi
        assert envelope_lo <= recorder.p99 <= envelope_hi
        # Whole-run p99 must also bound every phase's p99 sensibly: each
        # phase p99 comes from the same buckets, so none can exceed the
        # run max.
        for phase in phases:
            assert phase.p99_us <= digest.max_value * (1 + DIGEST_ALPHA)

    def test_latency_p99_series_covers_the_run(self):
        metrics, _tracer, telemetry, _phases = _storm()
        series = latency_p99_series(telemetry)
        assert series
        starts = [start for start, _v in series]
        assert starts == sorted(starts)
        assert all(v > 0.0 for _s, v in series)
        assert starts[-1] <= metrics.finished_at


class TestSegmentationKernelIndependence:
    def test_phases_identical_across_all_three_kernels(self, monkeypatch):
        monkeypatch.delenv("MANTLE_SIM_FAST", raising=False)
        monkeypatch.delenv("MANTLE_SIM_LANES", raising=False)
        _m, _t, _tel, fast = _storm(clients=24, items=6)
        monkeypatch.setenv("MANTLE_SIM_FAST", "0")
        _m, _t, _tel, legacy = _storm(clients=24, items=6)
        monkeypatch.delenv("MANTLE_SIM_FAST")
        monkeypatch.setenv("MANTLE_SIM_LANES", "1")
        _m, _t, _tel, lanes = _storm(clients=24, items=6)
        assert _phase_dump(fast) == _phase_dump(legacy)
        assert _phase_dump(fast) == _phase_dump(lanes)

    def test_digests_do_not_change_simulated_results(self, monkeypatch):
        from repro.experiments.base import mdtest_metrics

        monkeypatch.delenv("MANTLE_TELEMETRY", raising=False)
        monkeypatch.delenv("MANTLE_TRACE", raising=False)
        plain = mdtest_metrics("mantle", "mkdir", mode="shared",
                               clients=24, items=6)
        instrumented, _tracer, _tel, _phases = _storm(clients=24, items=6)
        assert instrumented.ops_completed == plain.ops_completed
        assert instrumented.retries == plain.retries
        assert instrumented.duration_us == plain.duration_us
        for op in sorted(plain.latency):
            assert instrumented.latency[op].count == plain.latency[op].count
            assert instrumented.latency[op].mean == plain.latency[op].mean


class TestClassifyRunFallback:
    def test_classify_run_without_digests_still_verdicts(self):
        # classify_run must degrade to the middle-half window when the
        # telemetry has no features to segment (e.g. a NullTelemetry-like
        # registry populated with nothing).
        from repro.bench.analyze import classify_run
        from repro.bench.cluster import build_system
        from repro.bench.harness import run_workload
        from repro.sim.telemetry import Telemetry
        from repro.workloads.mdtest import MdtestWorkload

        system = build_system("mantle", "quick")
        try:
            metrics = run_workload(system, MdtestWorkload(
                "objstat", depth=6, items=4, num_clients=8))
            verdict = classify_run(system, metrics, Telemetry())
        finally:
            system.shutdown()
        assert verdict.label
        lo, hi = verdict.window
        assert metrics.started_at <= lo < hi <= metrics.finished_at
