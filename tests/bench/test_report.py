"""Tests for the report tables and formatting."""

import pytest

from repro.bench.report import (
    SUMMARY_COLUMNS,
    Table,
    format_table,
    latency_summary_table,
    print_tables,
    ratio,
)
from repro.sim.stats import LatencyRecorder


class TestTable:
    def test_add_row_width_checked(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_extraction(self):
        table = Table("t", ["name", "value"])
        table.add_row("x", 1)
        table.add_row("y", 2)
        assert table.column("value") == [1, 2]
        with pytest.raises(ValueError):
            table.column("missing")

    def test_as_dicts(self):
        table = Table("t", ["name", "value"])
        table.add_row("x", 1)
        assert table.as_dicts() == [{"name": "x", "value": 1}]

    def test_render_contains_everything(self):
        table = Table("My Title", ["col1", "col2"])
        table.add_row("hello", 3.14159)
        table.add_note("a note")
        text = table.render()
        assert "My Title" in text
        assert "col1" in text and "col2" in text
        assert "hello" in text
        assert "3.142" in text  # float formatting
        assert "note: a note" in text

    def test_columns_aligned(self):
        table = Table("t", ["a", "bbbb"])
        table.add_row("xxxxxxxx", 1)
        lines = format_table(table).splitlines()
        header, sep, row = lines[1], lines[2], lines[3]
        assert header.index("bbbb") == row.index("1")
        assert set(sep) <= {"-", " "}

    def test_float_formatting_rules(self):
        table = Table("t", ["v"])
        table.add_row(0.0)
        table.add_row(1234.5)
        table.add_row(42.42)
        table.add_row(0.123456)
        rendered = table.render()
        assert "1,235" in rendered or "1,234" in rendered
        assert "42.4" in rendered
        assert "0.123" in rendered


class TestLatencySummaryTable:
    def test_one_row_per_recorder_sorted(self):
        fast = LatencyRecorder("a")
        fast.extend([1.0, 2.0])
        slow = LatencyRecorder("b")
        slow.extend([10.0, 30.0])
        table = latency_summary_table({"b-op": slow, "a-op": fast},
                                      "digest", label="case")
        assert list(table.headers)[0] == "case"
        assert len(table.headers) == 1 + len(SUMMARY_COLUMNS)
        assert [row[0] for row in table.rows] == ["a-op", "b-op"]
        mean_col = table.column("mean us")
        assert mean_col == [1.5, 20.0]

    def test_empty_recorder_renders_zero_row(self):
        table = latency_summary_table({"empty": LatencyRecorder()}, "t")
        (row,) = table.rows
        assert row[0] == "empty"
        assert all(v == 0.0 for v in row[1:])


class TestHelpers:
    def test_ratio_safe(self):
        assert ratio(10, 5) == 2
        assert ratio(10, 0) == float("inf")
        assert ratio(0, 0) == 0.0

    def test_print_tables_returns_text(self, capsys):
        table = Table("t", ["a"])
        table.add_row(1)
        text = print_tables([table], header="HEAD")
        out = capsys.readouterr().out
        assert "HEAD" in text and "HEAD" in out
        assert "== t ==" in out
