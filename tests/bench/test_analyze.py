"""Unit tests for the saturation analyzer.

The classifier is pure arithmetic over telemetry + metrics, so most tests
run on synthetic timelines; one smoke test classifies a real (tiny) run
end to end through :func:`repro.bench.analyze.classify_run`.
"""

import pytest

from repro.bench.analyze import (
    DEFAULT_THRESHOLD,
    LABELS,
    SATURATION_KEYS,
    UNDERLOADED,
    classify,
    hit_ratio_series,
    steady_window,
    utilization_series,
)
from repro.sim.telemetry import Telemetry


class TestClassify:
    def test_saturated_resource_wins(self):
        assert classify({"cpu": 0.9, "fsync": 0.2, "rpc": 0.4,
                         "contention": 0.1}) == "cpu-bound"
        assert classify({"cpu": 0.3, "fsync": 0.95, "rpc": 0.1,
                         "contention": 0.1}) == "fsync-bound"
        assert classify({"cpu": 0.1, "fsync": 0.1, "rpc": 0.2,
                         "contention": 0.8}) == "contention-bound"

    def test_saturation_outranks_wire_fraction(self):
        # An RPC-chatty system at CPU saturation: the knee is the CPU
        # even though most op latency is still flight time.
        scores = {"cpu": 0.99, "fsync": 0.0, "rpc": 1.0, "contention": 0.0}
        assert classify(scores) == "cpu-bound"

    def test_rpc_bound_only_without_saturation(self):
        scores = {"cpu": 0.3, "fsync": 0.1, "rpc": 0.8, "contention": 0.0}
        assert classify(scores) == "rpc-bound"

    def test_underloaded_when_nothing_clears_threshold(self):
        scores = {"cpu": 0.2, "fsync": 0.1, "rpc": 0.3, "contention": 0.0}
        assert classify(scores) == UNDERLOADED

    def test_threshold_boundary_and_override(self):
        assert classify({"cpu": DEFAULT_THRESHOLD}) == "cpu-bound"
        assert classify({"cpu": DEFAULT_THRESHOLD - 0.01}) == UNDERLOADED
        assert classify({"cpu": 0.4}, threshold=0.3) == "cpu-bound"

    def test_tie_breaks_in_sorted_key_order(self):
        # cpu < fsync alphabetically wins an exact tie.
        assert classify({"cpu": 0.9, "fsync": 0.9}) == "cpu-bound"
        assert classify({"contention": 0.9, "cpu": 0.9}) == \
            "contention-bound"

    def test_label_tables_consistent(self):
        assert set(SATURATION_KEYS) < set(LABELS)
        assert all(label.endswith("-bound") for label in LABELS.values())


class TestSteadyWindow:
    def test_middle_half(self):
        assert steady_window(0.0, 100.0) == (25.0, 75.0)
        assert steady_window(100.0, 300.0, fraction=0.25) == (175.0, 225.0)

    def test_degenerate_run(self):
        assert steady_window(50.0, 50.0) == (50.0, 50.0)
        assert steady_window(50.0, 40.0) == (50.0, 50.0)


class TestSeriesHelpers:
    def test_utilization_series_normalises_by_capacity(self):
        telemetry = Telemetry(window_us=10.0)
        counter = telemetry.counter("host.cpu_busy_us", "h", capacity=2.0)
        counter.add_interval(0.0, 10.0, amount=20.0)  # both cores busy
        counter.add_interval(10.0, 20.0, amount=5.0)  # 25% busy
        assert utilization_series(counter) == [
            (0.0, pytest.approx(1.0)), (10.0, pytest.approx(0.25))]

    def test_hit_ratio_series_aggregates_hosts(self):
        telemetry = Telemetry(window_us=10.0)
        telemetry.counter("index.cache_hits", "h0").add(5.0, 3.0)
        telemetry.counter("index.cache_hits", "h1").add(5.0, 1.0)
        telemetry.counter("index.cache_misses", "h0").add(5.0, 4.0)
        telemetry.counter("index.cache_misses", "h1").add(15.0, 2.0)
        series = hit_ratio_series(telemetry)
        assert series == [(0.0, pytest.approx(0.5)),
                          (10.0, pytest.approx(0.0))]

    def test_hit_ratio_series_empty_without_counters(self):
        assert hit_ratio_series(Telemetry()) == []


class TestClassifyRun:
    def test_tiny_real_run_produces_verdict(self):
        from repro.experiments.base import mdtest_metrics_telemetry

        metrics, telemetry, verdict = mdtest_metrics_telemetry(
            "mantle", "objstat", clients=8, items=4)
        assert verdict.label in set(LABELS.values()) | {UNDERLOADED}
        assert set(verdict.scores) == {"cpu", "fsync", "rpc", "contention"}
        assert all(0.0 <= s <= 1.0 for s in verdict.scores.values())
        lo, hi = verdict.window
        assert metrics.started_at <= lo <= hi <= metrics.finished_at
        assert telemetry.hosts("host.cpu_busy_us")  # instrumented hosts
        assert "=" in verdict.describe()

    def test_saturated_run_is_cpu_bound(self):
        from repro.experiments.base import mdtest_metrics_telemetry

        # Leader-only objstat at high client count pins the leader
        # IndexNode's CPU (the fig19b knee).
        from repro.core.config import MantleConfig

        _, _, verdict = mdtest_metrics_telemetry(
            "mantle", "objstat", clients=320, items=10,
            config=MantleConfig(enable_follower_read=False))
        assert verdict.label == "cpu-bound"
        assert verdict.hotspots["cpu"].startswith("default-indexnode")
