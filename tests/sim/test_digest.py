"""Windowed latency digests: error bounds, merge algebra, wire roundtrip.

The :class:`~repro.sim.telemetry.Digest` is the substrate under the p99
timelines, the tail-keeper's adaptive thresholds and the per-phase p99s
in triage exports, so its two contracts are pinned here directly:

* any quantile is within :data:`~repro.sim.telemetry.DIGEST_ALPHA`
  relative error of the true sample quantile at the same integer rank,
* merging is bucket-count addition — associative, commutative, and
  exactly order-independent — so cross-process aggregation cannot move
  a byte of the export.
"""

import math

import pytest

from repro.sim.telemetry import (
    DIGEST_ALPHA,
    DIGEST_MAX_BUCKET,
    DIGEST_MIN_VALUE_US,
    Digest,
    _bucket_quantile,
    digest_bucket,
    digest_bucket_value,
    digest_from_jsonable,
)


def _digest(window_us: float = 1_000.0) -> Digest:
    return Digest("op.latency.test", None, window_us)


def _samples(n: int = 3000, seed: int = 7) -> list:
    """Deterministic pseudo-random values spanning four decades."""
    values = []
    state = seed
    for _ in range(n):
        state = (state * 9301 + 49297) % 233280
        # Log-uniform over [1, 10^4] us so every decade gets samples.
        values.append(10.0 ** (4.0 * state / 233280.0))
    return values


class TestDigestErrorBound:
    def test_bucket_representative_within_alpha_everywhere(self):
        # The representative value must be within alpha of ANY value in
        # its bucket, not just the recorded one.
        for value in (1.001, 2.5, 37.0, 999.9, 123456.0, 9.9e6):
            rep = digest_bucket_value(digest_bucket(value))
            assert abs(rep - value) / value <= DIGEST_ALPHA + 1e-9

    def test_quantiles_within_alpha_of_true_sample_quantile(self):
        digest = _digest()
        values = _samples()
        for i, value in enumerate(values):
            digest.record(float(i), value)
        ordered = sorted(values)
        for q in (0.10, 0.50, 0.90, 0.99, 0.999):
            # Same integer-rank convention as _bucket_quantile.
            rank = max(0, int(math.ceil(q * len(ordered))) - 1)
            true = ordered[rank]
            estimate = digest.quantile(q)
            assert abs(estimate - true) / true <= DIGEST_ALPHA + 1e-9, (
                f"q={q}: {estimate} vs true {true}")

    def test_windowed_quantile_covers_only_selected_windows(self):
        digest = _digest(window_us=100.0)
        for i in range(100):
            digest.record(float(i), 10.0)        # window 0
        for i in range(100):
            digest.record(100.0 + i, 1_000.0)    # window 1
        early = digest.quantile(0.99, lo=0.0, hi=100.0)
        late = digest.quantile(0.99, lo=100.0, hi=200.0)
        assert abs(early - 10.0) / 10.0 <= DIGEST_ALPHA
        assert abs(late - 1_000.0) / 1_000.0 <= DIGEST_ALPHA
        assert digest.count_over(0.0, 100.0) == 100
        assert digest.count_over() == 200

    def test_values_below_min_land_in_bucket_zero(self):
        assert digest_bucket(0.0) == 0
        assert digest_bucket(DIGEST_MIN_VALUE_US) == 0
        assert digest_bucket(1e30) == DIGEST_MAX_BUCKET

    def test_bucket_quantile_empty_is_zero(self):
        assert _bucket_quantile({}, 0.99) == 0.0


class TestDigestMergeAlgebra:
    def _three(self):
        parts = []
        for seed in (1, 2, 3):
            digest = _digest()
            for i, value in enumerate(_samples(400, seed=seed)):
                digest.record(float(i * 17), value)
            parts.append(digest)
        return parts

    @staticmethod
    def _buckets(digest: Digest):
        return {idx: (dict(cell[0]), cell[1], cell[3])
                for idx, cell in digest.windows.items()}

    def test_merge_is_associative(self):
        a1, b1, c1 = self._three()
        a2, b2, c2 = self._three()
        a1.merge(b1)
        a1.merge(c1)          # (a + b) + c
        b2.merge(c2)
        a2.merge(b2)          # a + (b + c)
        assert self._buckets(a1) == self._buckets(a2)
        assert a1.total_count == a2.total_count
        assert a1.quantile(0.99) == a2.quantile(0.99)

    def test_merge_is_commutative(self):
        a1, b1, _ = self._three()
        a2, b2, _ = self._three()
        a1.merge(b1)
        b2.merge(a2)
        assert self._buckets(a1) == self._buckets(b2)

    def test_merge_matches_single_writer(self):
        # Two halves merged == everything recorded into one digest.
        values = _samples(600)
        split = len(values) // 2
        whole, left, right = _digest(), _digest(), _digest()
        for i, value in enumerate(values):
            whole.record(float(i), value)
            (left if i < split else right).record(float(i), value)
        left.merge(right)
        assert self._buckets(left) == self._buckets(whole)
        assert left.quantile(0.5) == whole.quantile(0.5)


class TestDigestWireForm:
    def test_roundtrip_preserves_buckets_counts_and_quantiles(self):
        digest = _digest(window_us=250.0)
        for i, value in enumerate(_samples(500)):
            digest.record(float(i * 3), value)
        clone = digest_from_jsonable(digest.to_jsonable())
        assert clone.window_us == digest.window_us
        assert sorted(clone.windows) == sorted(digest.windows)
        for idx, cell in digest.windows.items():
            assert clone.windows[idx][0] == cell[0]   # buckets exact
            assert clone.windows[idx][1] == cell[1]   # count exact
            assert clone.windows[idx][3] == cell[3]   # max exact
        assert clone.total_count == digest.total_count
        # total_sum is NOT bit-stable across the roundtrip (per-window
        # sums re-add in window order); it must still agree closely.
        assert clone.total_sum == pytest.approx(digest.total_sum)
        for q in (0.5, 0.99):
            assert clone.quantile(q) == digest.quantile(q)

    def test_series_reports_per_window_quantiles(self):
        digest = _digest(window_us=100.0)
        for i in range(64):
            digest.record(50.0, 20.0)
            digest.record(150.0, 2_000.0)
        series = digest.series(q=0.99)
        assert [start for start, _q, _n in series] == [0.0, 100.0]
        assert series[0][2] == 64 and series[1][2] == 64
        assert abs(series[0][1] - 20.0) / 20.0 <= DIGEST_ALPHA
        assert abs(series[1][1] - 2_000.0) / 2_000.0 <= DIGEST_ALPHA
