"""Edge-case tests for the DES kernel's failure and composition paths."""

import pytest

from repro.sim.core import AllOf, AnyOf, Interrupt, Simulator


class TestConditionFailures:
    def test_all_of_fails_fast_on_child_failure(self):
        sim = Simulator()

        def failer():
            yield sim.timeout(2)
            raise ValueError("child exploded")

        def slow():
            yield sim.timeout(100)
            return "late"

        def body():
            try:
                yield AllOf(sim, [sim.process(failer()), sim.process(slow())])
            except ValueError as exc:
                return (str(exc), sim.now)

        assert sim.run_process(body()) == ("child exploded", 2.0)

    def test_any_of_failure_propagates(self):
        sim = Simulator()

        def failer():
            yield sim.timeout(1)
            raise KeyError("boom")

        def body():
            try:
                yield AnyOf(sim, [sim.process(failer()), sim.timeout(50)])
            except KeyError:
                return "caught"

        assert sim.run_process(body()) == "caught"

    def test_nested_conditions(self):
        sim = Simulator()

        def body():
            inner = AllOf(sim, [sim.timeout(3, "a"), sim.timeout(5, "b")])
            index, value = yield AnyOf(sim, [inner, sim.timeout(50, "slow")])
            return (index, value, sim.now)

        assert sim.run_process(body()) == (0, ["a", "b"], 5.0)

    def test_mixed_simulator_events_rejected(self):
        sim_a, sim_b = Simulator(), Simulator()
        from repro.sim.core import SimulationError
        with pytest.raises(SimulationError):
            AllOf(sim_a, [sim_a.timeout(1), sim_b.timeout(1)])


class TestInterruptEdges:
    def test_interrupt_during_resource_wait_releases_queue_slot(self):
        from repro.sim.resources import Resource
        sim = Simulator()
        res = Resource(sim, 1)
        order = []

        def holder():
            req = res.request()
            yield req
            try:
                yield sim.timeout(50)
            finally:
                res.release(req)
            order.append("holder")

        def victim():
            req = res.request()
            try:
                yield req
            except Interrupt:
                req.cancel()
                res.release(req)
                order.append("victim-interrupted")
                return

        def third():
            req = res.request()
            yield req
            res.release(req)
            order.append("third")

        sim.process(holder())
        victim_proc = sim.process(victim())
        sim.process(third())

        def attacker():
            yield sim.timeout(10)
            victim_proc.interrupt("bail")

        sim.process(attacker())
        sim.run()
        # The interrupted waiter must not block the third process.
        assert order == ["victim-interrupted", "holder", "third"]

    def test_interrupt_chain_unwinds_yield_from(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(100)

        def outer():
            try:
                yield from inner()
            except Interrupt as intr:
                return f"unwound:{intr.cause}"

        proc = sim.process(outer())

        def attacker():
            yield sim.timeout(5)
            proc.interrupt("deep")

        sim.process(attacker())
        sim.run()
        assert proc.value == "unwound:deep"


class TestRunSemantics:
    def test_run_until_leaves_unrelated_events_queued(self):
        sim = Simulator()
        late = []

        def background():
            yield sim.timeout(1000)
            late.append(sim.now)

        def quick():
            yield sim.timeout(5)
            return "done"

        sim.process(background())
        proc = sim.process(quick())
        sim.run_until(proc)
        assert proc.value == "done"
        assert late == []          # background still pending
        sim.run()
        assert late == [1000.0]    # and still runnable afterwards

    def test_clock_never_goes_backwards(self):
        sim = Simulator()
        stamps = []

        def worker(delay):
            yield sim.timeout(delay)
            stamps.append(sim.now)

        for delay in (5, 1, 9, 1, 7):
            sim.process(worker(delay))
        sim.run()
        assert stamps == sorted(stamps)

    def test_event_value_accessors_guarded(self):
        from repro.sim.core import SimulationError
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok
        ev.succeed(7)
        assert ev.value == 7 and ev.ok
