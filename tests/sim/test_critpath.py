"""Critical-path extraction invariants (``repro.sim.critpath``).

The guarantees that make the gating profile trustworthy are pinned here:

* per-op conservation — the extracted path segments of every op sum to
  that op's end-to-end duration exactly, so aggregated center shares sum
  to 100% of client latency,
* fan-out folding — within a group of time-overlapping ``join_to``
  siblings only the gating leg (last to finish) stays on the path, while
  serial (back-to-back) siblings all stay,
* segment decomposition — charges verbatim, queue refined by resource,
  blocked-on edges capped by the idle residual, the rest ``idle``,
* exports are schema-valid and byte-identical across kernels, and
* extraction is pure bookkeeping: simulated results with tracing on are
  bit-identical to an uninstrumented run on both kernels.
"""

import json

import pytest

from repro.experiments.base import mdtest_metrics, mdtest_metrics_profiled
from repro.sim.critpath import (
    UNKNOWN_CULPRIT,
    _fold_children,
    build_blame,
    build_critpath,
    collapse_kind,
    component_of,
    contrast_with_profile,
    critpath_from_tracer,
    predict_speedup,
    predict_speedup_corrected,
    render_blame_exemplar,
    to_blame_payload,
    to_critpath_payload,
    validate_blame,
    validate_critpath,
)
from repro.sim.host import CostOverrides
from repro.sim.profile import profile_from_tracer
from repro.sim.telemetry import Telemetry
from repro.sim.trace import CAT_OP, CAT_PHASE, CAT_RPC, Tracer


class _Interval:
    """Minimal span stand-in for the folding unit tests."""

    def __init__(self, span_id, start_us, end_us):
        self.span_id = span_id
        self.start_us = start_us
        self.end_us = end_us


class TestFoldChildren:
    def test_serial_siblings_all_stay(self):
        kids = [_Interval(1, 0, 10), _Interval(2, 10, 25), _Interval(3, 30, 40)]
        assert [s.span_id for s in _fold_children(kids)] == [1, 2, 3]

    def test_overlapping_group_keeps_last_finisher(self):
        kids = [_Interval(1, 0, 30), _Interval(2, 5, 50), _Interval(3, 10, 40)]
        assert [s.span_id for s in _fold_children(kids)] == [2]

    def test_back_to_back_is_serial_not_overlap(self):
        kids = [_Interval(1, 0, 10), _Interval(2, 10, 20)]
        assert [s.span_id for s in _fold_children(kids)] == [1, 2]

    def test_tied_end_breaks_on_span_id(self):
        kids = [_Interval(4, 0, 30), _Interval(7, 0, 30)]
        assert [s.span_id for s in _fold_children(kids)] == [7]

    def test_mixed_groups(self):
        kids = [_Interval(1, 0, 20), _Interval(2, 10, 30),  # group -> 2
                _Interval(3, 30, 40),                       # serial
                _Interval(4, 50, 90), _Interval(5, 55, 70)]  # group -> 4
        assert [s.span_id for s in _fold_children(kids)] == [2, 3, 4]


class TestSyntheticExtraction:
    def test_segments_conserve_and_refine_queue(self):
        tracer = Tracer()
        root = tracer.begin("mkdir", 0.0, CAT_OP)
        tracer.charge("cpu", 10.0, "proxy-0")
        child = tracer.begin("tafdb.txn", 10.0, CAT_PHASE, parent=root)
        tracer.charge("queue", 30.0, "tafdb-0", resource="disk")
        tracer.charge("fsync", 40.0, "tafdb-0")
        tracer.end(child, 90.0)
        tracer.end(root, 100.0)
        crit = build_critpath(tracer.spans)
        assert crit.ops == 1 and crit.total_us == 100.0
        assert crit.conservation_error() < 1e-12
        assert crit.gated[("tafdb-0", "tafdb.txn", "queue:disk")] == 30.0
        assert crit.gated[("tafdb-0", "tafdb.txn", "fsync")] == 40.0
        assert crit.gated[("proxy-0", "mkdir", "cpu")] == 10.0
        # 100 total - 10 charged on root - 80 child span = 10 root idle,
        # plus the child's 10us of unexplained self-time.
        assert crit.gated[(None, "mkdir", "idle")] == 10.0
        assert crit.gated[(None, "tafdb.txn", "idle")] == 10.0

    def test_blocked_edges_capped_by_idle_residual(self):
        tracer = Tracer()
        root = tracer.begin("mkdir", 0.0, CAT_OP)
        tracer.charge("cpu", 60.0, "indexnode-1")
        # 80us of blocked causes claimed, but only 40us unexplained:
        # the edges scale down to fit (they never displace real charges).
        tracer.charge_blocked("raft.flush", "fsync", 40.0, "indexnode-1")
        tracer.charge_blocked("raft.replicate", "wire", 40.0, "indexnode-1")
        tracer.end(root, 100.0)
        crit = build_critpath(tracer.spans)
        assert crit.conservation_error() < 1e-12
        assert crit.gated[("indexnode-1", "raft.flush", "fsync")] == 20.0
        assert crit.gated[("indexnode-1", "raft.replicate", "wire")] == 20.0
        assert (None, "mkdir", "idle") not in crit.gated

    def test_join_to_leg_folds_into_waiting_op(self):
        tracer = Tracer()
        root = tracer.begin("mkdir", 0.0, CAT_OP)
        wait = tracer.begin("tafdb.prepare", 10.0, CAT_PHASE, parent=root)
        # Two parallel legs, dynamically rooted (as spawned processes are);
        # only the 10..60 one gates the join.
        for start, end in ((10.0, 40.0), (10.0, 60.0)):
            leg = Tracer._mk = tracer.begin("fanout:prepare", start, CAT_RPC)
            leg.dyn_parent_id = 0
            leg.annotate(join_to=wait.span_id)
            tracer.charge("wire", end - start, "tafdb-0")
            tracer.end(leg, end)
        tracer.end(wait, 60.0)
        tracer.end(root, 70.0)
        crit = build_critpath(tracer.spans)
        assert crit.ops == 1
        assert crit.conservation_error() < 1e-12
        # Gating leg contributes its 50us of wire; the 30us leg is off-path.
        assert crit.gated[("tafdb-0", "fanout:prepare", "wire")] == 50.0
        rendered = "\n".join(crit.render_exemplar())
        assert "fanout:prepare" in rendered

    def test_failed_ops_are_counted_not_folded(self):
        tracer = Tracer()
        ok = tracer.begin("mkdir", 0.0, CAT_OP)
        tracer.end(ok, 50.0)
        bad = tracer.begin("mkdir", 0.0, CAT_OP)
        tracer.end(bad, 400.0, ok=False)
        crit = build_critpath(tracer.spans)
        assert crit.ops == 1 and crit.op_failures == 1
        assert crit.total_us == 50.0

    def test_collapse_kind(self):
        assert collapse_kind("queue:disk") == "queue"
        assert collapse_kind("queue") == "queue"
        assert collapse_kind("fsync") == "fsync"


class TestComponentMapping:
    def test_kinds_map_to_override_components(self):
        assert component_of("tafdb-1", "rpc_commit", "fsync") == "tafdb.fsync"
        assert component_of("indexnode-0", "raft.flush",
                            "fsync") == "raft.fsync"
        assert component_of("proxy-2", "objstat", "cpu") == "proxy.cpu"
        assert component_of("indexnode-0", "index.lookup",
                            "cpu") == "index.cpu"
        assert component_of("indexnode-0", "raft.msg:AppendEntries",
                            "cpu") == "raft.cpu"
        assert component_of("any", "rpc:lookup", "wire") == "net.rtt"
        assert component_of("indexnode-0", "raft.read_barrier",
                            "wire") == "net.rtt"
        # Wire-only now that follower work is split out (AppendReply
        # piggyback): the replicate remainder scales with the network.
        assert component_of("indexnode-0", "raft.replicate",
                            "wire") == "net.rtt"
        assert component_of("indexnode-1", "raft.follower_flush",
                            "fsync") == "raft.fsync"
        assert component_of("indexnode-1", "raft.follower_apply",
                            "cpu") == "raft.cpu"

    def test_unmappable_centers_return_none(self):
        assert component_of(None, "mkdir", "idle") is None
        assert component_of("indexnode-0", "raft.queue", "queue") is None
        assert component_of("indexnode-0", "raft.commit", "wire") is None
        assert component_of("tafdb-0", "rpc_prepare", "queue:latch") is None

    def test_queue_maps_to_resource_component_unless_disabled(self):
        assert component_of("tafdb-0", "rpc_commit",
                            "queue:disk") == "tafdb.fsync"
        assert component_of("tafdb-0", "rpc_commit", "queue:disk",
                            include_queue=False) is None


class TestPredictSpeedup:
    def _crit(self):
        tracer = Tracer()
        root = tracer.begin("mkdir", 0.0, CAT_OP)
        tracer.charge("fsync", 40.0, "tafdb-0")
        tracer.charge("cpu", 40.0, "indexnode-0")
        tracer.end(root, 100.0)  # 20us idle
        return build_critpath(tracer.spans)

    def test_first_order_gain(self):
        crit = self._crit()
        pred = predict_speedup(crit, CostOverrides.of(**{"tafdb.fsync": 2.0}))
        assert pred.gain_us_per_op == pytest.approx(20.0)
        assert pred.predicted_mean_us == pytest.approx(80.0)
        assert pred.predicted_latency_delta_frac == pytest.approx(0.20)
        assert pred.predicted_throughput_ratio == pytest.approx(100 / 80)
        assert pred.matched_us_per_op == {"tafdb.fsync": 40.0}

    def test_off_path_override_predicts_zero(self):
        crit = self._crit()
        pred = predict_speedup(crit, CostOverrides.of(**{"net.rtt": 4.0}))
        assert pred.gain_us_per_op == 0.0
        assert pred.predicted_mean_us == crit.mean_latency_us


class TestBuildBlame:
    """Occupant-tagged queue segments fold into a conserving blame matrix."""

    def _crit(self):
        tracer = Tracer()
        root = tracer.begin("objstat", 0.0, CAT_OP)
        root.annotate(tenant="victim")
        # One disk wait split over two occupants (3:1), one untagged
        # cpu wait, and a real charge that must not be blamed.
        tracer.charge("queue", 30.0, "tafdb-0", resource="disk",
                      by=("mkdir", "storm"))
        tracer.charge("queue", 10.0, "tafdb-0", resource="disk",
                      by=("objstat", "victim"))
        tracer.charge("queue", 20.0, "proxy-0", resource="cpu")
        tracer.charge("cpu", 15.0, "proxy-0")
        tracer.end(root, 100.0)
        return build_critpath(tracer.spans, name="blame-unit")

    def test_cells_conserve_queue_segments_exactly(self):
        blame = build_blame(self._crit())
        assert blame.ops == 1
        assert blame.total_queue_us == pytest.approx(60.0)
        assert blame.conservation_error() <= 1e-9
        assert blame.queue_share == pytest.approx(0.60)
        victim = ("objstat", "victim")
        assert blame.cells[victim + ("mkdir", "storm", "disk", "tafdb-0")] \
            == pytest.approx(30.0)
        assert blame.cells[victim + ("objstat", "victim", "disk",
                                     "tafdb-0")] == pytest.approx(10.0)
        assert blame.cells[victim + UNKNOWN_CULPRIT + ("cpu", "proxy-0")] \
            == pytest.approx(20.0)

    def test_rollups(self):
        blame = build_blame(self._crit())
        (top, us) = blame.top_culprits(1)[0]
        assert top == ("mkdir", "storm", "disk")
        assert us == pytest.approx(30.0)
        matrix = blame.tenant_matrix()
        assert matrix[("victim", "storm")] == pytest.approx(30.0)
        assert matrix[("victim", "victim")] == pytest.approx(10.0)
        assert matrix[("victim", None)] == pytest.approx(20.0)
        # Cross-op/tenant blame only: self-contention (10us) excluded.
        assert blame.interference_us() == pytest.approx(50.0)
        assert blame.victim_totals()[("objstat", "victim")] \
            == pytest.approx(60.0)

    def test_exemplar_names_culprits(self):
        crit = self._crit()
        lines = render_blame_exemplar(crit)
        text = "\n".join(lines)
        assert "objstat [tenant victim]" in text
        assert "<-" in text
        assert "mkdir/storm 75%" in text

    def test_blame_payload_round_trip_validates(self):
        crit = self._crit()
        payload = to_blame_payload(build_blame(crit), crit)
        assert validate_blame(payload) == []
        assert json.loads(json.dumps(payload)) == payload
        assert payload["conservation_error"] <= 1e-9

    def test_validator_flags_broken_payloads(self):
        assert validate_blame([]) == ["payload is not a JSON object"]
        crit = self._crit()
        payload = to_blame_payload(build_blame(crit), crit)
        payload["cells"][0]["us"] *= 10  # breaks conservation
        assert any("conserv" in p or "cells" in p
                   for p in validate_blame(payload))
        payload = to_blame_payload(build_blame(crit), crit)
        del payload["cells"]
        assert any("cells" in p for p in validate_blame(payload))


class _FakeProfile:
    def __init__(self, centers):
        self.centers = centers


class TestPredictSpeedupCorrected:
    """The bottleneck-law floor: stations from busy counters, demands
    scaled by the override's saved share, floor = clients x max demand."""

    def _inputs(self):
        crit = TestPredictSpeedup()._crit()  # 100us op: fsync 40, cpu 40
        profile = _FakeProfile({
            ("tafdb-0", "mkdir", "fsync"): 40.0,
            ("indexnode-0", "mkdir", "cpu"): 40.0,
        })
        telemetry = Telemetry()
        telemetry.counter("host.disk_busy_us", "tafdb-0",
                          capacity=1.0).total = 40.0
        telemetry.counter("host.cpu_busy_us", "indexnode-0",
                          capacity=2.0).total = 60.0
        overrides = CostOverrides.of(**{"tafdb.fsync": 2.0})
        return crit, overrides, profile, telemetry

    def test_station_demands_and_saved_share(self):
        crit, overrides, profile, telemetry = self._inputs()
        corr = predict_speedup_corrected(crit, overrides, profile,
                                         telemetry, clients=2)
        by_key = {(s.host, s.resource): s for s in corr.stations}
        disk = by_key[("tafdb-0", "disk")]
        assert disk.demand_us == pytest.approx(40.0)
        assert disk.scaled_demand_us == pytest.approx(20.0)  # fsync halved
        assert disk.utilization == pytest.approx(0.40)  # 40us busy / 100us
        cpu = by_key[("indexnode-0", "cpu")]
        assert cpu.demand_us == pytest.approx(30.0)  # 60 / (1 op x 2 cores)
        assert cpu.scaled_demand_us == pytest.approx(30.0)  # untouched
        assert corr.bottleneck().host == "indexnode-0"

    def test_floor_binds_only_past_the_knee(self):
        crit, overrides, profile, telemetry = self._inputs()
        # 2 clients: floor 2 x 30 = 60 < slack's 80 -> slack wins.
        low = predict_speedup_corrected(crit, overrides, profile,
                                        telemetry, clients=2)
        assert low.bottleneck_mean_us == pytest.approx(60.0)
        assert low.predicted_mean_us == pytest.approx(80.0)
        assert not low.bound_binding
        # 5 clients: floor 5 x 30 = 150 > 80 -> the floor binds.
        high = predict_speedup_corrected(crit, overrides, profile,
                                         telemetry, clients=5)
        assert high.bottleneck_mean_us == pytest.approx(150.0)
        assert high.predicted_mean_us == pytest.approx(150.0)
        assert high.bound_binding


class TestPayloadAndValidator:
    def test_round_trip_validates(self):
        crit = TestPredictSpeedup()._crit()
        payload = to_critpath_payload(crit)
        assert validate_critpath(payload) == []
        assert json.loads(json.dumps(payload)) == payload
        shares = [c["share"] for c in payload["centers"]]
        assert sum(shares) == pytest.approx(1.0, abs=1e-3)

    def test_validator_flags_broken_payloads(self):
        assert validate_critpath([]) == ["payload is not a JSON object"]
        crit = TestPredictSpeedup()._crit()
        payload = to_critpath_payload(crit)
        payload["centers"][0]["share"] = 0.9  # breaks the sum-to-1 check
        assert any("shares sum" in p for p in validate_critpath(payload))
        payload = to_critpath_payload(crit)
        payload["centers"][0]["gated_us"] = payload["total_us"] * 2
        assert any("exceeds total_us" in p
                   for p in validate_critpath(payload))
        payload = to_critpath_payload(crit)
        payload["exemplar"] = "not a list"
        assert any("exemplar" in p for p in validate_critpath(payload))
        payload = to_critpath_payload(crit)
        del payload["centers"]
        assert any("centers" in p for p in validate_critpath(payload))


def _traced_run(op="mkdir", **kw):
    kw.setdefault("mode", "shared")
    kw.setdefault("clients", 8)
    kw.setdefault("items", 4)
    return mdtest_metrics_profiled("mantle", op, **kw)


class TestClusterInvariants:
    """The load-bearing invariants on a real traced cluster, both kernels."""

    @pytest.mark.parametrize("fast", ["1", "0"])
    def test_paths_conserve_op_latency(self, monkeypatch, fast):
        monkeypatch.setenv("MANTLE_SIM_FAST", fast)
        _m, tracer, _t = _traced_run()
        crit = critpath_from_tracer(tracer)
        assert crit.ops > 0
        assert crit.conservation_error() < 1e-9
        for root, path_us in crit.root_paths:
            assert path_us == pytest.approx(root.duration_us, rel=1e-9)
        shares = crit.shares()
        assert sum(shares.values()) == pytest.approx(1.0, rel=1e-9)

    @pytest.mark.parametrize("fast", ["1", "0"])
    def test_write_path_sees_fsync_and_fanout(self, monkeypatch, fast):
        monkeypatch.setenv("MANTLE_SIM_FAST", fast)
        _m, tracer, _t = _traced_run()
        crit = critpath_from_tracer(tracer)
        kinds = crit.gated_by_kind()
        assert kinds.get("fsync", 0.0) > 0.0
        # 2PC legs join the tree via join_to edges; every fan-out group
        # folds to exactly one gating leg per disjoint time interval.
        folded = [kid for kids in crit._children.values() for kid in kids
                  if kid.name.startswith("fanout:")]
        assert folded, "no fan-out legs folded into any op tree"

    def test_gated_never_exceeds_attributed_total(self):
        _m, tracer, _t = _traced_run()
        crit = critpath_from_tracer(tracer)
        contrast = contrast_with_profile(
            crit, profile_from_tracer(tracer))
        assert contrast
        for row in contrast:
            assert row.gated_us <= row.total_us * (1 + 1e-9) + 1e-6
            assert 0.0 <= row.gated_frac <= 1.0
        # Replication cost exists that no op's path runs through.
        assert any(row.offpath_us > 0.0 for row in contrast)

    def test_export_byte_identical_across_kernels(self, monkeypatch):
        blobs = {}
        for fast in ("1", "0"):
            monkeypatch.setenv("MANTLE_SIM_FAST", fast)
            _m, tracer, _t = _traced_run()
            crit = critpath_from_tracer(tracer, name="kernel-check")
            contrast = contrast_with_profile(
                crit, profile_from_tracer(tracer))
            blobs[fast] = json.dumps(to_critpath_payload(crit, contrast),
                                     sort_keys=True)
        assert blobs["1"] == blobs["0"]

    @pytest.mark.parametrize("fast", ["1", "0"])
    def test_tracing_is_pure_bookkeeping(self, monkeypatch, fast):
        monkeypatch.setenv("MANTLE_SIM_FAST", fast)
        plain = mdtest_metrics("mantle", "mkdir", mode="shared",
                               clients=8, items=4)
        traced, _tracer, _t = _traced_run()
        assert plain.mean_latency_us("mkdir") == \
            traced.mean_latency_us("mkdir")
        assert plain.ops_completed == traced.ops_completed

    @pytest.mark.parametrize("fast", ["1", "0"])
    def test_replication_edge_splits_follower_phases(self, monkeypatch,
                                                     fast):
        """The quorum wait decomposes: the follower's durable flush and
        apply are attributed to the *follower's* host, and what remains on
        raft.replicate is pure wire time."""
        monkeypatch.setenv("MANTLE_SIM_FAST", fast)
        _m, tracer, _t = _traced_run()
        crit = critpath_from_tracer(tracer)
        follower_flush = [(c, us) for c, us in crit.gated.items()
                          if c[1] == "raft.follower_flush"]
        assert follower_flush, "no follower flush gating recorded"
        assert all(c[2] == "fsync" for c, _us in follower_flush)
        leader_hosts = {c[0] for c in crit.gated if c[1] == "raft.flush"}
        follower_hosts = {c[0] for c, _us in follower_flush}
        assert follower_hosts and not (follower_hosts & leader_hosts)
        assert all(c[2] == "wire" for c in crit.gated
                   if c[1] == "raft.replicate")

    def test_replica_reads_charge_the_read_barrier(self):
        """Follower lookups must not show the commitIndex round trip as
        idle — the raft.read_barrier wire edge owns it."""
        _m, tracer, _t = _traced_run(op="objstat", mode="exclusive",
                                     clients=32, items=4, depth=6)
        crit = critpath_from_tracer(tracer)
        barrier = [(c, us) for c, us in crit.gated.items()
                   if c[1] == "raft.read_barrier"]
        assert barrier, "no read-barrier gating recorded"
        assert all(c[2] == "wire" for c, _us in barrier)
        assert sum(us for _c, us in barrier) > 0.0
