"""Randomized differential stress: lane kernel vs the single-loop kernels.

Each seed expands into a scenario *plan* — plain data: hosts, servers,
client scripts, store ping-pongs, interrupts, standing watchdogs — before
any simulator exists, so every kernel replays the identical workload.  The
executed event trace (timestamps, actors, values) and the final clock must
be bit-identical across ``MANTLE_SIM_LANES`` on/off x ``MANTLE_SIM_FAST``
on/off; any divergence is a lane-kernel ordering bug, and the seed
reproduces it.
"""

import random

import pytest

from repro.sim.core import AnyOf, Interrupt, Simulator
from repro.sim.host import Host
from repro.sim.network import Network, Server
from repro.sim.resources import Store


class _Echo(Server):
    def __init__(self, host, work_us):
        super().__init__(host)
        self.work_us = work_us

    def rpc_echo(self, value):
        yield from self.host.work(self.work_us)
        return value


def _scenario(seed):
    """Expand ``seed`` into a kernel-independent scenario plan."""
    rng = random.Random(seed)
    num_hosts = rng.randint(2, 6)
    plan = {
        "num_hosts": num_hosts,
        "cores": [rng.randint(1, 4) for _ in range(num_hosts)],
        "work_us": [round(rng.uniform(1.0, 20.0), 3)
                    for _ in range(num_hosts)],
        "jitter": rng.choice([0.0, 0.0, 0.25]),
        "net_seed": rng.randint(0, 10_000),
        "watchdogs": [(rng.randrange(num_hosts),
                       round(rng.uniform(500.0, 2_000.0), 3))
                      for _ in range(rng.randint(0, 12))],
        "clients": [],
        "pairs": [],
        "interrupts": [],
    }
    for cid in range(rng.randint(2, 8)):
        ops = []
        for _ in range(rng.randint(3, 8)):
            kind = rng.choice(["sleep", "work", "rpc", "rpc", "fsync",
                               "anyof"])
            if kind == "sleep":
                ops.append(("sleep", round(rng.uniform(0.0, 30.0), 3)))
            elif kind == "work":
                ops.append(("work", round(rng.uniform(0.5, 10.0), 3)))
            elif kind == "rpc":
                ops.append(("rpc", rng.randrange(num_hosts)))
            elif kind == "fsync":
                ops.append(("fsync",))
            else:
                ops.append(("anyof", sorted(
                    round(rng.uniform(1.0, 25.0), 3)
                    for _ in range(rng.randint(2, 3)))))
        plan["clients"].append({
            "home": rng.randrange(num_hosts),
            "phase": round(rng.uniform(0.0, 10.0), 3),
            "ops": ops,
        })
    for pid in range(rng.randint(0, 2)):
        plan["pairs"].append({
            "producer_home": rng.randrange(num_hosts),
            "consumer_home": rng.randrange(num_hosts),
            "items": rng.randint(1, 4),
            "gaps": [round(rng.uniform(1.0, 40.0), 3)
                     for _ in range(4)],
        })
    for sid in range(rng.randint(0, 2)):
        plan["interrupts"].append({
            "victim_home": rng.randrange(num_hosts),
            "at": round(rng.uniform(5.0, 200.0), 3),
        })
    return plan


def _run(plan, **sim_kwargs):
    """Replay ``plan`` on one kernel; return (trace, final sim.now)."""
    sim = Simulator(**sim_kwargs)
    net = Network(sim, one_way_us=50.0, jitter_frac=plan["jitter"],
                  seed=plan["net_seed"])
    hosts = [Host(sim, f"h{i}", cores=plan["cores"][i], fsync_us=80.0)
             for i in range(plan["num_hosts"])]
    servers = [_Echo(host, plan["work_us"][i])
               for i, host in enumerate(hosts)]
    trace = []

    for hid, delay in plan["watchdogs"]:
        # Standing timers: fire late, to nobody, on the host's lane.
        sim.timeout_into(hosts[hid].lane, delay)

    def client(cid, spec):
        home = hosts[spec["home"]]
        yield sim.timeout(spec["phase"])
        for idx, op in enumerate(spec["ops"]):
            kind = op[0]
            if kind == "sleep":
                yield sim.timeout(op[1])
                trace.append((sim.now, cid, idx, "slept"))
            elif kind == "work":
                yield from home.work(op[1])
                trace.append((sim.now, cid, idx, "worked"))
            elif kind == "fsync":
                yield from home.fsync()
                trace.append((sim.now, cid, idx, "synced"))
            elif kind == "rpc":
                reply = yield from net.rpc(servers[op[1]], "echo",
                                           (cid, idx))
                trace.append((sim.now, cid, idx, "rpc", reply))
            else:
                first, _ = yield AnyOf(
                    sim, [sim.timeout(d) for d in op[1]])
                trace.append((sim.now, cid, idx, "anyof", first))

    def producer(pid, spec, store):
        home = hosts[spec["producer_home"]]
        for i in range(spec["items"]):
            yield sim.timeout(spec["gaps"][i])
            yield from home.work(1.0)
            store.put((pid, i))
            trace.append((sim.now, "put", pid, i))

    def consumer(pid, spec, store):
        for _ in range(spec["items"]):
            value = yield store.get()
            trace.append((sim.now, "got", pid, value))

    def sleeper(sid):
        try:
            yield sim.timeout(10_000.0)
            trace.append((sim.now, sid, "overslept"))
        except Interrupt as exc:
            trace.append((sim.now, sid, "interrupted", str(exc.cause)))

    def interrupter(victim, at, sid):
        yield sim.timeout(at)
        victim.interrupt(f"poke-{sid}")

    for cid, spec in enumerate(plan["clients"]):
        sim.process(client(cid, spec), name=f"client-{cid}",
                    lane=hosts[spec["home"]].lane)
    for pid, spec in enumerate(plan["pairs"]):
        store = Store(sim)
        sim.process(producer(pid, spec, store), name=f"prod-{pid}",
                    lane=hosts[spec["producer_home"]].lane)
        sim.process(consumer(pid, spec, store), name=f"cons-{pid}",
                    lane=hosts[spec["consumer_home"]].lane)
    for sid, spec in enumerate(plan["interrupts"]):
        victim = sim.process(sleeper(sid), name=f"sleeper-{sid}",
                             lane=hosts[spec["victim_home"]].lane)
        sim.process(interrupter(victim, spec["at"], sid))
    sim.run()
    return trace, sim.now


# (lanes, fast_paths) points: single loop legacy/fast, per-host lanes on
# both fast_paths settings (lanes force the two-tier scheduler), capped.
_MODES = [
    {"lanes": 0, "fast_paths": False},
    {"lanes": True, "fast_paths": True},
    {"lanes": True, "fast_paths": False},
    {"lanes": 3, "fast_paths": True},
]


class TestLaneDifferentialStress:
    @pytest.mark.parametrize("seed", range(10))
    def test_trace_identical_across_kernels(self, seed):
        plan = _scenario(seed)
        reference = _run(plan, lanes=0, fast_paths=True)
        for kwargs in _MODES:
            assert _run(plan, **kwargs) == reference, (seed, kwargs)

    def test_trace_identical_across_env_matrix(self, monkeypatch):
        plan = _scenario(1234)
        results = {}
        for lanes in ("0", "1"):
            for fast in ("0", "1"):
                monkeypatch.setenv("MANTLE_SIM_LANES", lanes)
                monkeypatch.setenv("MANTLE_SIM_FAST", fast)
                results[(lanes, fast)] = _run(plan)
        assert len(set(map(repr, results.values()))) == 1
