"""Unit tests for the windowed telemetry registry.

Everything here runs on synthetic timestamps — no simulator — because the
instruments are pure arithmetic over (time, value) pairs.  The "telemetry
cannot change simulated results" contract is pinned separately in
``tests/experiments/test_fastpath_determinism.py``.
"""

import pytest

from repro.core.config import MantleConfig
from repro.sim.core import Simulator
from repro.sim.telemetry import (
    DEFAULT_WINDOW_US,
    EXPORT_COLUMNS,
    NULL_INSTRUMENT,
    NULL_TELEMETRY,
    Counter,
    Gauge,
    Histogram,
    Telemetry,
    sparkline,
    validate_rows,
)


class TestCounter:
    def test_add_buckets_by_window(self):
        counter = Counter("c", None, window_us=10.0)
        counter.add(0.0)
        counter.add(9.9)
        counter.add(10.0, 5.0)
        counter.add(25.0, 2.0)
        assert counter.windows == {0: 2.0, 1: 5.0, 2: 2.0}
        assert counter.total == 9.0
        assert counter.series() == [(0.0, 2.0), (10.0, 5.0), (20.0, 2.0)]

    def test_add_interval_splits_across_windows(self):
        counter = Counter("busy", None, window_us=10.0)
        # [5, 20) overlaps window 0 by 5 us and window 1 by 10 us.
        counter.add_interval(5.0, 20.0)
        assert counter.windows[0] == pytest.approx(5.0)
        assert counter.windows[1] == pytest.approx(10.0)
        assert counter.total == pytest.approx(15.0)

    def test_add_interval_scales_explicit_amount(self):
        counter = Counter("busy", None, window_us=10.0)
        # 4 core-us spread over [0, 20): half lands in each window.
        counter.add_interval(0.0, 20.0, amount=4.0)
        assert counter.windows[0] == pytest.approx(2.0)
        assert counter.windows[1] == pytest.approx(2.0)

    def test_add_interval_zero_length_degenerates_to_add(self):
        counter = Counter("c", None, window_us=10.0)
        counter.add_interval(15.0, 15.0, amount=3.0)
        assert counter.windows == {1: 3.0}

    def test_sum_clipped_prorates_partial_overlap(self):
        counter = Counter("c", None, window_us=10.0)
        counter.add(5.0, 10.0)   # window [0, 10)
        counter.add(15.0, 10.0)  # window [10, 20)
        # [5, 15) covers half of each window.
        assert counter.sum_clipped(5.0, 15.0) == pytest.approx(10.0)
        assert counter.sum_clipped(0.0, 20.0) == pytest.approx(20.0)
        assert counter.sum_clipped(20.0, 30.0) == 0.0

    def test_sum_over_whole_run_and_window_granular(self):
        counter = Counter("c", None, window_us=10.0)
        counter.add(5.0, 1.0)
        counter.add(25.0, 2.0)
        assert counter.sum_over() == 3.0
        assert counter.sum_over(20.0, 30.0) == 2.0


class TestGauge:
    def test_time_weighted_mean_within_window(self):
        gauge = Gauge("g", None, window_us=100.0)
        gauge.set(0.0, 2.0)
        gauge.set(50.0, 6.0)   # value 2 held for 50 us
        gauge.finalize(100.0)  # value 6 held for 50 us
        ((start, mean, observed),) = gauge.series()
        assert start == 0.0
        assert mean == pytest.approx(4.0)
        assert observed == pytest.approx(100.0)

    def test_level_splits_across_window_boundary(self):
        gauge = Gauge("g", None, window_us=10.0)
        gauge.set(5.0, 3.0)
        gauge.finalize(25.0)  # 3 held over [5, 25): 5 + 10 + 5 us
        series = gauge.series()
        assert [s for s, _, _ in series] == [0.0, 10.0, 20.0]
        assert [m for _, m, _ in series] == pytest.approx([3.0, 3.0, 3.0])
        assert [d for _, _, d in series] == pytest.approx([5.0, 10.0, 5.0])

    def test_adjust_tracks_level_and_peak(self):
        gauge = Gauge("g", None, window_us=10.0)
        gauge.adjust(0.0, 1.0)
        gauge.adjust(2.0, 1.0)
        gauge.adjust(4.0, -2.0)
        assert gauge.value == 0.0
        assert gauge.peak == 2.0
        gauge.finalize(10.0)
        assert gauge.mean_over() == pytest.approx(
            (1.0 * 2 + 2.0 * 2 + 0.0 * 6) / 10.0)

    def test_zero_duration_spike_visible_in_window_max(self):
        gauge = Gauge("g", None, window_us=10.0)
        gauge.set(1.0, 9.0)
        gauge.set(1.0, 0.0)  # spike up and straight back down
        gauge.finalize(10.0)
        assert gauge.windows[0][2] == 9.0

    def test_finalize_is_idempotent(self):
        gauge = Gauge("g", None, window_us=10.0)
        gauge.set(0.0, 5.0)
        gauge.finalize(10.0)
        gauge.finalize(10.0)
        assert gauge.mean_over() == pytest.approx(5.0)


class TestHistogram:
    def test_per_window_count_sum_max(self):
        hist = Histogram("h", None, window_us=10.0)
        hist.record(1.0, 10.0)
        hist.record(2.0, 30.0)
        hist.record(15.0, 100.0)
        assert hist.series() == [(0.0, 20.0, 2), (10.0, 100.0, 1)]
        assert hist.mean == pytest.approx(140.0 / 3)
        assert hist.max_value == 100.0
        assert hist.stats_over(0.0, 10.0) == (2, 40.0, 30.0)
        assert hist.stats_over() == (3, 140.0, 100.0)


class TestRegistry:
    def test_get_or_create_and_deterministic_order(self):
        telemetry = Telemetry(window_us=10.0)
        c1 = telemetry.counter("b.metric", "host-1")
        c2 = telemetry.counter("b.metric", "host-1")
        assert c1 is c2
        telemetry.gauge("a.metric")
        telemetry.histogram("b.metric", "host-0")
        names = [(i.name, i.host) for i in telemetry.instruments()]
        assert names == [("a.metric", None), ("b.metric", "host-0"),
                         ("b.metric", "host-1")]
        assert telemetry.hosts("b.metric") == ["host-0", "host-1"]

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            Telemetry(window_us=0.0)

    def test_export_rows_schema(self):
        telemetry = Telemetry(window_us=10.0)
        telemetry.counter("c", "h", capacity=4.0).add(5.0, 2.0)
        gauge = telemetry.gauge("g")
        gauge.set(0.0, 1.0)
        telemetry.histogram("h").record(3.0, 7.0)
        rows = telemetry.export_rows(now=10.0)  # finalizes the gauge
        assert validate_rows(rows) == []
        assert len(rows) == 3
        by_kind = {row["kind"]: row for row in rows}
        assert set(by_kind) == {"counter", "gauge", "histogram"}
        assert by_kind["counter"]["value"] == 2.0
        assert by_kind["counter"]["capacity"] == 4.0
        assert by_kind["gauge"]["value"] == pytest.approx(1.0)
        assert by_kind["histogram"]["value"] == 7.0
        assert by_kind["histogram"]["count"] == 1.0

    def test_validate_rows_flags_problems(self):
        good = {col: 0.0 for col in EXPORT_COLUMNS}
        good.update(metric="m", kind="counter", host="")
        assert validate_rows([good]) == []
        assert validate_rows([{"metric": "m"}])  # missing columns
        bad_kind = dict(good, kind="nope")
        assert any("kind" in p for p in validate_rows([bad_kind]))
        negative = dict(good, window_start_us=-1.0)
        assert any("negative" in p for p in validate_rows([negative]))

    def test_csv_and_json_roundtrip(self, tmp_path):
        telemetry = Telemetry(window_us=10.0)
        telemetry.counter("c", "h").add(5.0, 2.0)
        csv_path = tmp_path / "t.csv"
        json_path = tmp_path / "t.json"
        assert telemetry.write_csv(str(csv_path)) == 1
        header, line = csv_path.read_text().splitlines()
        assert header == ",".join(EXPORT_COLUMNS)
        assert line.startswith("c,counter,h,0.0,2.0")
        payload = telemetry.write_json(str(json_path),
                                       extra={"verdict": "cpu-bound"})
        assert payload["window_us"] == 10.0
        assert payload["verdict"] == "cpu-bound"
        import json

        assert json.loads(json_path.read_text()) == payload


class TestOnOffWiring:
    def test_null_telemetry_is_inert(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.counter("x") is NULL_INSTRUMENT
        assert NULL_TELEMETRY.gauge("x") is NULL_INSTRUMENT
        assert NULL_TELEMETRY.histogram("x") is NULL_INSTRUMENT
        NULL_INSTRUMENT.add(0.0)
        NULL_INSTRUMENT.add_interval(0.0, 1.0)
        NULL_INSTRUMENT.set(0.0, 1.0)
        NULL_INSTRUMENT.adjust(0.0, 1.0)
        NULL_INSTRUMENT.record(0.0, 1.0)
        assert NULL_TELEMETRY.instruments() == []
        assert NULL_TELEMETRY.export_rows() == []
        assert NULL_TELEMETRY.find("x") is None

    def test_env_flag_controls_default(self, monkeypatch):
        monkeypatch.delenv("MANTLE_TELEMETRY", raising=False)
        assert Simulator().telemetry is NULL_TELEMETRY
        monkeypatch.setenv("MANTLE_TELEMETRY", "1")
        sim = Simulator()
        assert sim.telemetry.enabled is True
        assert sim.telemetry.window_us == DEFAULT_WINDOW_US

    def test_config_enables_telemetry(self, monkeypatch):
        monkeypatch.delenv("MANTLE_TELEMETRY", raising=False)
        from repro.bench.cluster import build_system

        config = MantleConfig(telemetry=True, telemetry_window_us=500.0)
        system = build_system("mantle", "quick", config=config)
        try:
            assert system.sim.telemetry.enabled is True
            assert system.sim.telemetry.window_us == 500.0
        finally:
            system.shutdown()

    def test_config_rejects_bad_window(self):
        with pytest.raises(ValueError):
            MantleConfig(telemetry_window_us=0.0).validate()


class TestSparkline:
    def test_maps_levels_to_blocks(self):
        line = sparkline([0.0, 0.5, 1.0], hi=1.0)
        assert len(line) == 3
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_empty_and_flat_inputs(self):
        assert sparkline([]) == ""
        assert sparkline([2.0, 2.0], lo=2.0) == "▁▁"

    def test_downsamples_to_width(self):
        line = sparkline([float(i % 10) for i in range(1000)], width=40)
        assert len(line) == 40
