"""Unit tests for the lane-sharded kernel (``Simulator(lanes=...)``).

Lane selection, host-lane assignment, cross-lane routing via
``timeout_into``, bootstrap placement of pinned processes, and the
``lane_switches`` health counter.  Ordering equivalence at scale is pinned
by the differential stress suite (``test_lane_stress``) and the experiment
determinism gate (``tests/experiments/test_fastpath_determinism``).
"""

import pytest

from repro.sim.core import SimulationError, Simulator
from repro.sim.host import Host
from repro.sim.network import Network, Server


class TestLaneSelection:
    def test_default_is_single_loop(self, monkeypatch):
        monkeypatch.delenv("MANTLE_SIM_LANES", raising=False)
        sim = Simulator()
        assert sim._lane_mode is False
        assert sim.lane_count == 1

    @pytest.mark.parametrize("raw,mode,cap", [
        ("0", False, None),
        ("false", False, None),
        ("off", False, None),
        ("1", True, None),
        ("true", True, None),
        ("auto", True, None),
        ("3", True, 3),
        ("8", True, 8),
    ])
    def test_env_flag_parsing(self, monkeypatch, raw, mode, cap):
        monkeypatch.setenv("MANTLE_SIM_LANES", raw)
        sim = Simulator()
        assert sim._lane_mode is mode
        assert sim._lane_cap == cap

    def test_kwarg_overrides_env(self, monkeypatch):
        monkeypatch.setenv("MANTLE_SIM_LANES", "1")
        assert Simulator(lanes=False)._lane_mode is False
        monkeypatch.setenv("MANTLE_SIM_LANES", "0")
        assert Simulator(lanes=True)._lane_mode is True
        assert Simulator(lanes=4)._lane_cap == 4

    def test_lane_mode_implies_fast_scheduler(self):
        # The A/B axis for lanes is lanes on/off; lanes are built on the
        # two-tier scheduler and override fast_paths=False.
        sim = Simulator(fast_paths=False, lanes=True)
        assert sim._fast is True
        assert sim._lane_mode is True


class TestHostLaneAssignment:
    def test_each_host_gets_a_fresh_lane(self):
        sim = Simulator(lanes=True)
        hosts = [Host(sim, f"h{i}") for i in range(4)]
        assert [h.lane for h in hosts] == [1, 2, 3, 4]
        assert sim.lane_count == 5  # + driver lane 0

    def test_same_name_reuses_lane(self):
        sim = Simulator(lanes=True)
        assert sim.host_lane("a") == sim.host_lane("a") == 1

    def test_cap_round_robins_past_limit(self):
        sim = Simulator(lanes=3)
        lanes = [sim.host_lane(f"h{i}") for i in range(7)]
        assert lanes == [1, 2, 3, 1, 2, 3, 1]
        assert sim.lane_count == 4  # driver + 3 host lanes

    def test_single_loop_mode_maps_everything_to_lane_zero(self):
        # Pin lanes off explicitly so the test holds under a
        # MANTLE_SIM_LANES=1 environment (e.g. the CI lane-smoke job).
        sim = Simulator(lanes=0)
        assert sim.host_lane("a") == sim.host_lane("b") == 0
        assert Host(sim, "c").lane == 0


class TestTimeoutInto:
    def test_routes_to_target_lane_heap(self):
        sim = Simulator(lanes=True)
        host = Host(sim, "a")
        t = sim.timeout_into(host.lane, 5.0)
        heap = sim._lheaps[host.lane]
        assert len(heap) == 1 and heap[0][2] is t
        assert not sim._lheaps[0]

    def test_zero_delay_is_lane_agnostic(self):
        # A zero-delay flight goes through the global microtask deque,
        # exactly as sim.timeout(0) would.
        sim = Simulator(lanes=True)
        host = Host(sim, "a")
        t = sim.timeout_into(host.lane, 0.0)
        assert t in sim._micro
        assert not sim._lheaps[host.lane]

    def test_current_lane_falls_back_to_timeout(self):
        sim = Simulator(lanes=True)
        t = sim.timeout_into(0, 5.0)  # driver lane is current at t=0
        assert sim._lheaps[0][0][2] is t

    def test_single_loop_mode_ignores_lane(self):
        sim = Simulator(lanes=0)
        fired = []

        def body():
            yield sim.timeout_into(7, 5.0)
            fired.append(sim.now)

        sim.process(body())
        sim.run()
        assert fired == [5.0]

    def test_negative_delay_raises(self):
        sim = Simulator(lanes=True)
        Host(sim, "a")
        with pytest.raises(SimulationError):
            sim.timeout_into(1, -1.0)

    def test_cross_lane_timers_fire_in_global_time_order(self):
        sim = Simulator(lanes=True)
        hosts = [Host(sim, f"h{i}") for i in range(3)]
        fired = []

        def waiter(tag, lane, delay):
            yield sim.timeout_into(lane, delay)
            fired.append((sim.now, tag))

        # Interleaved deadlines across three lanes plus the driver lane.
        delays = [(0, hosts[0].lane, 5.0), (1, hosts[1].lane, 3.0),
                  (2, hosts[2].lane, 4.0), (3, 0, 1.0),
                  (4, hosts[0].lane, 2.0), (5, hosts[2].lane, 6.0)]
        for tag, lane, delay in delays:
            sim.process(waiter(tag, lane, delay))
        sim.run()
        assert fired == [(1.0, 3), (2.0, 4), (3.0, 1),
                         (4.0, 2), (5.0, 0), (6.0, 5)]


class TestLanePlacement:
    def test_process_lane_hint_places_first_timer(self):
        sim = Simulator(lanes=True)
        host = Host(sim, "a")

        def body():
            yield sim.timeout(10.0)

        sim.process(body(), lane=host.lane)
        sim._step()  # run the (lane-binding) bootstrap microtask
        assert len(sim._lheaps[host.lane]) == 1
        assert not sim._lheaps[0]

    def test_unhinted_process_starts_on_current_lane(self):
        sim = Simulator(lanes=True)
        Host(sim, "a")

        def body():
            yield sim.timeout(10.0)

        sim.process(body())
        sim._step()
        assert len(sim._lheaps[0]) == 1

    def test_out_of_range_hint_is_ignored(self):
        sim = Simulator(lanes=True)

        def body():
            yield sim.timeout(10.0)
            return sim.now

        proc = sim.process(body(), lane=99)
        sim.run()
        assert proc.value == 10.0

    def test_hint_accepted_in_single_loop_mode(self):
        sim = Simulator(lanes=0)

        def body():
            yield sim.timeout(3.0)
            return sim.now

        proc = sim.process(body(), lane=5)
        sim.run()
        assert proc.value == 3.0

    def test_affinity_follows_rpc_flow(self):
        # An RPC handler's delayed work runs on the server's lane; the
        # response resumes the client on its own lane — no hints needed
        # beyond initial placement.
        sim = Simulator(lanes=True)
        client_host = Host(sim, "client")
        server_host = Host(sim, "server", cores=2)
        net = Network(sim, one_way_us=50.0)
        observed = []

        class Echo(Server):
            def rpc_echo(self, value):
                yield from self.host.work(10.0)
                observed.append(("handler", sim._current_lane))
                return value

        server = Echo(server_host)

        def client():
            reply = yield from net.rpc(server, "echo", 42)
            observed.append(("reply", sim._current_lane, reply))

        sim.process(client(), lane=client_host.lane)
        sim.run()
        assert observed == [("handler", server_host.lane),
                            ("reply", client_host.lane, 42)]


class TestLaneSwitches:
    def test_switches_counted_across_lanes(self):
        sim = Simulator(lanes=True)
        hosts = [Host(sim, f"h{i}") for i in range(2)]

        def ticker(lane, start):
            for k in range(5):
                yield sim.timeout_into(lane, 0.0 if k else start)
                yield sim.timeout(2.0)

        # Alternating timestamps on two lanes force a switch per event.
        sim.process(ticker(hosts[0].lane, 1.0))
        sim.process(ticker(hosts[1].lane, 2.0))
        sim.run()
        assert sim.lane_switches >= 8

    def test_consecutive_same_lane_events_do_not_switch(self):
        sim = Simulator(lanes=True)
        host = Host(sim, "a")

        def burst():
            for _ in range(100):
                yield sim.timeout(1.0)

        sim.process(burst(), lane=host.lane)
        sim.run()
        # One switch to adopt the host lane; the burst then stays put.
        assert sim.lane_switches <= 1


class TestLaneStep:
    def test_step_follows_global_time_seq_order(self):
        # _lane_step (tests/tools single-step) must agree with the run
        # loop: due heap entries in global (time, seq) order, then
        # microtasks, then advance the clock.
        sim = Simulator(lanes=True)
        hosts = [Host(sim, f"h{i}") for i in range(2)]
        fired = []

        def waiter(tag, lane, delay):
            yield sim.timeout_into(lane, delay)
            fired.append((sim.now, tag))

        sim.process(waiter("slow", hosts[0].lane, 5.0))
        sim.process(waiter("quick", hosts[1].lane, 2.0))
        for _ in range(20):
            sim._step()
        assert fired == [(2.0, "quick"), (5.0, "slow")]
        assert sim.now == 5.0
