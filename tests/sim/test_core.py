"""Unit tests for the DES kernel (repro.sim.core)."""

import pytest

from repro.sim.core import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def body():
        yield sim.timeout(5)
        return sim.now

    assert sim.run_process(body()) == 5.0


def test_zero_delay_timeout_runs_at_current_time():
    sim = Simulator()

    def body():
        yield sim.timeout(0)
        return sim.now

    assert sim.run_process(body()) == 0.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_sequential_timeouts_accumulate():
    sim = Simulator()
    trace = []

    def body():
        for delay in (1, 2, 3):
            yield sim.timeout(delay)
            trace.append(sim.now)

    sim.process(body())
    sim.run()
    assert trace == [1.0, 3.0, 6.0]


def test_processes_interleave_deterministically():
    sim = Simulator()
    trace = []

    def worker(name, delay):
        yield sim.timeout(delay)
        trace.append((name, sim.now))

    sim.process(worker("a", 2))
    sim.process(worker("b", 1))
    sim.process(worker("c", 2))
    sim.run()
    assert trace == [("b", 1.0), ("a", 2.0), ("c", 2.0)]


def test_fifo_tie_break_on_equal_timestamps():
    sim = Simulator()
    trace = []

    def worker(name):
        yield sim.timeout(1)
        trace.append(name)

    for name in "abcde":
        sim.process(worker(name))
    sim.run()
    assert trace == list("abcde")


def test_process_return_value_via_join():
    sim = Simulator()

    def child():
        yield sim.timeout(3)
        return "done"

    def parent():
        result = yield sim.process(child())
        return (result, sim.now)

    assert sim.run_process(parent()) == ("done", 3.0)


def test_yield_from_subgenerator():
    sim = Simulator()

    def sub():
        yield sim.timeout(2)
        return 42

    def body():
        value = yield from sub()
        return value + sim.now

    assert sim.run_process(body()) == 44.0


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    trace = []

    def waiter():
        value = yield gate
        trace.append((value, sim.now))

    def opener():
        yield sim.timeout(7)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert trace == [("open", 7.0)]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            return str(exc)

    def failer():
        yield sim.timeout(1)
        gate.fail(ValueError("boom"))

    proc = sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert proc.value == "boom"


def test_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_unhandled_process_exception_surfaces_at_run():
    sim = Simulator()

    def body():
        yield sim.timeout(1)
        raise RuntimeError("crash")

    sim.process(body())
    with pytest.raises(RuntimeError, match="crash"):
        sim.run()


def test_run_process_reraises_failure():
    sim = Simulator()

    def body():
        yield sim.timeout(1)
        raise KeyError("nope")

    with pytest.raises(KeyError):
        sim.run_process(body())


def test_joining_failed_process_propagates():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        raise ValueError("child died")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            return f"caught {exc}"

    assert sim.run_process(parent()) == "caught child died"


def test_yield_non_event_is_an_error():
    sim = Simulator()

    def body():
        yield 42

    sim.process(body())
    with pytest.raises(SimulationError, match="yielded a int"):
        sim.run()


def test_already_processed_event_resumes_immediately():
    sim = Simulator()
    gate = sim.event()
    gate.succeed("early")

    def late_waiter():
        yield sim.timeout(5)
        value = yield gate
        return (value, sim.now)

    assert sim.run_process(late_waiter()) == ("early", 5.0)


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def body():
        t1 = sim.timeout(1, "a")
        t2 = sim.timeout(4, "b")
        values = yield AllOf(sim, [t1, t2])
        return (values, sim.now)

    values, when = sim.run_process(body())
    assert values == ["a", "b"]
    assert when == 4.0


def test_all_of_empty_triggers_immediately():
    sim = Simulator()

    def body():
        values = yield AllOf(sim, [])
        return values

    assert sim.run_process(body()) == []


def test_any_of_returns_first():
    sim = Simulator()

    def body():
        slow = sim.timeout(10, "slow")
        fast = sim.timeout(2, "fast")
        index, value = yield AnyOf(sim, [slow, fast])
        return (index, value, sim.now)

    assert sim.run_process(body()) == (1, "fast", 2.0)


def test_interrupt_raises_in_process():
    sim = Simulator()

    def victim():
        try:
            yield sim.timeout(100)
        except Interrupt as intr:
            return ("interrupted", intr.cause, sim.now)

    def attacker(proc):
        yield sim.timeout(3)
        proc.interrupt("failover")

    proc = sim.process(victim())
    sim.process(attacker(proc))
    sim.run()
    assert proc.value == ("interrupted", "failover", 3.0)


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def victim():
        yield sim.timeout(1)
        return "fine"

    proc = sim.process(victim())
    sim.run()
    proc.interrupt("too late")
    sim.run()
    assert proc.value == "fine"


def test_run_until_stops_clock():
    sim = Simulator()
    trace = []

    def body():
        while True:
            yield sim.timeout(10)
            trace.append(sim.now)

    sim.process(body())
    sim.run(until=35)
    assert trace == [10.0, 20.0, 30.0]
    assert sim.now == 35.0


def test_run_process_detects_deadlock():
    sim = Simulator()
    gate = sim.event()

    def body():
        yield gate  # never triggered

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(body())


def test_immediate_return_process():
    sim = Simulator()

    def body():
        return "instant"
        yield  # pragma: no cover

    assert sim.run_process(body()) == "instant"


def test_many_processes_scale():
    sim = Simulator()
    done = []

    def worker(i):
        yield sim.timeout(i % 17)
        done.append(i)

    for i in range(2000):
        sim.process(worker(i))
    sim.run()
    assert len(done) == 2000
