"""Unit tests for Host, CostModel, Network and Server dispatch."""

import pytest

from repro.errors import ServiceUnavailableError
from repro.sim.core import Simulator
from repro.sim.host import CostModel, Host
from repro.sim.network import LoadBalancer, Network, Server
from repro.sim.stats import OpContext


class EchoServer(Server):
    def rpc_echo(self, value):
        yield from self.host.work(10)
        return ("echo", value)

    def rpc_fail(self):
        yield from self.host.work(1)
        raise ValueError("handler error")


def build():
    sim = Simulator()
    host = Host(sim, "srv", cores=2)
    server = EchoServer(host)
    net = Network(sim, one_way_us=50)
    return sim, host, server, net


def test_rpc_charges_two_transits_plus_service():
    sim, host, server, net = build()

    def body():
        result = yield from net.rpc(server, "echo", 7)
        return (result, sim.now)

    result, when = sim.run_process(body())
    assert result == ("echo", 7)
    assert when == 110.0  # 50 out + 10 service + 50 back


def test_rpc_counts_rounds():
    sim, host, server, net = build()
    ctx = OpContext("echo")

    def body():
        yield from net.rpc(server, "echo", 1, ctx=ctx)
        yield from net.rpc(server, "echo", 2, ctx=ctx)

    sim.run_process(body())
    assert net.rpc_count == 2
    assert ctx.rpcs == 2


def test_server_cpu_queueing_delays_rpcs():
    sim, host, server, net = build()  # 2 cores
    finish_times = []

    def caller():
        yield from net.rpc(server, "echo", 0)
        finish_times.append(sim.now)

    for _ in range(4):
        sim.process(caller())
    sim.run()
    # Two run at once; the next two queue behind them for 10us.
    assert finish_times == [110.0, 110.0, 120.0, 120.0]


def test_handler_exception_propagates_after_return_transit():
    sim, host, server, net = build()

    def body():
        try:
            yield from net.rpc(server, "fail")
        except ValueError:
            return sim.now

    # 50 out + 1 service + 50 back: error arrives with the response.
    assert sim.run_process(body()) == 101.0


def test_unknown_method_raises():
    sim, host, server, net = build()

    def body():
        yield from net.rpc(server, "nope")

    with pytest.raises(AttributeError):
        sim.run_process(body())


def test_crashed_host_rejects_work():
    sim, host, server, net = build()
    host.crash()

    def body():
        yield from net.rpc(server, "echo", 1)

    with pytest.raises(ServiceUnavailableError):
        sim.run_process(body())
    host.recover()

    def body2():
        result = yield from net.rpc(server, "echo", 1)
        return result

    assert sim.run_process(body2()) == ("echo", 1)


def test_fsync_serializes_and_counts():
    sim = Simulator()
    host = Host(sim, "db", cores=4, fsync_us=100)
    done = []

    def flusher():
        yield from host.fsync()
        done.append(sim.now)

    sim.process(flusher())
    sim.process(flusher())
    sim.run()
    assert done == [100.0, 200.0]
    assert host.fsync_count == 2


def test_utilization_accounting():
    sim = Simulator()
    host = Host(sim, "h", cores=2)

    def worker():
        yield from host.work(50)

    sim.process(worker())
    sim.process(worker())
    sim.run()
    assert host.cpu_busy_us == 100.0
    assert host.utilization(50.0) == pytest.approx(1.0)


def test_network_jitter_stays_positive_and_varies():
    sim = Simulator()
    net = Network(sim, one_way_us=50, jitter_frac=0.5, seed=3)
    samples = {net._sample_one_way() for _ in range(50)}
    assert len(samples) > 1
    assert all(s >= 1.0 for s in samples)


def test_load_balancer_round_robin():
    lb = LoadBalancer(["a", "b", "c"])
    picks = [lb.pick() for _ in range(7)]
    assert picks == ["a", "b", "c", "a", "b", "c", "a"]
    assert lb.all() == ["a", "b", "c"]


def test_load_balancer_empty_rejected():
    with pytest.raises(ValueError):
        LoadBalancer([])


def test_cost_model_copy_overrides():
    base = CostModel()
    tweaked = base.copy(fsync_us=999.0)
    assert tweaked.fsync_us == 999.0
    assert base.fsync_us == 120.0
    assert tweaked.net_one_way_us == base.net_one_way_us
