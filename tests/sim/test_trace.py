"""Span tracer unit tests plus whole-stack span-tree invariants."""

import pytest

from repro.core.api import MantleClient
from repro.core.config import MantleConfig
from repro.errors import MetadataError
from repro.sim.trace import (
    NULL_SPAN,
    NULL_TRACER,
    OpAggregate,
    Tracer,
    aggregate_ops,
    category_summary,
    children_index,
    chrome_trace_events,
    export_chrome_trace,
    validate_chrome_trace,
)


class TestTracerUnit:
    def test_begin_end_builds_tree(self):
        tracer = Tracer()
        root = tracer.begin("mkdir", 10.0, category="op", host="proxy-0")
        child = tracer.begin("rpc:lookup", 11.0, category="rpc", parent=root)
        tracer.end(child, 15.0)
        tracer.end(root, 20.0)
        spans = list(tracer.spans)
        assert [s.name for s in spans] == ["rpc:lookup", "mkdir"]
        assert spans[0].parent_id == root.span_id
        assert root.parent_id == 0
        assert root.duration_us == 10.0
        assert tracer.started == tracer.finished == 2
        assert tracer.dropped == 0

    def test_annotate_and_failure_flag(self):
        tracer = Tracer()
        span = tracer.begin("txn", 0.0, category="txn")
        span.annotate(shards=2)
        span.annotate(mode="2pc")
        tracer.end(span, 5.0, ok=False)
        got = list(tracer.spans)[0]
        assert got.attrs == {"shards": 2, "mode": "2pc"}
        assert got.ok is False

    def test_ring_bounds_and_dropped(self):
        tracer = Tracer(max_spans=4)
        for i in range(10):
            tracer.end(tracer.begin(f"s{i}", float(i)), float(i) + 1)
        assert len(tracer.spans) == 4
        assert tracer.dropped == 6
        assert [s.name for s in tracer.spans] == ["s6", "s7", "s8", "s9"]

    def test_root_sampling_elides_whole_trees(self):
        tracer = Tracer(sample_every=2)
        kept = []
        for i in range(6):
            root = tracer.begin(f"op{i}", 0.0, category="op")
            child = tracer.begin("rpc", 0.0, category="rpc", parent=root)
            tracer.end(child, 1.0)
            tracer.end(root, 2.0)
            if root is not NULL_SPAN:
                kept.append(i)
        assert kept == [0, 2, 4]  # 1-in-2 roots kept
        names = {s.name for s in tracer.spans}
        assert names == {"op0", "op2", "op4", "rpc"}
        # children of unsampled roots were elided entirely:
        assert sum(1 for s in tracer.spans if s.category == "rpc") == 3

    def test_reset(self):
        tracer = Tracer()
        tracer.end(tracer.begin("x", 0.0), 1.0)
        tracer.reset()
        assert len(tracer.spans) == 0
        assert tracer.started == tracer.finished == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)
        with pytest.raises(ValueError):
            Tracer(sample_every=0)

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.begin("anything", 0.0, category="op")
        assert span is NULL_SPAN
        assert not span  # falsy so `if span:` skips work
        span.annotate(ignored=True)
        NULL_TRACER.end(span, 1.0)
        NULL_TRACER.reset()
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.dropped == 0


class TestAggregation:
    def _traced_ops(self):
        tracer = Tracer()
        for i in range(3):
            root = tracer.begin("mkdir", 0.0, category="op")
            phase = tracer.begin("lookup", 0.0, category="phase", parent=root)
            tracer.end(phase, 4.0)
            rpc = tracer.begin("rpc:m", 4.0, category="rpc", parent=root)
            tracer.end(rpc, 6.0)
            tracer.end(root, 10.0 + i)
        failed = tracer.begin("mkdir", 0.0, category="op")
        tracer.end(failed, 1.0, ok=False)
        return tracer

    def test_aggregate_ops_matches_metricset_semantics(self):
        agg = aggregate_ops(self._traced_ops().spans)["mkdir"]
        assert isinstance(agg, OpAggregate)
        assert agg.count == 3
        assert agg.failures == 1  # failed roots contribute nothing else
        assert agg.mean_latency_us == pytest.approx(11.0)
        assert agg.mean_rpcs == pytest.approx(1.0)
        assert agg.mean_phase_us("lookup") == pytest.approx(4.0)
        assert agg.mean_phase_us("execution") == 0.0

    def test_children_index_and_category_summary(self):
        tracer = self._traced_ops()
        index = children_index(tracer.spans)
        roots = [s for s in tracer.spans if s.category == "op" and s.ok]
        for root in roots:
            assert len(index[root.span_id]) == 2
        summary = category_summary(tracer.spans)
        assert summary["op"][0] == 4
        assert summary["rpc"] == (3, pytest.approx(6.0))


class TestChromeExport:
    def test_events_and_validation(self):
        tracer = Tracer()
        root = tracer.begin("mkdir", 5.0, category="op", host="proxy-0")
        child = tracer.begin("rpc:x", 6.0, category="rpc", parent=root,
                             host="db-0")
        tracer.end(child, 8.0)
        tracer.end(root, 9.0)
        payload = export_chrome_trace([("case-a", tracer.spans)])
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        # hosts become named threads inside the section's process
        meta = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"case-a", "proxy-0", "db-0"} <= meta
        by_name = {e["name"]: e for e in complete}
        assert by_name["mkdir"]["ts"] == 5.0
        assert by_name["mkdir"]["dur"] == 4.0
        assert by_name["rpc:x"]["args"]["parent_id"] == root.span_id

    def test_unfinished_spans_are_skipped(self):
        tracer = Tracer()
        tracer.begin("open-ended", 0.0)  # never ended
        assert chrome_trace_events(tracer.spans) == []

    def test_validator_flags_garbage(self):
        assert validate_chrome_trace([]) == ["payload is not a JSON object"]
        assert validate_chrome_trace({}) == ["missing traceEvents array"]
        bad = {"traceEvents": [
            {"name": "", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 1},
            {"name": "x", "ph": "Q", "pid": 1, "tid": 1},
            {"name": "y", "ph": "X", "pid": "p", "tid": 1, "ts": -1, "dur": 1},
        ]}
        problems = validate_chrome_trace(bad)
        assert any("missing name" in p for p in problems)
        assert any("unsupported ph" in p for p in problems)
        assert any("pid must be an int" in p for p in problems)
        assert any("bad ts" in p for p in problems)


@pytest.mark.parametrize("fast", ["1", "0"])
class TestSpanTreeInvariants:
    """Whole-stack invariants, pinned on both the fast and legacy kernels."""

    def _client_session(self, monkeypatch, fast):
        monkeypatch.setenv("MANTLE_SIM_FAST", fast)
        client = MantleClient(MantleConfig.small(tracing=True))
        results = [
            client.mkdir("/a"),
            client.mkdir("/a/b"),
            client.create("/a/b/f0"),
            client.create("/a/b/f1"),
            client.rename("/a/b", "/a/c"),
        ]
        client.objstat("/a/c/f0")
        with pytest.raises(MetadataError):
            client.mkdir("/a")  # already exists -> failed op root
        return client, results

    def test_children_nest_within_parents(self, monkeypatch, fast):
        client, _results = self._client_session(monkeypatch, fast)
        try:
            spans = list(client.tracer.spans)
            assert spans, "tracing was enabled but produced no spans"
            by_id = {s.span_id: s for s in spans}
            for span in spans:
                if not span.parent_id:
                    continue
                parent = by_id.get(span.parent_id)
                if parent is None:
                    continue  # parent fell out of the ring
                assert span.start_us >= parent.start_us
                assert span.end_us <= parent.end_us
        finally:
            client.close()

    def test_rpc_span_count_matches_ctx_rpcs(self, monkeypatch, fast):
        client, results = self._client_session(monkeypatch, fast)
        try:
            spans = list(client.tracer.spans)
            roots = [s for s in spans if s.category == "op"]
            index = children_index(spans)
            # ops ran sequentially, so roots line up with the call order;
            # the first five are the mutations that returned OpResults.
            assert len(roots) == 7
            for root, result in zip(roots, results):
                rpc_children = [c for c in index.get(root.span_id, ())
                                if c.category == "rpc"]
                assert len(rpc_children) == result.rpcs
            assert roots[-1].ok is False  # the duplicate mkdir
            # aggregate view agrees with the MetricSet counters:
            agg = aggregate_ops(spans)
            for op in ("mkdir", "create", "dirrename", "objstat"):
                assert agg[op].mean_rpcs == pytest.approx(
                    client.metrics.mean_rpcs(op))
                assert agg[op].mean_latency_us == pytest.approx(
                    client.metrics.mean_latency_us(op))
            assert agg["mkdir"].failures == 1
        finally:
            client.close()
