"""Tail-kept trace sampling: slow/errored op trees survive the ring.

The :class:`~repro.sim.trace.TailKeeper` exists so a bounded trace ring
never silently loses the ops worth debugging.  The load-bearing claim —
pinned under deliberate ring pressure here — is that 100% of finished
ops at or above the keep threshold are retained with their whole span
trees, no matter how small the ring is, and that every keep/drop is
accounted for in :func:`~repro.sim.trace.trace_stats`.
"""

from repro.sim.trace import (
    CAT_OP,
    CAT_PHASE,
    TailKeeper,
    Tracer,
    trace_stats,
)


def _run_op(tracer: Tracer, name: str, start: float, duration: float,
            children: int = 2, ok: bool = True) -> None:
    """One op tree: a CAT_OP root with ``children`` sequential phases."""
    root = tracer.begin(name, start, category=CAT_OP)
    step = duration / (children + 1)
    now = start
    for i in range(children):
        child = tracer.begin(f"{name}.phase{i}", now, category=CAT_PHASE,
                             parent=root)
        now += step
        tracer.end(child, now)
    tracer.end(root, start + duration, ok=ok)


class TestTailKeeperUnderRingPressure:
    def test_all_ops_above_threshold_survive_a_tiny_ring(self):
        keeper = TailKeeper(threshold_us=100.0, budget=10_000)
        tracer = Tracer(max_spans=8, keeper=keeper)
        slow_names = []
        now = 0.0
        for i in range(200):
            slow = i % 10 == 3
            name = f"op-{i}"
            if slow:
                slow_names.append(name)
            _run_op(tracer, name, now, 500.0 if slow else 5.0)
            now += 600.0
        stats = trace_stats(tracer)
        assert stats["dropped"] > 0, "test needs real ring pressure"
        kept = {tree[-1].name: tree for tree in keeper.trees()}
        for name in slow_names:
            assert name in kept, f"slow op {name} fell out of the trace"
        # Whole trees: root plus both phase children, root last.
        for name in slow_names:
            tree = kept[name]
            assert len(tree) == 3
            assert tree[-1].category == CAT_OP
            assert {s.name for s in tree[:-1]} == {
                f"{name}.phase0", f"{name}.phase1"}
        assert stats["kept_roots"] == len(kept)
        assert stats["kept_spans"] == sum(len(t) for t in keeper.trees())

    def test_fast_ops_below_threshold_are_not_kept(self):
        keeper = TailKeeper(threshold_us=100.0)
        tracer = Tracer(max_spans=8, keeper=keeper)
        for i in range(50):
            _run_op(tracer, f"op-{i}", i * 10.0, 5.0)
        assert keeper.kept_roots == 0
        assert tracer.retained_spans() == sorted(
            tracer.spans, key=lambda s: s.span_id)

    def test_errored_ops_are_kept_regardless_of_duration(self):
        keeper = TailKeeper(threshold_us=100.0)
        tracer = Tracer(max_spans=8, keeper=keeper)
        for i in range(50):
            _run_op(tracer, f"op-{i}", i * 10.0, 1.0, ok=i != 17)
        assert keeper.kept_errors == 1
        assert [t[-1].name for t in keeper.trees()] == ["op-17"]

    def test_budget_evicts_oldest_trees_whole(self):
        keeper = TailKeeper(threshold_us=1.0, budget=12)  # every op kept
        tracer = Tracer(max_spans=4, keeper=keeper)
        for i in range(10):
            _run_op(tracer, f"op-{i}", i * 100.0, 50.0)
        assert keeper.evicted_roots > 0
        assert keeper.kept_spans <= 12
        survivors = [t[-1].name for t in keeper.trees()]
        # Oldest-first eviction: the survivors are the most recent ops.
        assert survivors == [f"op-{i}" for i in
                             range(10 - len(survivors), 10)]

    def test_retained_spans_dedupes_ring_and_keeper(self):
        keeper = TailKeeper(threshold_us=100.0)
        tracer = Tracer(max_spans=1_000, keeper=keeper)
        _run_op(tracer, "slow", 0.0, 500.0)
        # The tree sits in BOTH the ring and the keeper; retained_spans
        # must report each span exactly once, in span-id order.
        retained = tracer.retained_spans()
        ids = [span.span_id for span in retained]
        assert ids == sorted(set(ids))
        assert len(retained) == 3


class TestAdaptiveThreshold:
    def test_keep_all_until_min_samples(self):
        keeper = TailKeeper(min_samples=8)
        tracer = Tracer(max_spans=1_000, keeper=keeper)
        for i in range(8):
            _run_op(tracer, f"warm-{i}", i * 10.0, 2.0)
        assert keeper.kept_roots == 8

    def test_threshold_adapts_to_the_op_types_own_tail(self):
        keeper = TailKeeper(min_samples=8)
        tracer = Tracer(max_spans=10_000, keeper=keeper)
        now = 0.0
        # A tight unimodal population first ...
        for i in range(200):
            _run_op(tracer, "op", now, 10.0 + (i % 5))
            now += 100.0
        kept_before = keeper.kept_roots
        # ... then a genuine straggler: must clear the adaptive p99.
        _run_op(tracer, "op", now, 500.0)
        assert keeper.kept_roots == kept_before + 1
        assert keeper.trees()[-1][-1].start_us == now
        # Per-op-type thresholds: a different op type starts keep-all.
        _run_op(tracer, "other", now + 1_000.0, 1.0)
        assert keeper.kept_roots == kept_before + 2

    def test_reset_clears_keeper_state(self):
        keeper = TailKeeper(threshold_us=1.0)
        tracer = Tracer(max_spans=16, keeper=keeper)
        _run_op(tracer, "op", 0.0, 50.0)
        assert keeper.kept_roots == 1
        tracer.reset()
        assert keeper.kept_roots == 0
        assert keeper.kept_spans == 0
        assert trace_stats(tracer)["started"] == 0


class TestTraceStats:
    def test_stats_shape_and_counts(self):
        keeper = TailKeeper(threshold_us=100.0)
        tracer = Tracer(max_spans=4, keeper=keeper, sample_every=1)
        for i in range(20):
            _run_op(tracer, f"op-{i}", i * 1_000.0, 500.0, children=1)
        stats = trace_stats(tracer)
        assert stats["started"] == stats["finished"] == 40
        assert stats["dropped"] == 40 - 4
        assert stats["sample_every"] == 1
        assert stats["kept_roots"] == 20
        assert stats["kept_errors"] == 0
        assert stats["kept_spans"] == 40
        assert stats["kept_evicted_roots"] == 0
        assert all(isinstance(v, int) for v in stats.values())
