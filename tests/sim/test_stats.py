"""Unit tests for the measurement plumbing (repro.sim.stats)."""

import pytest

from repro.sim.stats import (
    PHASE_EXECUTION,
    PHASE_LOOKUP,
    LatencyRecorder,
    MetricSet,
    OpContext,
    percentile,
)


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 50) == 5.0

    def test_median_of_two(self):
        assert percentile([0.0, 10.0], 50) == 5.0

    def test_extremes(self):
        data = sorted(float(i) for i in range(1, 101))
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 100.0

    def test_interpolation(self):
        assert percentile([0.0, 100.0], 25) == 25.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencyRecorder:
    def test_basic_stats(self):
        rec = LatencyRecorder("op")
        rec.extend([1.0, 2.0, 3.0, 4.0])
        assert rec.count == 4
        assert rec.mean == 2.5
        assert rec.min == 1.0
        assert rec.max == 4.0
        assert rec.total == 10.0

    def test_percentiles_after_unsorted_adds(self):
        rec = LatencyRecorder()
        rec.extend([9.0, 1.0, 5.0])
        assert rec.p50 == 5.0
        assert rec.p(100) == 9.0

    def test_negative_sample_rejected(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            rec.add(-1.0)

    def test_empty_recorder_reports_zeros(self):
        rec = LatencyRecorder()
        assert rec.mean == 0.0
        assert rec.p99 == 0.0
        assert rec.cdf() == []

    def test_cdf_monotone(self):
        rec = LatencyRecorder()
        rec.extend(float(i) for i in range(100))
        points = rec.cdf(points=10)
        lats = [p[0] for p in points]
        fracs = [p[1] for p in points]
        assert lats == sorted(lats)
        assert fracs == sorted(fracs)
        assert fracs[-1] == 1.0
        assert lats[-1] == 99.0

    def test_fraction_above(self):
        rec = LatencyRecorder()
        rec.extend([1.0, 2.0, 3.0, 4.0])
        assert rec.fraction_above(2.0) == 0.5
        assert rec.fraction_above(100.0) == 0.0
        assert rec.fraction_above(0.0) == 1.0

    def test_sorted_cache_invalidated_by_add(self):
        rec = LatencyRecorder()
        rec.add(10.0)
        assert rec.p50 == 10.0
        rec.add(0.0)
        assert rec.p50 == 5.0

    def test_p999_separates_extreme_tail(self):
        rec = LatencyRecorder()
        rec.extend([1.0] * 999)
        rec.add(1000.0)
        assert rec.p99 == 1.0
        assert rec.p999 > 1.0

    def test_stddev(self):
        rec = LatencyRecorder()
        rec.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert rec.stddev == pytest.approx(2.0)
        single = LatencyRecorder()
        single.add(5.0)
        assert single.stddev == 0.0

    def test_summary_digest(self):
        rec = LatencyRecorder()
        rec.extend([1.0, 3.0])
        digest = rec.summary()
        assert digest["count"] == 2.0
        assert digest["mean"] == 2.0
        assert digest["p50"] == 2.0
        assert digest["max"] == 3.0
        assert digest["total"] == 4.0
        assert digest["stddev"] == pytest.approx(1.0)

    def test_summary_empty_safe(self):
        digest = LatencyRecorder().summary()
        assert set(digest) == {"count", "mean", "p50", "p99", "p999",
                               "max", "min", "stddev", "total"}
        assert all(v == 0.0 for v in digest.values())


class TestOpContext:
    def test_phase_accounting(self):
        ctx = OpContext("mkdir")
        ctx.begin(PHASE_LOOKUP, 100.0)
        ctx.end(PHASE_LOOKUP, 130.0)
        ctx.begin(PHASE_EXECUTION, 130.0)
        ctx.end(PHASE_EXECUTION, 180.0)
        assert ctx.phase_time(PHASE_LOOKUP) == 30.0
        assert ctx.phase_time(PHASE_EXECUTION) == 50.0

    def test_phase_reentry_accumulates(self):
        ctx = OpContext("op")
        ctx.begin(PHASE_LOOKUP, 0.0)
        ctx.end(PHASE_LOOKUP, 10.0)
        ctx.begin(PHASE_LOOKUP, 20.0)
        ctx.end(PHASE_LOOKUP, 25.0)
        assert ctx.phase_time(PHASE_LOOKUP) == 15.0

    def test_end_without_begin_rejected(self):
        ctx = OpContext("op")
        with pytest.raises(ValueError):
            ctx.end(PHASE_LOOKUP, 1.0)

    def test_latency_requires_start_finish(self):
        ctx = OpContext("op")
        assert ctx.latency == 0.0
        ctx.start, ctx.finish = 10.0, 35.0
        assert ctx.latency == 25.0


class TestMetricSet:
    def _ctx(self, op, start, finish, rpcs=1, phases=None):
        ctx = OpContext(op)
        ctx.start, ctx.finish = start, finish
        ctx.rpcs = rpcs
        if phases:
            for name, dur in phases.items():
                ctx.begin(name, 0.0)
                ctx.end(name, dur)
        return ctx

    def test_throughput_kops(self):
        ms = MetricSet()
        ms.started_at, ms.finished_at = 0.0, 1_000_000.0  # one second
        for i in range(500):
            ms.record(self._ctx("objstat", 0.0, 100.0))
        assert ms.throughput_kops() == pytest.approx(0.5)
        assert ms.throughput_kops("objstat") == pytest.approx(0.5)
        assert ms.throughput_kops("missing") == 0.0

    def test_phase_breakdown_defaults_missing_to_zero(self):
        ms = MetricSet()
        ms.record(self._ctx("mkdir", 0, 50, phases={PHASE_LOOKUP: 30.0}))
        breakdown = ms.phase_breakdown("mkdir")
        assert breakdown[PHASE_LOOKUP] == 30.0
        assert breakdown[PHASE_EXECUTION] == 0.0

    def test_mean_rpcs(self):
        ms = MetricSet()
        ms.record(self._ctx("objstat", 0, 10, rpcs=1))
        ms.record(self._ctx("objstat", 0, 10, rpcs=3))
        assert ms.mean_rpcs("objstat") == 2.0

    def test_failures_and_retries_counted(self):
        ms = MetricSet()
        ctx = self._ctx("mkdir", 0, 10)
        ctx.retries = 4
        ms.record_failure(ctx)
        assert ms.ops_failed == 1
        assert ms.retries == 4
        assert ms.ops_completed == 0

    def test_failed_ops_keep_their_measurements(self):
        """record_failure must not drop the context's latency/rpcs/phases;
        they land in the parallel failed_* recorders."""
        ms = MetricSet()
        ctx = self._ctx("mkdir", 0.0, 40.0, rpcs=3,
                        phases={PHASE_LOOKUP: 12.0})
        ms.record_failure(ctx)
        assert ms.failed_mean_latency_us("mkdir") == 40.0
        assert ms.failed_latency["mkdir"].count == 1
        assert ms.failed_rpc_rounds["mkdir"].mean == 3.0
        assert ms.failed_phase_latency[("mkdir", PHASE_LOOKUP)].mean == 12.0
        # The success-side recorders stay untouched.
        assert "mkdir" not in ms.latency
        assert ms.failed_mean_latency_us("missing") == 0.0
