"""Unit tests for Resource and Store (repro.sim.resources)."""

import pytest

from repro.sim.core import Simulator
from repro.sim.resources import Resource, Store
from repro.sim.core import SimulationError


def hold(sim, res, duration, trace, name):
    req = res.request()
    yield req
    try:
        trace.append((name, "got", sim.now))
        yield sim.timeout(duration)
    finally:
        res.release(req)


def test_capacity_one_serializes():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    trace = []
    for name in ("a", "b", "c"):
        sim.process(hold(sim, res, 10, trace, name))
    sim.run()
    assert trace == [("a", "got", 0.0), ("b", "got", 10.0), ("c", "got", 20.0)]


def test_capacity_two_allows_two_concurrent():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    trace = []
    for name in ("a", "b", "c"):
        sim.process(hold(sim, res, 10, trace, name))
    sim.run()
    assert trace == [("a", "got", 0.0), ("b", "got", 0.0), ("c", "got", 10.0)]


def test_fifo_ordering_of_waiters():
    sim = Simulator()
    res = Resource(sim, 1)
    trace = []
    for name in "abcdef":
        sim.process(hold(sim, res, 1, trace, name))
    sim.run()
    assert [t[0] for t in trace] == list("abcdef")


def test_invalid_capacity_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, 0)


def test_release_unheld_request_rejected():
    sim = Simulator()
    res = Resource(sim, 1)

    def body():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)

    with pytest.raises(SimulationError):
        sim.run_process(body())


def test_cancel_waiting_request():
    sim = Simulator()
    res = Resource(sim, 1)
    trace = []

    def canceller():
        req1 = res.request()
        yield req1
        req2 = res.request()  # queued behind ourselves
        req2.cancel()
        res.release(req2)  # releasing a cancelled request is a no-op
        yield sim.timeout(5)
        res.release(req1)
        trace.append(sim.now)

    sim.process(canceller())
    sim.run()
    assert trace == [5.0]
    assert res.in_use == 0
    assert res.queued == 0


def test_peak_and_grant_accounting():
    sim = Simulator()
    res = Resource(sim, 3)
    trace = []
    for name in "abcd":
        sim.process(hold(sim, res, 4, trace, name))
    sim.run()
    assert res.peak_in_use == 3
    assert res.total_grants == 4
    assert res.total_wait_time == 4.0  # 'd' waited one full hold


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")

    def body():
        item = yield store.get()
        return item

    assert sim.run_process(body()) == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return (item, sim.now)

    def producer():
        yield sim.timeout(9)
        store.put("late")

    proc = sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert proc.value == ("late", 9.0)


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    store.put(1)
    store.put(2)
    store.put(3)
    sim.process(consumer())
    sim.run()
    assert got == [1, 2, 3]


def test_store_multiple_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(name):
        item = yield store.get()
        got.append((name, item))

    sim.process(consumer("first"))
    sim.process(consumer("second"))

    def producer():
        yield sim.timeout(1)
        store.put("a")
        store.put("b")

    sim.process(producer())
    sim.run()
    assert got == [("first", "a"), ("second", "b")]


def test_store_drain():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert store.drain() == [1, 2]
    assert len(store) == 0
