"""Cost profiler invariants: conservation, attribution, exports, diffs.

The load-bearing guarantees (``repro.sim.profile``'s docstring makes them
explicit) are pinned here:

* self-time telescopes — the sum of self-times over a dynamic span tree
  equals the sum of root durations *exactly*,
* charges land on the innermost open span of the charging process, and
  charges with no span open accrue to the unattributed bucket instead of
  leaking into a neighbouring span,
* both flame-graph export formats satisfy their validators and are
  deterministic across kernels,
* profiling is pure bookkeeping: simulated results with it on are
  bit-identical to an uninstrumented run, and
* profiler CPU reconciles exactly with telemetry's busy counters.
"""

import pytest

from repro.bench.cluster import build_system
from repro.bench.harness import run_workload
from repro.experiments.base import mdtest_metrics, mdtest_metrics_profiled
from repro.sim.profile import (
    UNATTRIBUTED_FRAME,
    build_profile,
    diff_profiles,
    dynamic_phase_breakdown,
    profile_from_tracer,
    to_folded,
    to_speedscope,
    validate_folded,
    validate_speedscope,
)
from repro.sim.trace import CAT_OP, CAT_PHASE, CAT_RPC, Tracer
from repro.workloads.mdtest import MdtestWorkload


def _tree_tracer():
    """root[0,100] > child[10,40] > grandchild[20,30], sibling[50,90].

    An unbound tracer degrades to one shared span stack, which is exactly
    what a single-process synthetic tree needs.
    """
    tracer = Tracer()
    root = tracer.begin("objstat", 0.0, CAT_OP)
    child = tracer.begin("lookup", 10.0, CAT_PHASE, parent=root)
    grandchild = tracer.begin("rpc:lookup", 20.0, CAT_RPC, parent=child)
    tracer.end(grandchild, 30.0)
    tracer.end(child, 40.0)
    sibling = tracer.begin("execution", 50.0, CAT_PHASE, parent=root)
    tracer.end(sibling, 90.0)
    tracer.end(root, 100.0)
    return tracer


class TestSelfTimeConservation:
    def test_synthetic_tree_telescopes_exactly(self):
        profile = profile_from_tracer(_tree_tracer())
        assert profile.total_root_us == 100.0
        assert profile.total_self_us == 100.0
        assert profile.conservation_error() == 0.0
        self_by_frame = {f: fc.self_us for f, fc in profile.frames.items()}
        # root 100 - (30 + 40), lookup 30 - 10, leaf 10, execution 40.
        assert self_by_frame == {"objstat": 30.0, "lookup": 20.0,
                                 "rpc:lookup": 10.0, "execution": 40.0}

    def test_dynamic_parent_differs_from_declared(self):
        """RPCs declare the op root; the dynamic parent is the open phase."""
        tracer = Tracer()
        root = tracer.begin("mkdir", 0.0, CAT_OP)
        phase = tracer.begin("lookup", 1.0, CAT_PHASE, parent=root)
        rpc = tracer.begin("rpc:lookup", 2.0, CAT_RPC, parent=root)
        assert rpc.parent_id == root.span_id
        assert rpc.dyn_parent_id == phase.span_id
        tracer.end(rpc, 3.0)
        tracer.end(phase, 4.0)
        tracer.end(root, 5.0)
        profile = profile_from_tracer(tracer)
        assert profile.conservation_error() == 0.0
        assert ("mkdir", "lookup", "rpc:lookup") in \
            {stack for stack, _kind in profile.stacks}

    def test_leaked_child_is_truncated_on_root_end(self):
        tracer = Tracer()
        root = tracer.begin("create", 0.0, CAT_OP)
        leaked = tracer.begin("tafdb.txn", 1.0, "txn", parent=root)
        assert leaked.end_us is None
        tracer.end(root, 10.0, ok=False)  # exception unwound past the child
        follow_up = tracer.begin("create", 20.0, CAT_OP)
        assert follow_up.dyn_parent_id == 0  # stack healed, new root
        tracer.end(follow_up, 25.0)
        profile = profile_from_tracer(tracer)
        assert profile.ops == 1 and profile.op_failures == 1
        assert profile.conservation_error() == 0.0


class TestChargeAttribution:
    def test_charges_land_on_innermost_span(self):
        tracer = Tracer()
        root = tracer.begin("objstat", 0.0, CAT_OP)
        inner = tracer.begin("rpc_lookup", 2.0, "handler", parent=root,
                             host="index0")
        tracer.charge("cpu", 5.0, "index0")
        tracer.end(inner, 10.0)
        tracer.charge("wire", 3.0, "index0")  # lands on the root now
        tracer.end(root, 20.0)
        assert inner.costs == {("cpu", "index0"): 5.0}
        assert root.costs == {("wire", "index0"): 3.0}
        profile = profile_from_tracer(tracer)
        kinds = profile.cost_by_kind()
        assert kinds["cpu"] == 5.0 and kinds["wire"] == 3.0
        # idle residual fills the rest of the tree's 20us exactly.
        assert kinds["idle"] == pytest.approx(12.0)

    def test_charge_with_no_open_span_is_unattributed(self):
        tracer = Tracer()
        tracer.charge("cpu", 7.0, "bg0")
        assert tracer.unattributed == {("bg0", "cpu"): 7.0}
        profile = profile_from_tracer(tracer)
        assert profile.centers[("bg0", UNATTRIBUTED_FRAME, "cpu")] == 7.0

    def test_charge_under_unsampled_root_is_unattributed(self):
        tracer = Tracer(sample_every=2)
        first = tracer.begin("objstat", 0.0, CAT_OP)
        tracer.charge("cpu", 1.0, "h0")
        tracer.end(first, 5.0)
        second = tracer.begin("objstat", 10.0, CAT_OP)  # sampled out
        tracer.charge("cpu", 2.0, "h0")
        tracer.end(second, 15.0)
        assert first.costs == {("cpu", "h0"): 1.0}
        assert tracer.unattributed == {("h0", "cpu"): 2.0}

    def test_zero_and_negative_charges_ignored(self):
        tracer = Tracer()
        tracer.charge("cpu", 0.0, "h0")
        tracer.charge("cpu", -1.0, "h0")
        assert tracer.unattributed == {}


class TestDynamicPhaseBreakdown:
    def test_means_over_successful_roots_only(self):
        tracer = Tracer()
        for latency, ok in ((10.0, True), (20.0, True), (99.0, False)):
            root = tracer.begin("objstat", 0.0, CAT_OP)
            phase = tracer.begin("lookup", 0.0, CAT_PHASE, parent=root)
            tracer.end(phase, latency)
            tracer.end(root, latency + 1.0, ok=ok)
        breakdown = dynamic_phase_breakdown(tracer.spans)
        assert breakdown == {"objstat": {"lookup": 15.0}}

    def test_repeated_phase_sums_within_an_op(self):
        """Retries re-enter a phase; per-op totals must sum like
        ``OpContext.phases`` does."""
        tracer = Tracer()
        root = tracer.begin("create", 0.0, CAT_OP)
        for start, end in ((0.0, 4.0), (10.0, 16.0)):
            phase = tracer.begin("execution", start, CAT_PHASE, parent=root)
            tracer.end(phase, end)
        tracer.end(root, 20.0)
        breakdown = dynamic_phase_breakdown(tracer.spans)
        assert breakdown["create"]["execution"] == 10.0  # 4 + 6, one root


class TestExports:
    def test_folded_lines_pass_validator(self):
        tracer = _tree_tracer()
        tracer.charge("cpu", 1.0, "h0")  # unattributed tail line too
        profile = profile_from_tracer(tracer)
        lines = to_folded(profile)
        assert lines and validate_folded(lines) == []
        assert lines == sorted(lines)
        assert any(line.startswith("objstat;lookup;rpc:lookup;[idle] ")
                   for line in lines)

    def test_folded_validator_flags_malformed_lines(self):
        problems = validate_folded([
            "no_value_field",
            "a;b 0",
            "with space;b 3",
            "a;;b 4",
            "",
        ])
        assert len(problems) == 5

    def test_speedscope_payload_passes_validator(self):
        payload = to_speedscope(profile_from_tracer(_tree_tracer()))
        assert validate_speedscope(payload) == []
        prof = payload["profiles"][0]
        assert prof["endValue"] == sum(prof["weights"])

    def test_speedscope_validator_flags_corruption(self):
        payload = to_speedscope(profile_from_tracer(_tree_tracer()))
        assert validate_speedscope({"nope": 1})
        broken = to_speedscope(profile_from_tracer(_tree_tracer()))
        broken["$schema"] = "https://elsewhere.example/schema.json"
        assert validate_speedscope(broken)
        broken = to_speedscope(profile_from_tracer(_tree_tracer()))
        broken["profiles"][0]["weights"].append(1)
        assert validate_speedscope(broken)
        broken = to_speedscope(profile_from_tracer(_tree_tracer()))
        broken["profiles"][0]["samples"][0][0] = 10_000
        assert validate_speedscope(broken)
        broken = to_speedscope(profile_from_tracer(_tree_tracer()))
        broken["profiles"][0]["weights"][0] = -5
        assert validate_speedscope(broken)
        assert validate_speedscope(payload) == []  # untouched copy still ok


class TestDiffProfiles:
    def _profile(self, roots, cpu_each, wire_each=0.0):
        tracer = Tracer()
        at = 0.0
        for _ in range(roots):
            root = tracer.begin("objstat", at, CAT_OP)
            tracer.charge("cpu", cpu_each, "h0")
            if wire_each:
                tracer.charge("wire", wire_each, "h1")
            tracer.end(root, at + cpu_each + wire_each)
            at += 1000.0
        return profile_from_tracer(tracer)

    def test_aligned_per_op_deltas(self):
        base = self._profile(roots=1, cpu_each=100.0)
        other = self._profile(roots=2, cpu_each=150.0, wire_each=50.0)
        rows = {(r.frame, r.kind): r for r in diff_profiles(base, other)}
        cpu = rows[("objstat", "cpu")]
        assert cpu.base_us_per_op == 100.0
        assert cpu.other_us_per_op == 150.0
        assert cpu.delta_us_per_op == 50.0
        wire = rows[("objstat", "wire")]
        assert wire.base_us_per_op == 0.0 and wire.delta_us_per_op == 50.0
        assert wire.delta_spans_per_op == 0.0  # one root span per op both

    def test_rows_sorted_by_absolute_delta(self):
        base = self._profile(roots=1, cpu_each=100.0)
        other = self._profile(roots=1, cpu_each=10.0, wire_each=500.0)
        rows = diff_profiles(base, other)
        deltas = [abs(r.delta_us_per_op) for r in rows]
        assert deltas == sorted(deltas, reverse=True)


def _profiled_run(clients=8, items=4, depth=6):
    return mdtest_metrics_profiled("mantle", "objstat", clients=clients,
                                   items=items, depth=depth)


class TestProfiledRunInvariants:
    def test_real_run_conserves_self_time(self):
        _metrics, tracer, _telemetry = _profiled_run()
        profile = profile_from_tracer(tracer)
        assert profile.span_count > 0 and profile.ops > 0
        assert profile.conservation_error() < 1e-12
        assert all(fc.self_us >= 0.0 for fc in profile.frames.values())

    def test_cpu_reconciles_with_telemetry_exactly(self):
        _metrics, tracer, telemetry = _profiled_run()
        profile = profile_from_tracer(tracer)
        by_host = profile.cpu_by_host()
        hosts = telemetry.hosts("host.cpu_busy_us")
        assert hosts  # the workload must have burned CPU somewhere
        for host in hosts:
            expected = telemetry.find("host.cpu_busy_us", host).total
            assert by_host.get(host, 0.0) == pytest.approx(expected,
                                                           rel=1e-12)

    def test_folded_output_identical_across_kernels(self, monkeypatch):
        monkeypatch.setenv("MANTLE_SIM_FAST", "1")
        _m, tracer, _t = _profiled_run()
        fast = to_folded(profile_from_tracer(tracer))
        monkeypatch.setenv("MANTLE_SIM_FAST", "0")
        _m, tracer, _t = _profiled_run()
        legacy = to_folded(profile_from_tracer(tracer))
        assert fast == legacy
        assert validate_folded(fast) == []


def _fingerprint(metrics):
    return (
        metrics.ops_completed,
        metrics.retries,
        round(metrics.duration_us, 6),
        {op: (rec.count, round(rec.mean, 9))
         for op, rec in sorted(metrics.latency.items())},
        {op: (rec.count, round(rec.mean, 9))
         for op, rec in sorted(metrics.rpc_rounds.items())},
    )


class TestProfilingIsPureBookkeeping:
    @pytest.mark.parametrize("fast", ["1", "0"])
    def test_results_bit_identical_profiling_on_vs_off(self, monkeypatch,
                                                       fast):
        monkeypatch.setenv("MANTLE_SIM_FAST", fast)
        plain = mdtest_metrics("mantle", "objstat", clients=8, items=4,
                               depth=6)
        profiled, _tracer, _telemetry = _profiled_run()
        assert _fingerprint(plain) == _fingerprint(profiled)

    def test_explicit_tracer_matches_env_enabled_run(self, monkeypatch):
        """MANTLE_TRACE-constructed tracers are bound too, so the charge
        path is live there as well — and still changes nothing."""
        monkeypatch.setenv("MANTLE_TRACE", "1")
        system = build_system("mantle", "quick")
        try:
            assert system.sim.tracer.enabled
            assert system.sim.tracer._sim is system.sim
            metrics = run_workload(system, MdtestWorkload(
                "objstat", depth=6, items=4, num_clients=8))
            profile = build_profile(system.sim.tracer.spans,
                                    dict(system.sim.tracer.unattributed))
        finally:
            system.shutdown()
        monkeypatch.delenv("MANTLE_TRACE")
        plain = mdtest_metrics("mantle", "objstat", clients=8, items=4,
                               depth=6)
        assert _fingerprint(metrics) == _fingerprint(plain)
        assert profile.conservation_error() < 1e-12
