"""Tests for Raft log compaction and snapshot installation."""

import pytest

from repro.raft.log import LogEntry, RaftLog
from repro.raft.node import NOOP_COMMAND, RaftConfig, Role
from repro.sim.core import Simulator
from repro.sim.host import CostModel, Host
from repro.sim.network import Network
from repro.raft.group import RaftGroup
from repro.ops import make_op


class SnapshotListMachine:
    """State machine with snapshot support for these tests."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.commands = []

    def apply(self, command):
        self.commands.append(command)
        return ("applied", command)

    def snapshot(self):
        return list(self.commands)

    def restore(self, blob):
        self.commands = list(blob)


def build_group(voters=3, threshold=10, seed=1):
    sim = Simulator()
    net = Network(sim, one_way_us=50)
    hosts = [Host(sim, f"idx-{i}", cores=4, fsync_us=120)
             for i in range(voters)]
    config = RaftConfig(snapshot_threshold=threshold)
    group = RaftGroup(sim, net, hosts, SnapshotListMachine, voters,
                      config=config, costs=CostModel(), seed=seed)
    return sim, group


class TestLogCompaction:
    def test_compact_drops_prefix_and_keeps_terms(self):
        log = RaftLog()
        for i in range(10):
            log.append(1, f"c{i}")
        dropped = log.compact_to(6, 1)
        assert dropped == 6
        assert log.base_index == 6
        assert log.last_index == 10
        assert log.term_at(6) == 1      # boundary term retained
        assert log.term_at(3) is None   # compacted away
        assert log.entry(7).command == "c6"
        with pytest.raises(IndexError):
            log.entry(6)

    def test_compact_is_idempotent_and_bounded(self):
        log = RaftLog()
        for i in range(5):
            log.append(1, i)
        log.compact_to(3, 1)
        assert log.compact_to(3, 1) == 0
        with pytest.raises(IndexError):
            log.compact_to(99, 1)

    def test_append_after_compaction_continues_indexes(self):
        log = RaftLog()
        for i in range(5):
            log.append(1, i)
        log.compact_to(5, 1)
        entry = log.append(2, "post")
        assert entry.index == 6
        assert log.last_term == 2

    def test_merge_skips_snapshotted_entries(self):
        log = RaftLog()
        for i in range(5):
            log.append(1, i)
        log.compact_to(4, 1)
        # A stale AppendEntries overlapping the snapshot boundary.
        added = log.merge(2, [LogEntry(1, 3, 2), LogEntry(1, 4, 3),
                              LogEntry(1, 5, 4), LogEntry(1, 6, "new")])
        assert added == 1
        assert log.entry(6).command == "new"

    def test_matches_at_boundary(self):
        log = RaftLog()
        for i in range(5):
            log.append(3, i)
        log.compact_to(5, 3)
        assert log.matches(5, 3)
        assert not log.matches(5, 2)
        assert not log.matches(2, 3)  # compacted: unknowable

    def test_reset_to(self):
        log = RaftLog()
        log.append(1, "x")
        log.reset_to(42, 7)
        assert log.base_index == 42
        assert log.last_index == 42
        assert log.last_term == 7
        assert len(log) == 0


class TestSnapshotting:
    def test_leader_log_stays_bounded(self):
        sim, group = build_group(threshold=10)

        def body():
            leader = yield from group.wait_for_leader()
            for i in range(60):
                yield leader.propose(f"c{i}")
            return leader

        leader = sim.run_process(body())
        assert leader.snapshots_taken >= 4
        assert len(leader.log) <= 2 * 10  # bounded by ~threshold
        assert leader.log.last_index >= 60

    def test_lagging_follower_recovers_via_snapshot(self):
        sim, group = build_group(threshold=10)

        def phase1():
            leader = yield from group.wait_for_leader()
            return leader

        leader = sim.run_process(phase1())
        victim = next(n for n in group.nodes.values()
                      if n.role is Role.FOLLOWER)
        victim.host.crash()  # misses everything below

        def burst():
            for i in range(50):
                yield leader.propose(f"c{i}")

        sim.run_process(burst())
        assert leader.log.base_index > 0  # compaction happened
        victim.host.recover()
        sim.run(until=sim.now + 500_000)
        assert victim.snapshots_installed >= 1
        survivors = [c for c in victim.state_machine.commands
                     if c != NOOP_COMMAND]
        # The snapshot restored the full prefix; the tail replicated live.
        assert survivors == [f"c{i}" for i in range(50)] or \
            len(survivors) == 50
        assert victim.last_applied == leader.last_applied

    def test_snapshot_disabled_without_threshold(self):
        sim, group = build_group(threshold=0)

        def body():
            leader = yield from group.wait_for_leader()
            for i in range(30):
                yield leader.propose(f"c{i}")
            return leader

        leader = sim.run_process(body())
        assert leader.snapshots_taken == 0
        assert leader.log.base_index == 0


class TestMantleWithSnapshots:
    def test_indexnode_log_bounded_under_mkdir_storm(self):
        from repro.core.config import MantleConfig
        from repro.core.service import MantleSystem
        from repro.sim.stats import OpContext

        config = MantleConfig(num_db_servers=2, num_db_shards=4,
                              num_proxies=2, index_replicas=3, index_cores=8,
                              db_cores=8, proxy_cores=8,
                              raft_snapshot_threshold=20)
        system = MantleSystem(config)
        system.startup()
        system.bulk_mkdir("/s")
        sim = system.sim

        def client(cid):
            for i in range(20):
                ctx = OpContext("mkdir")
                yield from system.perform(make_op("mkdir", f"/s/d{cid}_{i}"), ctx=ctx)

        done = sim.all_of([sim.process(client(c)) for c in range(4)])
        sim.run_until(done)
        leader = system.index_group.leader_or_raise()
        assert leader.snapshots_taken >= 1
        assert len(leader.log) < 80
        # Correctness preserved: everything resolves.
        outcome = leader.state_machine.lookup("/s/d3_19", want="dir")
        assert outcome.target_id > 0
        system.shutdown()
