"""Raft catch-up and no-op commit tests (recovery paths)."""

from repro.raft.node import NOOP_COMMAND, Role
from tests.raft.test_raft import build_group, elect


class TestFollowerCatchUp:
    def test_partitioned_follower_catches_up_on_heal(self):
        """A follower whose host drops messages misses a batch of commits;
        once its host recovers, AppendEntries backfill brings it level."""
        sim, group = build_group(voters=3)

        def phase1():
            leader = yield from group.wait_for_leader()
            return leader

        leader = sim.run_process(phase1())
        follower = next(n for n in group.nodes.values()
                        if n.role is Role.FOLLOWER)
        follower.host.crash()  # messages to it are dropped, node not stopped

        def propose_burst():
            for i in range(20):
                yield leader.propose(f"cmd-{i}")

        sim.run_process(propose_burst())
        assert follower.last_applied == 0  # it heard nothing

        follower.host.recover()
        sim.run(until=sim.now + 500_000)  # heartbeats trigger backfill
        assert follower.last_applied >= 20
        assert [c for c in follower.state_machine.commands
                if c != NOOP_COMMAND] == [f"cmd-{i}" for i in range(20)]

    def test_commit_progress_with_one_voter_down(self):
        """3 voters tolerate one silent member: commits proceed on 2/3."""
        sim, group = build_group(voters=3)
        leader = sim.run_process(group.wait_for_leader())
        victim = next(n for n in group.nodes.values()
                      if n.role is Role.FOLLOWER)
        victim.host.crash()

        def body():
            results = []
            for i in range(5):
                result = yield leader.propose(f"c{i}")
                results.append(result)
            return results

        results = sim.run_process(body())
        assert len(results) == 5


class TestNoopOnElection:
    def test_new_leader_commits_prior_term_entries(self):
        """Entries committed under term 1 must become applied on the term-2
        leader even with no client proposals after the election (the no-op
        mechanism)."""
        sim, group = build_group(voters=3)

        def phase1():
            leader = yield from group.wait_for_leader()
            for i in range(3):
                yield leader.propose(f"pre-{i}")
            return leader

        old = sim.run_process(phase1())
        sim.run(until=sim.now + 50_000)  # let replication settle
        group.crash_node(old.id)
        new = sim.run_process(group.wait_for_leader())
        # No client proposals: the no-op alone must advance commit/apply.
        sim.run(until=sim.now + 300_000)
        applied = [c for c in new.state_machine.commands if c != NOOP_COMMAND]
        assert applied == ["pre-0", "pre-1", "pre-2"]
        assert new.last_applied >= 3

    def test_noop_not_passed_to_state_machine(self):
        sim, group = build_group(voters=3)

        def phase1():
            leader = yield from group.wait_for_leader()
            yield leader.propose("real")
            return leader

        old = sim.run_process(phase1())
        group.crash_node(old.id)
        new = sim.run_process(group.wait_for_leader())
        sim.run(until=sim.now + 300_000)
        assert NOOP_COMMAND not in new.state_machine.commands
