"""Integration tests for Raft: elections, replication, batching, reads."""

import pytest

from repro.errors import ServiceUnavailableError
from repro.raft.group import RaftGroup
from repro.raft.node import NotLeaderError, RaftConfig, Role
from repro.sim.core import Simulator
from repro.sim.host import CostModel, Host
from repro.sim.network import Network


class ListMachine:
    """Deterministic state machine recording applied commands."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.commands = []

    def apply(self, command):
        self.commands.append(command)
        return ("applied", command)


def build_group(voters=3, learners=0, batching=True, seed=1,
                batch_window_us=100.0):
    sim = Simulator()
    net = Network(sim, one_way_us=50)
    hosts = [Host(sim, f"idx-{i}", cores=4, fsync_us=120)
             for i in range(voters + learners)]
    config = RaftConfig(batching_enabled=batching,
                        batch_window_us=batch_window_us)
    group = RaftGroup(sim, net, hosts, ListMachine, voters, learners,
                      config=config, costs=CostModel(), seed=seed)
    return sim, group


def elect(sim, group):
    return sim.run_process(group.wait_for_leader())


class TestElection:
    def test_single_node_elects_itself(self):
        sim, group = build_group(voters=1)
        leader = elect(sim, group)
        assert leader.is_leader
        assert leader.current_term == 1

    def test_three_nodes_elect_exactly_one_leader(self):
        sim, group = build_group(voters=3)
        elect(sim, group)
        sim.run(until=sim.now + 300_000)
        leaders = [n for n in group.nodes.values() if n.role is Role.LEADER]
        assert len(leaders) == 1

    def test_leader_is_stable_under_heartbeats(self):
        sim, group = build_group(voters=3)
        leader = elect(sim, group)
        term = leader.current_term
        sim.run(until=sim.now + 1_000_000)
        assert group.current_leader() is leader
        assert leader.current_term == term

    def test_reelection_after_leader_crash(self):
        sim, group = build_group(voters=3)
        old = elect(sim, group)
        group.crash_node(old.id)
        new = sim.run_process(group.wait_for_leader())
        assert new.id != old.id
        assert new.current_term > old.current_term

    def test_learners_never_become_leader(self):
        sim, group = build_group(voters=3, learners=2)
        elect(sim, group)
        sim.run(until=sim.now + 500_000)
        for lid in group.learner_ids():
            assert group.nodes[lid].role is Role.LEARNER

    def test_quorum_math(self):
        _, g1 = build_group(voters=1)
        _, g3 = build_group(voters=3)
        _, g5 = build_group(voters=5)
        assert g1.quorum() == 1
        assert g3.quorum() == 2
        assert g5.quorum() == 3


class TestReplication:
    def test_propose_applies_on_leader(self):
        sim, group = build_group(voters=3)

        def body():
            leader = yield from group.wait_for_leader()
            result = yield leader.propose("cmd-1")
            return leader, result

        leader, result = sim.run_process(body())
        assert result == ("applied", "cmd-1")
        assert leader.state_machine.commands == ["cmd-1"]

    def test_entries_reach_all_replicas_including_learners(self):
        sim, group = build_group(voters=3, learners=1)

        def body():
            leader = yield from group.wait_for_leader()
            for i in range(5):
                yield leader.propose(f"cmd-{i}")

        sim.run_process(body())
        sim.run(until=sim.now + 100_000)  # let heartbeats carry commitIndex
        for node in group.nodes.values():
            assert node.state_machine.commands == [f"cmd-{i}" for i in range(5)]

    def test_apply_order_is_identical_everywhere(self):
        sim, group = build_group(voters=3)

        def proposer(tag):
            leader = yield from group.wait_for_leader()
            for i in range(10):
                yield leader.propose(f"{tag}-{i}")

        def body():
            yield from group.wait_for_leader()
            done = [sim.process(proposer(t)) for t in ("a", "b")]
            yield sim.all_of(done)

        sim.run_process(body())
        sim.run(until=sim.now + 100_000)
        sequences = [tuple(n.state_machine.commands) for n in group.nodes.values()]
        assert len(set(sequences)) == 1
        assert len(sequences[0]) == 20

    def test_propose_on_follower_raises_not_leader(self):
        sim, group = build_group(voters=3)
        leader = elect(sim, group)
        follower = next(n for n in group.nodes.values() if n is not leader)
        with pytest.raises(NotLeaderError):
            follower.propose("nope")

    def test_backlog_ships_in_chunks(self):
        sim, group = build_group(voters=3)

        def body():
            leader = yield from group.wait_for_leader()
            waiters = [leader.propose(f"c{i}") for i in range(200)]
            yield sim.all_of(waiters)
            return leader

        leader = sim.run_process(body())
        sim.run(until=sim.now + 200_000)
        assert leader.log.last_index == 200
        for node in group.nodes.values():
            assert node.last_applied == 200


class TestBatching:
    def _run_burst(self, batching):
        sim, group = build_group(voters=1, batching=batching)

        def body():
            leader = yield from group.wait_for_leader()
            base = leader.host.fsync_count
            waiters = [leader.propose(f"c{i}") for i in range(32)]
            yield sim.all_of(waiters)
            return leader.host.fsync_count - base, leader.batches_flushed

        return sim.run_process(body())

    def test_batching_amortizes_fsyncs(self):
        fsyncs_batched, batches = self._run_burst(batching=True)
        fsyncs_unbatched, _ = self._run_burst(batching=False)
        assert fsyncs_batched < fsyncs_unbatched
        assert fsyncs_batched <= batches + 1

    def test_unbatched_pays_per_proposal(self):
        fsyncs, _ = self._run_burst(batching=False)
        # Proposals arrive at the same instant; each flush pass takes
        # whatever is pending, so we only require at least a few syncs and
        # correctness of results (checked by the waiters resolving).
        assert fsyncs >= 1


class TestFollowerRead:
    def test_read_barrier_waits_for_apply(self):
        sim, group = build_group(voters=3)

        def body():
            leader = yield from group.wait_for_leader()
            yield leader.propose("x")
            follower = next(n for n in group.nodes.values()
                            if n.role is Role.FOLLOWER)
            barrier = yield from follower.read_barrier()
            return follower, barrier

        follower, barrier = sim.run_process(body())
        assert barrier >= 1
        assert follower.last_applied >= barrier
        assert follower.state_machine.commands == ["x"]

    def test_leader_read_barrier_is_immediate(self):
        sim, group = build_group(voters=3)

        def body():
            leader = yield from group.wait_for_leader()
            yield leader.propose("x")
            before = sim.now
            barrier = yield from leader.read_barrier()
            return barrier, sim.now - before

        barrier, elapsed = sim.run_process(body())
        assert barrier >= 1
        assert elapsed == 0.0

    def test_concurrent_barriers_share_one_query(self):
        sim, group = build_group(voters=3)

        def body():
            leader = yield from group.wait_for_leader()
            yield leader.propose("x")
            follower = next(n for n in group.nodes.values()
                            if n.role is Role.FOLLOWER)
            before = group.network.message_count

            def reader():
                result = yield from follower.read_barrier()
                return result

            readers = [sim.process(reader()) for _ in range(8)]
            yield sim.all_of(readers)
            # 8 concurrent readers, one piggybacked commitIndex RTT
            # (2 transits), modulo raft background chatter in the window.
            return group.network.message_count - before

        extra = sim.run_process(body())
        assert extra <= 8  # far fewer than 16 transits for 8 separate RTTs

    def test_learner_read_barrier(self):
        sim, group = build_group(voters=3, learners=1)

        def body():
            leader = yield from group.wait_for_leader()
            yield leader.propose("x")
            learner = group.nodes[group.learner_ids()[0]]
            yield from learner.read_barrier()
            return learner

        learner = sim.run_process(body())
        assert learner.state_machine.commands == ["x"]

    def test_read_barrier_without_leader_raises(self):
        sim, group = build_group(voters=3)
        leader = elect(sim, group)
        for node_id in list(group.nodes):
            group.crash_node(node_id)

        follower = group.nodes[(leader.id + 1) % 3]

        def body():
            yield from follower.read_barrier()

        with pytest.raises(ServiceUnavailableError):
            sim.run_process(body())


class TestFaultTolerance:
    def test_committed_entries_survive_leader_crash(self):
        sim, group = build_group(voters=3)

        def phase1():
            leader = yield from group.wait_for_leader()
            for i in range(3):
                yield leader.propose(f"pre-{i}")
            return leader

        old = sim.run_process(phase1())
        group.crash_node(old.id)

        def phase2():
            leader = yield from group.wait_for_leader()
            yield leader.propose("post")
            return leader

        new = sim.run_process(phase2())
        assert new.state_machine.commands == ["pre-0", "pre-1", "pre-2", "post"]

    def test_pending_proposals_fail_on_step_down(self):
        sim, group = build_group(voters=3)
        leader = elect(sim, group)
        waiter = leader.propose("doomed")
        leader._step_down(leader.current_term + 10)
        assert waiter.triggered
        assert isinstance(waiter.value, NotLeaderError)

    def test_stopped_node_rejects_proposals(self):
        sim, group = build_group(voters=1)
        leader = elect(sim, group)
        leader.stop()
        with pytest.raises(NotLeaderError):
            leader.propose("x")
