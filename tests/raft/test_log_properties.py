"""Property-based tests for RaftLog against a naive reference model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raft.log import LogEntry, RaftLog


class ReferenceLog:
    """Plain-list model of the Raft log semantics."""

    def __init__(self):
        self.entries = []  # list of (term, command); index = position+1

    def append(self, term, command):
        self.entries.append((term, command))

    def term_at(self, index):
        if index == 0:
            return 0
        if 1 <= index <= len(self.entries):
            return self.entries[index - 1][0]
        return None

    def merge(self, prev_index, new):
        for offset, (term, command) in enumerate(new):
            index = prev_index + 1 + offset
            existing = self.term_at(index)
            if existing is None:
                self.entries.append((term, command))
            elif existing != term:
                del self.entries[index - 1:]
                self.entries.append((term, command))


_entry = st.tuples(st.integers(1, 4), st.integers(0, 99))


@settings(max_examples=150, deadline=None)
@given(st.lists(_entry, max_size=15),
       st.lists(st.tuples(st.integers(0, 12), st.lists(_entry, max_size=6)),
                max_size=6))
def test_merge_matches_reference(initial, merges):
    """Arbitrary merge sequences leave RaftLog identical to the model
    (monotone-term inputs, as Raft guarantees for shipped entries)."""
    log = RaftLog()
    ref = ReferenceLog()
    term_floor = 1
    for term, command in initial:
        term = max(term, term_floor)
        term_floor = term
        log.append(term, command)
        ref.append(term, command)
    for prev_index, batch in merges:
        prev_index = min(prev_index, log.last_index)
        entries = []
        base_term = ref.term_at(prev_index)
        if base_term is None:
            continue
        term_floor = max(base_term, 1)
        for offset, (term, command) in enumerate(batch):
            term = max(term, term_floor)
            term_floor = term
            entries.append(LogEntry(term, prev_index + 1 + offset, command))
        log.merge(prev_index, entries)
        ref.merge(prev_index, [(e.term, e.command) for e in entries])
    assert log.last_index == len(ref.entries)
    for index in range(1, log.last_index + 1):
        assert log.term_at(index) == ref.term_at(index)
        assert log.entry(index).command == ref.entries[index - 1][1]


@settings(max_examples=150, deadline=None)
@given(st.lists(_entry, min_size=1, max_size=20), st.data())
def test_compaction_preserves_suffix(entries, data):
    log = RaftLog()
    term_floor = 1
    for term, command in entries:
        term = max(term, term_floor)
        term_floor = term
        log.append(term, command)
    cut = data.draw(st.integers(0, log.last_index))
    before = [(log.term_at(i), log.entry(i).command)
              for i in range(cut + 1, log.last_index + 1)]
    cut_term = log.term_at(cut)
    log.compact_to(cut, cut_term)
    after = [(log.term_at(i), log.entry(i).command)
             for i in range(cut + 1, log.last_index + 1)]
    assert before == after
    assert log.base_index == max(cut, 0)
    assert log.term_at(cut) == cut_term
