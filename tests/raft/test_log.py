"""Unit tests for the replicated log."""

import pytest

from repro.raft.log import LogEntry, RaftLog


def test_empty_log_sentinel():
    log = RaftLog()
    assert log.last_index == 0
    assert log.last_term == 0
    assert log.term_at(0) == 0
    assert log.term_at(1) is None
    assert log.matches(0, 0)


def test_append_assigns_indexes():
    log = RaftLog()
    e1 = log.append(1, "a")
    e2 = log.append(1, "b")
    assert (e1.index, e2.index) == (1, 2)
    assert log.last_index == 2
    assert log.entry(1).command == "a"


def test_entry_out_of_range():
    log = RaftLog()
    with pytest.raises(IndexError):
        log.entry(1)


def test_entries_from_with_limit():
    log = RaftLog()
    for i in range(10):
        log.append(1, i)
    chunk = log.entries_from(4, limit=3)
    assert [e.command for e in chunk] == [3, 4, 5]
    assert log.entries_from(11) == []
    assert [e.command for e in log.entries_from(0, limit=2)] == [0, 1]


def test_matches_consistency_check():
    log = RaftLog()
    log.append(1, "a")
    log.append(2, "b")
    assert log.matches(2, 2)
    assert not log.matches(2, 1)
    assert not log.matches(5, 1)


def test_merge_appends_new_entries():
    log = RaftLog()
    log.append(1, "a")
    added = log.merge(1, [LogEntry(1, 2, "b"), LogEntry(1, 3, "c")])
    assert added == 2
    assert log.last_index == 3


def test_merge_is_idempotent():
    log = RaftLog()
    log.append(1, "a")
    log.append(1, "b")
    added = log.merge(0, [LogEntry(1, 1, "a"), LogEntry(1, 2, "b")])
    assert added == 0
    assert log.last_index == 2


def test_merge_truncates_conflicting_suffix():
    log = RaftLog()
    log.append(1, "a")
    log.append(1, "stale")
    log.append(1, "stale2")
    added = log.merge(1, [LogEntry(2, 2, "fresh")])
    assert added == 1
    assert log.last_index == 2
    assert log.entry(2).command == "fresh"
    assert log.entry(2).term == 2


def test_up_to_date_election_restriction():
    log = RaftLog()
    log.append(2, "a")
    assert log.up_to_date(1, 3)       # higher term wins
    assert log.up_to_date(1, 2)       # same term, same length
    assert log.up_to_date(5, 2)       # same term, longer log
    assert not log.up_to_date(0, 2)   # same term, shorter log
    assert not log.up_to_date(9, 1)   # lower term loses regardless of length
