"""Quorum-boundary tests: 5-voter groups under progressive failures."""

import pytest

from repro.errors import ServiceUnavailableError
from repro.raft.node import Role
from tests.raft.test_raft import ListMachine, build_group


def _crash_followers(sim, group, count):
    crashed = 0
    for node in list(group.nodes.values()):
        if crashed == count:
            break
        if node.role is Role.FOLLOWER:
            group.crash_node(node.id)
            crashed += 1
    assert crashed == count


class TestFiveVoters:
    def test_two_failures_tolerated(self):
        sim, group = build_group(voters=5)
        leader = sim.run_process(group.wait_for_leader())
        _crash_followers(sim, group, 2)

        def body():
            results = []
            for i in range(4):
                results.append((yield leader.propose(f"c{i}")))
            return results

        assert len(sim.run_process(body())) == 4

    def test_three_failures_stall_commits(self):
        sim, group = build_group(voters=5)
        leader = sim.run_process(group.wait_for_leader())
        _crash_followers(sim, group, 3)
        waiter = leader.propose("doomed")
        sim.run(until=sim.now + 500_000)
        # Quorum is 3 of 5; with only 2 alive the entry cannot commit.
        assert not waiter.triggered or not waiter.ok
        waiter.defused()

    def test_no_split_brain_across_terms(self):
        """After repeated leader crashes there is never more than one
        leader per term."""
        sim, group = build_group(voters=5)
        seen = {}
        for _round in range(3):
            leader = sim.run_process(group.wait_for_leader())
            assert seen.setdefault(leader.current_term, leader.id) == leader.id
            group.crash_node(leader.id)
        alive_voters = [n for n in group.nodes.values() if not n._stopped]
        assert len(alive_voters) == 2  # quorum lost; no further leader
        sim.run(until=sim.now + 500_000)
        assert group.current_leader() is None


class TestLeaderlessBehaviour:
    def test_wait_for_leader_times_out(self):
        sim, group = build_group(voters=3)
        sim.run_process(group.wait_for_leader())
        for node_id in list(group.nodes):
            group.crash_node(node_id)

        def body():
            yield from group.wait_for_leader(timeout_us=200_000)

        with pytest.raises(ServiceUnavailableError):
            sim.run_process(body())

    def test_leader_or_raise_when_none(self):
        sim, group = build_group(voters=3)
        with pytest.raises(ServiceUnavailableError):
            group.leader_or_raise()  # before any election completes


class TestGroupValidation:
    def test_host_count_must_match(self):
        from repro.raft.group import RaftGroup
        from repro.sim.core import Simulator
        from repro.sim.host import Host
        from repro.sim.network import Network
        sim = Simulator()
        net = Network(sim)
        hosts = [Host(sim, "only-one")]
        with pytest.raises(ValueError):
            RaftGroup(sim, net, hosts, ListMachine, num_voters=3)
        with pytest.raises(ValueError):
            RaftGroup(sim, net, [], ListMachine, num_voters=0)
