"""Smoke test for traced Raft elections.

A leader crash under an enabled tracer must leave a well-formed
``raft.election`` span trail: one span per candidacy, annotated with term
and outcome, the winning candidacy marked ok with its vote fsync charged,
and the whole trace digestible by the critical-path extractor.
"""

from repro.raft.group import RaftGroup
from repro.raft.node import RaftConfig
from repro.sim.core import Simulator
from repro.sim.critpath import build_critpath
from repro.sim.host import CostModel, Host
from repro.sim.network import Network
from repro.sim.trace import Tracer


class _NullMachine:
    def __init__(self, node_id):
        self.node_id = node_id

    def apply(self, command):
        return None


def _build_traced_group(voters=3, seed=1):
    sim = Simulator(tracer=Tracer())
    net = Network(sim, one_way_us=50)
    hosts = [Host(sim, f"idx-{i}", cores=4, fsync_us=120)
             for i in range(voters)]
    group = RaftGroup(sim, net, hosts, _NullMachine, voters, 0,
                      config=RaftConfig(), costs=CostModel(), seed=seed)
    return sim, group


def _election_spans(tracer):
    return [s for s in tracer.spans if s.name == "raft.election"]


class TestTracedElection:
    def test_leader_crash_leaves_well_formed_election_spans(self):
        sim, group = _build_traced_group()
        first = sim.run_process(group.wait_for_leader())
        group.crash_node(first.id)
        second = sim.run_process(group.wait_for_leader())
        assert second.id != first.id
        group.stop()

        spans = _election_spans(sim.tracer)
        # At least the initial election and the post-crash one.
        assert len(spans) >= 2
        for span in spans:
            assert span.category == "raft"
            assert span.end_us is not None and span.end_us >= span.start_us
            assert span.host is not None
            attrs = span.attrs or {}
            assert attrs.get("term", 0) >= 1
            assert attrs.get("outcome") in (
                "won", "lost", "superseded", "stopped")
            assert span.ok == (attrs.get("outcome") == "won")

        won = [s for s in spans if (s.attrs or {}).get("outcome") == "won"]
        assert won, "no winning candidacy traced"
        # The new leader's winning candidacy happened after the crash and
        # carries a strictly higher term than the first election's.
        terms = [(s.attrs or {})["term"] for s in won]
        assert max(terms) >= 2

    def test_winning_candidacy_charges_vote_fsync(self):
        sim, group = _build_traced_group(voters=1)
        leader = sim.run_process(group.wait_for_leader())
        group.stop()
        won = [s for s in _election_spans(sim.tracer)
               if (s.attrs or {}).get("outcome") == "won"
               and (s.attrs or {}).get("node") == leader.id]
        assert won
        span = won[0]
        # The durable vote write nests under the candidacy: its cost is
        # charged to the open election span, keyed (kind, host).
        fsync_us = sum(us for (kind, _host), us in (span.costs or {}).items()
                       if kind == "fsync")
        assert fsync_us > 0.0
        # The unavailability window is real simulated time.
        assert span.duration_us > 0.0

    def test_election_trace_feeds_critpath_extractor(self):
        sim, group = _build_traced_group()
        first = sim.run_process(group.wait_for_leader())
        group.crash_node(first.id)
        sim.run_process(group.wait_for_leader())
        group.stop()
        # Elections are raft-category roots, not ops; the extractor must
        # digest the trace without choking on them (zero ops is fine).
        crit = build_critpath(sim.tracer.spans, name="election-smoke")
        assert crit.op_failures == 0
        assert crit.conservation_error() < 1e-6
