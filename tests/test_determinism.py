"""Whole-run determinism: identical configurations give identical results.

The DES kernel breaks timestamp ties FIFO and every random source is
seeded, so two fresh runs of the same benchmark must produce *bit-identical*
metrics — the property that makes experiment results reviewable.
"""

from repro.bench.cluster import SYSTEMS, build_system
from repro.bench.harness import run_workload
from repro.workloads.mdtest import MdtestWorkload
from repro.workloads.mixed import MixedWorkload
from repro.workloads.namespace import build_namespace
from repro.workloads.spark import SparkAnalyticsWorkload


def _fingerprint(metrics):
    return (
        metrics.ops_completed,
        metrics.ops_failed,
        metrics.retries,
        round(metrics.duration_us, 6),
        {op: (rec.count, round(rec.mean, 6), round(rec.max, 6))
         for op, rec in sorted(metrics.latency.items())},
    )


def _run_once(name, workload_factory):
    system = build_system(name, "quick")
    try:
        return _fingerprint(run_workload(system, workload_factory()))
    finally:
        system.shutdown()


class TestDeterminism:
    def test_mdtest_identical_across_runs_all_systems(self):
        for name in SYSTEMS:
            factory = lambda: MdtestWorkload("objstat", depth=8, items=5,
                                             num_clients=8)
            assert _run_once(name, factory) == _run_once(name, factory), name

    def test_contended_workload_identical_across_runs(self):
        factory = lambda: SparkAnalyticsWorkload(num_clients=8,
                                                 parts_per_task=1, rounds=2)
        assert _run_once("mantle", factory) == _run_once("mantle", factory)

    def test_mixed_workload_identical_across_runs(self):
        spec = build_namespace(num_dirs=40, objects_per_dir=4, seed=3,
                               root="/det")

        def factory():
            return MixedWorkload(spec, num_clients=6, ops_per_client=20,
                                 seed=9)

        assert _run_once("mantle", factory) == _run_once("mantle", factory)

    def test_different_seed_changes_mixed_workload(self):
        spec = build_namespace(num_dirs=40, objects_per_dir=4, seed=3,
                               root="/det")

        def factory(seed):
            return lambda: MixedWorkload(spec, num_clients=6,
                                         ops_per_client=20, seed=seed)

        assert _run_once("mantle", factory(1)) != _run_once("mantle",
                                                            factory(2))
