"""Unit tests for the runtime seam itself.

Covers the three pieces domain code now depends on instead of the
simulator: runtime resolution (``default_runtime`` / ``Simulator.runtime``),
the ``SimRuntime`` thin adapter, and the ``AsyncioRuntime`` trampoline that
drives plain generators on a real event loop.
"""

import asyncio

import pytest

from repro.errors import NoSuchPathError
from repro.runtime.aio import AsyncioRuntime
from repro.runtime.base import Runtime, SimRuntime, default_runtime
from repro.sim.core import Simulator


class TestRuntimeResolution:
    def test_simulator_runtime_is_cached_sim_runtime(self):
        sim = Simulator()
        runtime = sim.runtime
        assert isinstance(runtime, SimRuntime)
        assert sim.runtime is runtime  # cached, not rebuilt per access

    def test_default_runtime_prefers_sim_attribute(self):
        sim = Simulator()
        assert default_runtime(sim, None) is sim.runtime

    def test_default_runtime_upgrades_network(self):
        # A SimRuntime without a network must gain one when the caller
        # supplies it (the TafDB client path), without mutating sim.runtime.
        sim = Simulator()
        network = object()
        runtime = default_runtime(sim, network)
        assert isinstance(runtime, SimRuntime)
        assert runtime.network is network

    def test_sim_runtime_now_tracks_sim_clock(self):
        sim = Simulator()
        runtime = sim.runtime

        def advance():
            yield sim.timeout(250.0)

        sim.run_process(advance())
        assert runtime.now == sim.now == pytest.approx(250.0)

    def test_runtime_protocol_members(self):
        for method in ("sleep", "work", "fsync", "rpc", "gather", "propose"):
            assert hasattr(Runtime, method)


def drive(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


class TestAsyncioTrampoline:
    def test_return_value_propagates(self):
        runtime = AsyncioRuntime()

        def domain():
            yield from runtime.sleep(1)
            return 42

        assert drive(runtime.drive(domain())) == 42

    def test_plain_return_without_effects(self):
        runtime = AsyncioRuntime()

        def domain():
            return "done"
            yield  # pragma: no cover

        assert drive(runtime.drive(domain())) == "done"

    def test_work_is_free_live(self):
        runtime = AsyncioRuntime()

        def domain():
            yield from runtime.work(None, 10_000_000)  # 10 sim-seconds
            return "instant"

        before = runtime.now
        assert drive(runtime.drive(domain())) == "instant"
        assert runtime.now - before < 1_000_000  # nowhere near 10s

    def test_nested_yield_from_layers(self):
        runtime = AsyncioRuntime()

        def inner():
            yield from runtime.sleep(1)
            return 10

        def outer():
            value = yield from inner()
            return value + 1

        assert drive(runtime.drive(outer())) == 11

    def test_gather_collects_in_order(self):
        runtime = AsyncioRuntime()

        def leg(n):
            yield from runtime.sleep((5 - n))  # later legs finish earlier
            return n

        def domain():
            results = yield from runtime.gather([leg(n) for n in range(4)])
            return results

        assert drive(runtime.drive(domain())) == [0, 1, 2, 3]

    def test_exceptions_delivered_into_generator(self):
        runtime = AsyncioRuntime()

        class Boom:
            async def call(self, method, args, kwargs, timeout_s):
                raise NoSuchPathError("/x")

        def domain():
            try:
                yield from runtime.rpc(Boom(), "read", "/x")
            except NoSuchPathError:
                return "caught"
            return "missed"

        assert drive(runtime.drive(domain())) == "caught"

    def test_uncaught_exception_propagates_out(self):
        runtime = AsyncioRuntime()

        class Boom:
            async def call(self, method, args, kwargs, timeout_s):
                raise NoSuchPathError("/x")

        def domain():
            yield from runtime.rpc(Boom(), "read", "/x")

        with pytest.raises(NoSuchPathError):
            drive(runtime.drive(domain()))

    def test_rpc_counts_against_context(self):
        runtime = AsyncioRuntime()

        class Echo:
            async def call(self, method, args, kwargs, timeout_s):
                return args[0]

        class Ctx:
            rpcs = 0

        ctx = Ctx()

        def domain():
            value = yield from runtime.rpc(Echo(), "echo", "hi", ctx=ctx)
            return value

        assert drive(runtime.drive(domain())) == "hi"
        assert ctx.rpcs == 1

    def test_foreign_yield_is_a_seam_leak(self):
        runtime = AsyncioRuntime()

        def domain():
            yield object()  # a raw simulator event leaking through

        with pytest.raises(RuntimeError, match="seam"):
            drive(runtime.drive(domain()))

    def test_now_is_monotonic_microseconds(self):
        runtime = AsyncioRuntime()
        first = runtime.now
        second = runtime.now
        assert second >= first >= 0.0
