"""End-to-end tests against a live asyncio cluster.

``InProcessCluster`` runs the three roles — TafDB, IndexNode, proxy — as
real TCP servers on an event loop in a background thread; ``LiveClient``
talks to the proxy over the wire protocol from ordinary synchronous test
code.  ``TestProcessCluster`` (marked slow) does the same through actual
OS processes spawned via ``mantle-serve``.
"""

import pytest

from repro.errors import (
    AlreadyExistsError,
    ConnectionLostError,
    NoSuchPathError,
    ServiceUnavailableError,
)
from repro.ops import Create, Mkdir, ObjStat, ReadDir
from repro.runtime.client import LiveClient
from repro.runtime.live import InProcessCluster, ProcessCluster
from repro.types import EntryKind, OpResult, Permission, StatResult


@pytest.fixture(scope="module")
def cluster():
    with InProcessCluster() as cluster:
        yield cluster


@pytest.fixture()
def client(cluster):
    with LiveClient(cluster.proxy_endpoint) as client:
        yield client


@pytest.fixture(scope="module")
def ns(cluster):
    """A module-scoped namespace prefix so tests don't collide."""
    counter = {"n": 0}

    def fresh():
        counter["n"] += 1
        return f"/t{counter['n']}"

    return fresh


class TestLiveOps:
    def test_ping(self, client):
        payload = client.ping()
        assert payload["pong"] is True
        assert payload["now_us"] >= 0

    def test_mkdir_create_stat(self, client, ns):
        root = ns()
        made = client.mkdir(root)
        assert isinstance(made, OpResult)
        assert made.inode_id > 1
        created = client.create(f"{root}/obj")
        assert created.inode_id == made.inode_id + 1
        stat = client.objstat(f"{root}/obj")
        assert isinstance(stat, StatResult)
        assert stat.kind is EntryKind.OBJECT
        assert stat.id == created.inode_id

    def test_mkdir_parents(self, client, ns):
        root = ns()
        client.mkdir(f"{root}/a/b/c", parents=True)
        assert client.listdir(f"{root}/a") == ["b"]
        assert client.dirstat(f"{root}/a/b/c").kind is EntryKind.DIRECTORY

    def test_rpc_accounting_travels_back(self, client, ns):
        root = ns()
        result = client.mkdir(root)
        # mkdir live = index propose + TafDB txn (+ read barrier legs):
        # the proxy's per-op RPC count must reach the client, nonzero.
        assert result.rpcs > 0
        assert result.latency_us > 0

    def test_errors_cross_the_wire_typed(self, client, ns):
        root = ns()
        client.mkdir(root)
        with pytest.raises(AlreadyExistsError):
            client.mkdir(root)
        with pytest.raises(NoSuchPathError):
            client.objstat(f"{root}/missing")
        with pytest.raises(NoSuchPathError):
            client.mkdir("/no-such-parent/child")

    def test_rename_and_delete(self, client, ns):
        root = ns()
        client.mkdir(root)
        client.mkdir(f"{root}/src")
        moved = client.rename(f"{root}/src", f"{root}/dst")
        assert isinstance(moved, OpResult)
        assert client.listdir(root) == ["dst"]
        client.create(f"{root}/dst/obj")
        client.delete(f"{root}/dst/obj")
        assert client.listdir(f"{root}/dst") == []

    def test_setattr_permission(self, client, ns):
        root = ns()
        client.mkdir(root)
        stat = client.setattr(root, Permission.READ | Permission.EXECUTE)
        assert stat.permission == Permission.READ | Permission.EXECUTE
        assert client.dirstat(root).permission == \
            Permission.READ | Permission.EXECUTE

    def test_exists(self, client, ns):
        root = ns()
        assert not client.exists(root)
        client.mkdir(root)
        assert client.exists(root)
        client.create(f"{root}/o")
        assert client.exists(f"{root}/o")

    def test_batch_mixes_success_and_failure(self, client, ns):
        root = ns()
        client.mkdir(root)
        items = client.batch([
            Mkdir(f"{root}/d1"),
            Create(f"{root}/o1"),
            ObjStat(f"{root}/absent"),
        ])
        assert items[0].ok and isinstance(items[0].result, OpResult)
        assert items[1].ok and isinstance(items[1].result, OpResult)
        assert not items[2].ok
        assert isinstance(items[2].error, NoSuchPathError)

    def test_perform_typed_op(self, client, ns):
        root = ns()
        result = client.perform(Mkdir(root))
        assert isinstance(result, OpResult)
        assert client.perform(ReadDir(root)) == []

    def test_metrics_recorded(self, cluster, ns):
        root = ns()
        with LiveClient(cluster.proxy_endpoint) as client:
            client.mkdir(root)
            client.create(f"{root}/o")
            with pytest.raises(NoSuchPathError):
                client.objstat(f"{root}/absent")
            assert client.metrics.ops_completed == 2
            assert client.metrics.ops_failed == 1


class TestTransportFaults:
    def test_connection_refused_is_service_unavailable(self):
        # Port 1 is never listening; the fault must surface as the same
        # exception family domain retry loops already handle.
        with LiveClient("127.0.0.1:1") as client:
            with pytest.raises(ServiceUnavailableError):
                client.ping()
            with pytest.raises(ConnectionLostError):
                client.ping()

    def test_closed_client_rejects_calls(self, cluster):
        client = LiveClient(cluster.proxy_endpoint)
        client.ping()
        client.close()
        with pytest.raises(RuntimeError):
            client.ping()

    def test_client_survives_server_restartless_reconnect(self, cluster):
        # Two clients on one cluster: closing one must not disturb the
        # other's connection (per-connection state on the server).
        a = LiveClient(cluster.proxy_endpoint)
        b = LiveClient(cluster.proxy_endpoint)
        try:
            a.ping()
            b.ping()
            a.close()
            assert b.ping()["pong"] is True
        finally:
            b.close()


@pytest.mark.slow
class TestProcessCluster:
    def test_three_process_cluster(self, tmp_path):
        cluster = ProcessCluster(wal_dir=str(tmp_path))
        endpoint = cluster.start()
        try:
            with LiveClient(endpoint) as client:
                client.mkdir("/proc")
                client.create("/proc/obj")
                assert client.listdir("/proc") == ["obj"]
                with pytest.raises(NoSuchPathError):
                    client.objstat("/proc/none")
        finally:
            codes = cluster.stop()
        assert all(code == 0 for code in codes.values()), codes
