"""End-to-end observability tests against a live traced cluster.

One :class:`InProcessCluster` is started with tracing and telemetry on and
a traced :class:`LiveClient` drives a small workload; the tests then assert
the cross-process properties the tooling depends on: every op roots one
*connected* span tree across client, proxy, and backend; the merged
Chrome-trace export validates; wall-clock self-times telescope; and every
role serves a schema-valid metrics snapshot (over the wire and, for the
HTTP endpoint, over plain GET).
"""

import json
import urllib.request

import pytest

from repro.core.config import MantleConfig
from repro.runtime import obs
from repro.runtime.client import LiveClient
from repro.runtime.live import InProcessCluster
from repro.sim.trace import Tracer, validate_chrome_trace


@pytest.fixture(scope="module")
def traced_world():
    """Cluster + client snapshots after a fixed traced workload."""
    config = MantleConfig.small().copy(tracing=True, telemetry=True)
    with InProcessCluster(config=config, metrics=True) as cluster:
        client = LiveClient(cluster.proxy_endpoint, tracer=Tracer())
        with client:
            client.mkdir("/obs")
            for i in range(6):
                client.create(f"/obs/o{i}")
                client.objstat(f"/obs/o{i}")
            client.listdir("/obs")
            client.dirstat("/obs")
        snapshots = cluster.trace_snapshots()
        snapshots.append(client.trace_snapshot())
        metrics = cluster.metrics_snapshots()
        http_payloads = []
        for port in sorted(cluster.metrics_ports.values()):
            with urllib.request.urlopen(f"http://127.0.0.1:{port}/",
                                        timeout=10) as response:
                http_payloads.append(
                    json.loads(response.read().decode("utf-8")))
        yield {"snapshots": snapshots, "metrics": metrics,
               "http": http_payloads}


class TestCrossProcessTrace:
    def test_snapshots_cover_all_four_processes(self, traced_world):
        procs = {s["process"] for s in traced_world["snapshots"]}
        assert procs == {"client", "proxy", "indexnode", "tafdb"}
        for snap in traced_world["snapshots"]:
            assert obs.validate_trace_snapshot(snap) == []
            assert snap["clock"] == "wallclock"
            assert snap["dropped"] == 0

    def test_remote_parent_links_all_resolve(self, traced_world):
        assert obs.cross_process_problems(traced_world["snapshots"]) == []

    def test_every_op_tree_is_connected_across_processes(self, traced_world):
        stats = obs.op_tree_stats(traced_world["snapshots"])
        # 1 mkdir + 6 creates + 6 objstats + readdir + dirstat = 15 roots.
        assert stats["ops"] == 15
        for tree in stats["trees"]:
            # Client op -> proxy handler at minimum; every op here also
            # reaches a backend role through the proxy's onward RPCs.
            assert tree["spans"] >= 3
            assert "client" in tree["processes"]
            assert "proxy" in tree["processes"]
            assert len(tree["processes"]) >= 3, tree
        # Writes go through both backends (index propose + TafDB txn).
        mkdirs = [t for t in stats["trees"] if t["op"] == "mkdir"]
        assert mkdirs and all(
            set(t["processes"]) ==
            {"client", "proxy", "indexnode", "tafdb"} for t in mkdirs)

    def test_wallclock_self_times_telescope(self, traced_world):
        # 50us tolerance: wall-clock reads on a busy event loop, not sim.
        assert obs.dyn_self_time_problems(traced_world["snapshots"],
                                          tolerance_us=50.0) == []

    def test_merged_chrome_trace_validates(self, traced_world):
        merged = obs.merge_chrome_trace(traced_world["snapshots"])
        assert validate_chrome_trace(merged) == []
        names = {e.get("name") for e in merged["traceEvents"]}
        assert "process_name" in names  # one pid track per process
        pids = {e["pid"] for e in merged["traceEvents"]}
        assert len(pids) == 4

    def test_client_wire_charges_subtract_server_time(self, traced_world):
        client_snap = next(s for s in traced_world["snapshots"]
                           if s["process"] == "client")
        op_spans = [s for s in client_snap["spans"]
                    if s.get("cat") == "op"]
        assert op_spans
        for span in op_spans:
            costs = span.get("costs") or []
            wire_us = sum(us for kind, _host, us in costs
                          if kind == "wire")
            assert 0.0 <= wire_us <= (span["end_us"] - span["start_us"])

    def test_phase_breakdown_folds_live_ops(self, traced_world):
        phases = obs.phase_breakdown(traced_world["snapshots"])
        assert set(phases) == {"mkdir", "create", "objstat", "readdir",
                               "dirstat"}
        assert phases["objstat"].count == 6
        assert phases["objstat"].mean_phase_us("wire") > 0.0
        # Writes hit the WAL: real fsync time must surface as fsync phase.
        assert phases["create"].mean_phase_us("fsync") > 0.0


class TestMetricsSnapshots:
    def test_wire_metrics_snapshots_validate(self, traced_world):
        assert len(traced_world["metrics"]) == 3
        for payload in traced_world["metrics"]:
            assert obs.validate_metrics_snapshot(payload) == []
            assert payload["tracing"]["enabled"] is True
            assert payload["telemetry"]["enabled"] is True

    def test_http_endpoint_serves_same_schema(self, traced_world):
        assert len(traced_world["http"]) == 3
        for payload in traced_world["http"]:
            assert obs.validate_metrics_snapshot(payload) == []

    def test_rpc_and_fsync_counters_moved(self, traced_world):
        rows_by_proc = {p["process"]: p["telemetry"]["rows"]
                        for p in traced_world["metrics"]}
        proxy_metrics = {row["metric"] for row in rows_by_proc["proxy"]}
        assert "rpc.count" in proxy_metrics
        assert "rpc.latency_us" in proxy_metrics
        backend_metrics = {row["metric"] for row in rows_by_proc["tafdb"]}
        assert "host.fsync" in backend_metrics


class TestUntracedInterop:
    def test_untraced_client_against_traced_cluster(self):
        # Old-style frames (no trace context) must still be served, and
        # the server must treat them as untraced callers.
        config = MantleConfig.small().copy(tracing=True, telemetry=True)
        with InProcessCluster(config=config) as cluster:
            with LiveClient(cluster.proxy_endpoint) as client:
                client.mkdir("/plain")
                client.create("/plain/o")
                assert client.listdir("/plain") == ["o"]
            snapshots = cluster.trace_snapshots()
        # Server-side spans exist (role tracers are on, and proxy->backend
        # RPCs still propagate *proxy* context) but none may reference the
        # client, which sent old-style frames.
        assert obs.cross_process_problems(snapshots) == []
        for snap in snapshots:
            for span in snap["spans"]:
                attrs = span.get("attrs") or {}
                assert attrs.get("remote_parent_proc") != "client"

    def test_untraced_cluster_defaults_to_null_instruments(self):
        with InProcessCluster() as cluster:
            with LiveClient(cluster.proxy_endpoint) as client:
                client.mkdir("/off")
            for runtime in cluster.runtimes.values():
                assert not runtime.tracer.enabled
                assert not runtime.telemetry.enabled
            snapshots = cluster.trace_snapshots()
        for snap in snapshots:
            assert snap["enabled"] is False
            assert snap["spans"] == []
