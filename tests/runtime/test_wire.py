"""Wire-protocol tests: golden-pinned bytes plus codec round trips.

The golden file (``golden_ops_wire.json``) pins the exact wire encoding of
every registered op, the OpResult envelope, one full request frame, and the
error encodings.  A diff against it is a protocol break between client and
server versions — regenerate it only as a deliberate, documented protocol
change.
"""

import json
import pathlib

import pytest

from repro import ops as O
from repro.errors import (
    AlreadyExistsError,
    ConnectionLostError,
    FrameError,
    MetadataError,
    NoSuchPathError,
    PermissionDeniedError,
    RPCTimeoutError,
    ServiceUnavailableError,
    TransactionAbort,
    TransportError,
    error_from_wire,
    error_to_wire,
)
from repro.ops import OP_TYPES, Op, make_op
from repro.runtime import wire
from repro.tafdb.rows import AttrDelta, AttrMeta, Dirent, Row, RowKey
from repro.tafdb.shard import WriteIntent
from repro.types import EntryKind, OpResult, Permission, StatResult

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_ops_wire.json"

#: One representative instance per registered op — keep in sync with the
#: generator that produced the golden file.
SAMPLE_OPS = [
    O.Create("/bucket/logs/part-0001"),
    O.Delete("/bucket/logs/part-0001"),
    O.ObjStat("/bucket/logs/part-0001"),
    O.DirStat("/bucket/logs"),
    O.ReadDir("/bucket/logs"),
    O.Mkdir("/bucket/logs"),
    O.Rmdir("/bucket/logs"),
    O.Rename("/bucket/logs", "/bucket/archive"),
    O.SetAttr("/bucket/logs", Permission.READ | Permission.EXECUTE),
]


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


class TestGoldenPin:
    def test_every_registered_op_has_a_golden_sample(self):
        assert {type(op).__name__ for op in SAMPLE_OPS} == {
            cls.__name__ for cls in OP_TYPES.values()}

    def test_op_wire_dicts_match_golden(self, golden):
        by_type = {entry["type"]: entry for entry in golden["ops"]}
        for op in SAMPLE_OPS:
            assert op.to_wire() == by_type[type(op).__name__]["wire"]

    def test_op_frame_bytes_match_golden(self, golden):
        by_type = {entry["type"]: entry for entry in golden["ops"]}
        for op in SAMPLE_OPS:
            frame = wire.pack_frame(op.to_wire())
            assert frame.hex() == by_type[type(op).__name__]["frame_hex"]

    def test_op_result_wire_matches_golden(self, golden):
        result = OpResult(42, rpcs=3, retries=1, latency_us=1234.5)
        assert result.to_wire() == golden["op_result"]["wire"]
        frame = wire.pack_frame(wire.to_jsonable(result))
        assert frame.hex() == golden["op_result"]["frame_hex"]

    def test_request_frame_matches_golden(self, golden):
        frame = wire.encode_request(
            7, "perform", (O.Mkdir("/bucket/logs").to_wire(),), {})
        assert frame.hex() == golden["request_frame_hex"]

    def test_traced_request_frame_matches_golden(self, golden):
        frame = wire.encode_request(
            7, "perform", (O.Mkdir("/bucket/logs").to_wire(),), {},
            trace={"proc": "client", "span": 12})
        assert frame.hex() == golden["traced_request_frame_hex"]

    def test_response_frames_match_golden(self, golden):
        plain = wire.encode_response(7, result={"inode": 9})
        assert plain.hex() == golden["response_frame_hex"]
        timed = wire.encode_response(7, result={"inode": 9}, srv_us=321.5)
        assert timed.hex() == golden["timed_response_frame_hex"]

    def test_error_wire_matches_golden(self, golden):
        samples = {
            "NoSuchPathError": NoSuchPathError("/a/b", "b"),
            "TransactionAbort": TransactionAbort("exists", RowKey(5, "x")),
            "PermissionDeniedError":
                PermissionDeniedError("/a", Permission.WRITE),
            "RPCTimeoutError": RPCTimeoutError("127.0.0.1:7400", 30.0),
        }
        by_type = {entry["type"]: entry for entry in golden["errors"]}
        for name, exc in samples.items():
            assert error_to_wire(exc) == by_type[name]["wire"]


class TestOpWireRoundTrip:
    @pytest.mark.parametrize("op", SAMPLE_OPS,
                             ids=[type(op).__name__ for op in SAMPLE_OPS])
    def test_round_trip(self, op):
        restored = Op.from_wire(op.to_wire())
        assert restored == op
        assert type(restored) is type(op)

    def test_setattr_permission_restored_as_flag(self):
        restored = Op.from_wire(O.SetAttr("/p", Permission.READ).to_wire())
        assert isinstance(restored.permission, Permission)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Op.from_wire({"op": "chmodplus", "args": {}})

    def test_wire_dict_survives_json(self):
        for op in SAMPLE_OPS:
            assert Op.from_wire(json.loads(json.dumps(op.to_wire()))) == op


class TestValueCodec:
    def round_trip(self, value):
        return wire.from_jsonable(
            json.loads(json.dumps(wire.to_jsonable(value))))

    def test_scalars_and_containers(self):
        for value in (None, True, 7, 1.5, "x", [1, "a"], {"k": [2]}):
            assert self.round_trip(value) == value

    def test_tuple_identity_preserved(self):
        value = ("rename_commit", 3, "name", 4, ("nested", 1))
        restored = self.round_trip(value)
        assert restored == value
        assert isinstance(restored, tuple)
        assert isinstance(restored[4], tuple)

    def test_entry_kind_and_permission(self):
        assert self.round_trip(EntryKind.DIRECTORY) is EntryKind.DIRECTORY
        restored = self.round_trip(Permission.READ | Permission.WRITE)
        assert restored == Permission.READ | Permission.WRITE
        assert isinstance(restored, Permission)

    def test_dataclasses(self):
        dirent = Dirent(id=9, kind=EntryKind.OBJECT,
                        attrs=AttrMeta(id=9, kind=EntryKind.OBJECT, size=10,
                                       ctime=1.0, mtime=2.0))
        for value in (
                RowKey(3, "name"),
                dirent,
                Row(RowKey(3, "name"), dirent, version=4),
                AttrDelta(link_delta=1, entry_delta=-1, mtime=5.0),
                WriteIntent(RowKey(3, "n"), "insert", dirent),
                StatResult(path="/a", id=2, kind=EntryKind.DIRECTORY,
                           size=0, ctime=0.0, mtime=0.0, link_count=1,
                           entry_count=2, permission=Permission.ALL),
        ):
            assert self.round_trip(value) == value

    def test_unregistered_type_rejected(self):
        class NotWire:
            pass

        with pytest.raises(FrameError):
            wire.to_jsonable(NotWire())

    def test_oversized_frame_rejected(self):
        huge = "x" * (wire.MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError):
            wire.pack_frame(huge)

    def test_undecodable_payload_rejected(self):
        with pytest.raises(FrameError):
            wire.unpack_payload(b"\xff\xfe not json")


class TestErrorCodec:
    CASES = [
        NoSuchPathError("/a/b", "b"),
        AlreadyExistsError("/a/b"),
        TransactionAbort("conflict", RowKey(7, "k")),
        PermissionDeniedError("/p", Permission.WRITE | Permission.EXECUTE),
        ServiceUnavailableError("db-0"),
        ConnectionLostError("127.0.0.1:1", "refused"),
        RPCTimeoutError("127.0.0.1:1", 2.5),
        FrameError("truncated frame"),
    ]

    @pytest.mark.parametrize("exc", CASES,
                             ids=[type(c).__name__ for c in CASES])
    def test_concrete_type_survives(self, exc):
        restored = error_from_wire(
            json.loads(json.dumps(error_to_wire(exc))))
        assert type(restored) is type(exc)
        assert str(restored) == str(exc)

    def test_transport_errors_are_service_unavailable(self):
        # The live retry contract: domain loops that retry on
        # ServiceUnavailableError transparently retry transport faults.
        for exc in (ConnectionLostError("e", "r"),
                    RPCTimeoutError("e", 1.0)):
            assert isinstance(exc, TransportError)
            assert isinstance(exc, ServiceUnavailableError)

    def test_unknown_error_degrades_to_metadata_error(self):
        restored = error_from_wire({"error": "NeverHeardOfIt",
                                    "args": ["boom"]})
        assert isinstance(restored, MetadataError)


class TestTraceEnvelope:
    """The trace-context / server-time fields are strictly additive: absent
    when tracing is off (old peers see the exact pre-trace bytes) and
    ignorable when present (old decoders just see extra keys)."""

    def test_untraced_request_is_byte_identical_to_pre_trace_frame(
            self, golden):
        # trace=None must not leave any residue in the envelope.
        frame = wire.encode_request(
            7, "perform", (O.Mkdir("/bucket/logs").to_wire(),), {},
            trace=None)
        assert frame.hex() == golden["request_frame_hex"]

    def test_trace_context_round_trips(self):
        frame = wire.encode_request(3, "prepare", (), {},
                                    trace={"proc": "proxy", "span": 44})
        payload = wire.unpack_payload(frame[4:])
        assert payload["trace"] == {"proc": "proxy", "span": 44}
        assert payload["method"] == "prepare"

    def test_old_frames_without_trace_still_decode(self):
        frame = wire.encode_request(3, "prepare", (), {})
        payload = wire.unpack_payload(frame[4:])
        assert "trace" not in payload
        # Server-side convention: absent context means an untraced caller.
        assert payload.get("trace") is None

    def test_srv_us_round_trips_and_is_optional(self):
        timed = wire.unpack_payload(
            wire.encode_response(9, result=1, srv_us=17.25)[4:])
        assert timed["srv_us"] == 17.25
        assert wire.decode_result(timed) == 1
        plain = wire.unpack_payload(wire.encode_response(9, result=1)[4:])
        assert "srv_us" not in plain
        # Client-side convention: missing srv_us charges the whole round
        # trip to the wire.
        assert plain.get("srv_us", 0.0) == 0.0

    def test_error_response_never_carries_srv_us(self):
        frame = wire.encode_response(
            9, error=NoSuchPathError("/a/b", "b"), srv_us=5.0)
        payload = wire.unpack_payload(frame[4:])
        assert "srv_us" not in payload
        with pytest.raises(NoSuchPathError):
            wire.decode_result(payload)


class TestMakeOpParity:
    def test_make_op_and_wire_agree(self):
        op = make_op("dirrename", "/x", "/y")
        assert Op.from_wire(op.to_wire()) == op
