"""Sim-vs-live agreement: one op trace, two runtimes, identical outcomes.

The same sequential trace is replayed through the simulated deployment
(``MantleClient`` over the DES kernel) and through a live asyncio cluster
(``LiveClient`` over real TCP to ``InProcessCluster``).  Agreement is
checked at two levels:

* **per-op transcripts** — every op must succeed on both sides or fail on
  both sides with the same exception type, and successful mutations must
  allocate the same inode ids (both deployments allocate sequentially
  above the root id);
* **final namespace snapshots** — a full walk through each client must
  yield the same paths, kinds, ids, permissions and entry counts.

Wallclock fields (latency, timestamps) are excluded by
``normalize_outcome`` — they are the one legitimate divergence between a
simulated clock and a real one.
"""

import pytest

from repro.core.api import MantleClient
from repro.core.config import MantleConfig
from repro.runtime.client import LiveClient
from repro.runtime.live import InProcessCluster
from repro.workloads.trace import (
    replay_typed,
    snapshot_namespace,
    typed_ops,
)

#: The agreement trace: a namespace build-out plus every op type, including
#: ops that must *fail* identically (ENOENT, EEXIST, non-empty rmdir,
#: object-vs-dir confusion, rename of a missing source).
TRACE = [
    ("mkdir", ("/data",)),
    ("mkdir", ("/data/raw",)),
    ("mkdir", ("/data/cooked",)),
    ("mkdir", ("/data",)),                       # EEXIST
    ("mkdir", ("/nope/child",)),                 # ENOENT parent
    ("create", ("/data/raw/part-0",)),
    ("create", ("/data/raw/part-1",)),
    ("create", ("/data/raw/part-0",)),           # EEXIST
    ("objstat", ("/data/raw/part-0",)),
    ("objstat", ("/data/raw/part-9",)),          # ENOENT
    ("dirstat", ("/data/raw",)),
    ("dirstat", ("/data/raw/part-0",)),          # object, not dir
    ("readdir", ("/data/raw",)),
    ("readdir", ("/data/missing",)),             # ENOENT
    ("dirrename", ("/data/cooked", "/data/done")),
    ("dirrename", ("/data/cooked", "/data/again")),  # ENOENT (just moved)
    ("mkdir", ("/data/done/sub",)),
    ("rmdir", ("/data/done",)),                  # ENOTEMPTY
    ("rmdir", ("/data/done/sub",)),
    ("setattr", ("/data/done", 5)),              # READ|EXECUTE mask
    ("mkdir", ("/data/done/blocked",)),          # EACCES (no WRITE bit)
    ("delete", ("/data/raw/part-1",)),
    ("delete", ("/data/raw/part-1",)),           # ENOENT
    ("readdir", ("/data",)),
    ("readdir", ("/",)),
]


def _sim_transcript_and_snapshot():
    with MantleClient(MantleConfig.small()) as client:
        transcript = replay_typed(client, typed_ops(TRACE))
        snapshot = snapshot_namespace(client)
    return transcript, snapshot


def _live_transcript_and_snapshot():
    with InProcessCluster() as cluster:
        with LiveClient(cluster.proxy_endpoint) as client:
            transcript = replay_typed(client, typed_ops(TRACE))
            snapshot = snapshot_namespace(client)
    return transcript, snapshot


@pytest.fixture(scope="module")
def sim_run():
    return _sim_transcript_and_snapshot()


@pytest.fixture(scope="module")
def live_run():
    return _live_transcript_and_snapshot()


class TestAgreement:
    def test_per_op_transcripts_agree(self, sim_run, live_run):
        sim_transcript, _ = sim_run
        live_transcript, _ = live_run
        assert len(sim_transcript) == len(live_transcript) == len(TRACE)
        for index, (sim_record, live_record) in enumerate(
                zip(sim_transcript, live_transcript)):
            assert sim_record == live_record, (
                f"divergence at trace[{index}] {TRACE[index]}: "
                f"sim={sim_record} live={live_record}")

    def test_expected_failures_failed_on_both_sides(self, sim_run, live_run):
        # The trace deliberately includes failing ops; make sure the suite
        # is actually exercising the error paths, not silently passing.
        sim_transcript, _ = sim_run
        failures = [r for r in sim_transcript if not r["ok"]]
        assert len(failures) >= 8
        live_failures = [r for r in live_run[0] if not r["ok"]]
        assert [f["error"] for f in failures] == \
            [f["error"] for f in live_failures]

    def test_final_namespaces_identical(self, sim_run, live_run):
        _, sim_snapshot = sim_run
        _, live_snapshot = live_run
        assert sim_snapshot == live_snapshot

    def test_namespace_snapshot_nonempty(self, sim_run):
        _, snapshot = sim_run
        assert "/data/raw/part-0" in snapshot
        assert snapshot["/data/done"]["kind"] == "dir"
        # The READ|EXECUTE setattr stuck (and blocked the later mkdir).
        assert snapshot["/data/done"]["permission"] == 5
