"""Unit tests for path utilities (repro.paths)."""

import pytest

from repro.errors import InvalidPathError
from repro.paths import (
    ancestors,
    common_ancestor,
    depth,
    is_prefix,
    join,
    normalize,
    parent_and_name,
    rewrite_prefix,
    split_path,
    truncate_prefix,
)


class TestSplitPath:
    def test_simple(self):
        assert split_path("/A/C/E") == ["A", "C", "E"]

    def test_root(self):
        assert split_path("/") == []

    def test_trailing_slash_tolerated(self):
        assert split_path("/A/B/") == ["A", "B"]

    def test_relative_rejected(self):
        with pytest.raises(InvalidPathError):
            split_path("A/B")

    def test_empty_component_rejected(self):
        with pytest.raises(InvalidPathError):
            split_path("/A//B")

    def test_dot_components_rejected(self):
        with pytest.raises(InvalidPathError):
            split_path("/A/./B")
        with pytest.raises(InvalidPathError):
            split_path("/A/../B")

    def test_non_string_rejected(self):
        with pytest.raises(InvalidPathError):
            split_path(123)

    def test_overlong_component_rejected(self):
        with pytest.raises(InvalidPathError):
            split_path("/" + "x" * 256)

    def test_overdeep_path_rejected(self):
        with pytest.raises(InvalidPathError):
            split_path("/" + "/".join(["d"] * 300))


class TestManipulation:
    def test_normalize(self):
        assert normalize("/A/B/") == "/A/B"
        assert normalize("/") == "/"

    def test_parent_and_name(self):
        assert parent_and_name("/A/C/E") == ("/A/C", "E")
        assert parent_and_name("/A") == ("/", "A")

    def test_parent_of_root_rejected(self):
        with pytest.raises(InvalidPathError):
            parent_and_name("/")

    def test_join(self):
        assert join("/A", "C", "E") == "/A/C/E"
        assert join("/", "A") == "/A"

    def test_depth(self):
        assert depth("/") == 0
        assert depth("/A/B/C") == 3


class TestPrefixLogic:
    def test_is_prefix_true_cases(self):
        assert is_prefix("/", "/A")
        assert is_prefix("/A/C", "/A/C")
        assert is_prefix("/A/C", "/A/C/E")

    def test_is_prefix_component_boundary(self):
        assert not is_prefix("/A/C", "/A/CE")

    def test_is_prefix_false_when_longer(self):
        assert not is_prefix("/A/C/E", "/A/C")

    def test_ancestors(self):
        assert ancestors("/A/C/E") == ["/", "/A", "/A/C"]
        assert ancestors("/A") == ["/"]

    def test_common_ancestor(self):
        assert common_ancestor("/A/C/E", "/A/C/F/G") == "/A/C"
        assert common_ancestor("/A", "/B") == "/"
        assert common_ancestor("/A/B", "/A/B") == "/A/B"

    def test_truncate_prefix(self):
        assert truncate_prefix("/A/C/E/G/H", 3) == "/A/C"
        assert truncate_prefix("/A/C", 3) == "/"
        assert truncate_prefix("/A/C/E", 0) == "/A/C/E"

    def test_truncate_prefix_negative_rejected(self):
        with pytest.raises(ValueError):
            truncate_prefix("/A", -1)

    def test_rewrite_prefix(self):
        assert rewrite_prefix("/A/B/C", "/A/B", "/X/Y") == "/X/Y/C"
        assert rewrite_prefix("/A/B", "/A/B", "/Z") == "/Z"

    def test_rewrite_prefix_requires_prefix(self):
        with pytest.raises(ValueError):
            rewrite_prefix("/A/B", "/C", "/Z")
