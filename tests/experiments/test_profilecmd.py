"""Tests for ``mantle-exp profile``, the export helpers, and the
``--check-profile`` registry plumbing.

Profiled runs here stay deliberately tiny (``--clients 6 --items 3``) —
the attribution invariants themselves live in ``tests/sim/test_profile.py``;
this module covers the command surface: case resolution, artifact writing,
validator wiring, the diff table, and how ``check_profile`` threads through
the experiment registry.
"""

import json

import pytest

from repro.experiments import get_experiment
from repro.experiments.cli import main
from repro.experiments.exportutil import (
    default_out,
    ensure_valid,
    write_json_payload,
)
from repro.experiments.profilecmd import (
    CASES,
    diff_table,
    resolve_case,
    run_profile,
    run_profile_diff,
)
from repro.sim.profile import validate_folded, validate_speedscope


class TestExportUtil:
    def test_default_out_sanitises(self):
        assert default_out("profile", "fig12") == "profile_fig12"
        assert default_out("trace", "a/b c", ".json") == "trace_a_b_c.json"

    def test_ensure_valid_passes_clean(self):
        ensure_valid([], "anything")  # no raise

    def test_ensure_valid_raises_and_truncates(self):
        problems = [f"problem {i}" for i in range(9)]
        with pytest.raises(RuntimeError, match=r"\+4 more"):
            ensure_valid(problems, "exported payload")

    def test_write_json_payload_round_trips(self, tmp_path):
        path = tmp_path / "out.json"
        write_json_payload(str(path), {"rows": [1, 2]})
        assert json.loads(path.read_text()) == {"rows": [1, 2]}


class TestCaseResolution:
    def test_figures_map_to_their_knee_ops(self):
        assert resolve_case("fig12").op == "objstat"
        assert resolve_case("fig14").mode == "shared"
        assert resolve_case("fig19").systems == ("mantle",)

    def test_bare_ops_accepted(self):
        assert resolve_case("mkdir").op == "mkdir"

    def test_unknown_target_lists_choices(self):
        with pytest.raises(ValueError, match="fig12"):
            resolve_case("fig99")

    def test_every_case_op_is_a_real_mdtest_op(self):
        from repro.experiments.profilecmd import OPS

        for case in CASES.values():
            assert case.op in OPS


class TestRunProfile:
    def test_writes_validated_artifacts(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        tables, artifacts = run_profile("objstat", systems=["mantle"],
                                        clients=6, items=3)
        assert len(artifacts) == 1
        artifact = artifacts[0]
        assert artifact["reconcile_err"] <= 1e-9
        folded = (tmp_path / "profile_objstat_mantle.folded").read_text()
        assert validate_folded(folded.splitlines()) == []
        payload = json.loads(
            (tmp_path / "profile_objstat_mantle.speedscope.json").read_text())
        assert validate_speedscope(payload) == []
        titles = [t.title for t in tables]
        assert any("cost-kind split" in t for t in titles)
        assert any("top self-time" in t for t in titles)

    def test_diff_names_mechanisms(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        tables, artifacts = run_profile_diff(
            "mantle", "infinifs", "objstat", clients=6, items=3)
        diff = tables[-1]
        assert "differential profile" in diff.title
        assert diff.rows
        # The per-level resolution reads must surface as a named mechanism.
        notes = " ".join(diff.notes)
        assert "rpc:read" in notes or "rpc:lookup" in notes

    def test_diff_table_signs(self):
        class FakeProfile:
            name = "fake"
            ops = 2

            def __init__(self, totals, spans):
                self._totals = totals
                self.frames = spans

            def frame_kind_totals(self):
                return self._totals

        class FakeFrame:
            def __init__(self, spans):
                self.spans = spans

        base = FakeProfile({("f", "cpu"): 10.0}, {"f": FakeFrame(2)})
        other = FakeProfile({("f", "cpu"): 30.0}, {"f": FakeFrame(6)})
        table = diff_table({"system": "a", "profile": base},
                           {"system": "b", "profile": other}, top=5)
        row = table.rows[0]
        assert row[-2] == "+10.00"  # (30 - 10) / 2 ops
        assert row[-1] == "+2.00"


class TestCheckProfileRegistry:
    def test_flags_detected(self):
        assert get_experiment("fig13").accepts_check_profile
        assert get_experiment("fig15").accepts_check_profile
        assert not get_experiment("fig12").accepts_check_profile

    def test_unsupported_experiment_rejects_flag(self):
        with pytest.raises(ValueError, match="fig13, fig15"):
            get_experiment("fig12").run(scale="quick", check_profile=True)


class TestCli:
    def test_profile_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["profile", "objstat", "--systems", "mantle",
                     "--clients", "6", "--items", "3"]) == 0
        out = capsys.readouterr().out
        assert "cost-kind split" in out
        assert (tmp_path / "profile_objstat_mantle.folded").exists()
        assert (tmp_path / "profile_objstat_mantle.speedscope.json").exists()

    def test_profile_diff_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["profile", "objstat", "--diff", "mantle", "tectonic",
                     "--clients", "6", "--items", "3"]) == 0
        out = capsys.readouterr().out
        assert "differential profile" in out
        assert "delta us/op" in out

    def test_profile_rejects_unknown_target(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(ValueError):
            main(["profile", "fig99"])
