"""Fast-path regression gate: kernel optimisations must not move results.

The two-tier scheduler in ``repro.sim.core`` (microtask deque + heap) is a
pure wall-clock optimisation — every simulated timestamp, throughput figure
and RPC count must be bit-identical to the legacy all-heap path.  These
tests pin that down at three levels:

* a kernel-level trace with the ``Simulator(fast_paths=...)`` kwarg,
* a full mdtest run toggled via the ``MANTLE_SIM_FAST`` env flag,
* fig12 at quick scale, run twice and against the legacy kernel.

``TestLaneKernelDeterminism`` extends the gate to the lane-sharded kernel
(``MANTLE_SIM_LANES``): per-host lanes and capped lanes must reproduce the
single-loop kernels' results exactly, on mdtest and on a full figure.
"""

import pytest

from repro.bench.cluster import build_system
from repro.bench.harness import run_workload
from repro.experiments import get_experiment
from repro.sim.core import AnyOf, Simulator
from repro.sim.resources import Resource
from repro.workloads.mdtest import MdtestWorkload


def _kernel_trace(fast_paths: bool):
    """A scenario touching every fast path: zero-delay resumes, contended
    resources, AnyOf fan-out and interrupts.  Returns the (time, label)
    event trace."""
    sim = Simulator(fast_paths=fast_paths)
    resource = Resource(sim, capacity=2)
    trace = []

    def worker(i):
        for round_no in range(3):
            request = resource.request()
            yield request
            trace.append((sim.now, f"grant-{i}-{round_no}"))
            yield sim.timeout(i % 3)  # delay 0 exercises the deque
            resource.release(request)
        first = yield AnyOf(sim, [sim.timeout(5), sim.timeout(5),
                                  sim.timeout(2 + i % 2)])
        trace.append((sim.now, f"anyof-{i}-{first}"))

    def interrupter(victim):
        yield sim.timeout(4)
        victim.interrupt("poke")

    victims = [sim.process(worker(i)) for i in range(8)]
    sim.process(interrupter(victims[3]))
    with pytest.raises(Exception):
        sim.run()  # victim 3 does not catch the interrupt
    trace.append((sim.now, "end"))
    return trace


def _mdtest_fingerprint():
    system = build_system("mantle", "quick")
    try:
        metrics = run_workload(system, MdtestWorkload(
            "objstat", depth=8, items=6, num_clients=12))
    finally:
        system.shutdown()
    return (
        metrics.ops_completed,
        metrics.retries,
        round(metrics.duration_us, 6),
        {op: (rec.count, round(rec.mean, 9))
         for op, rec in sorted(metrics.latency.items())},
        {op: (rec.count, round(rec.mean, 9))
         for op, rec in sorted(metrics.rpc_rounds.items())},
    )


def _fig12_rows():
    tables = get_experiment("fig12").run(scale="quick")
    return [tuple(row) for table in tables for row in table.rows]


class TestFastPathDeterminism:
    def test_kernel_trace_fast_equals_legacy(self):
        assert _kernel_trace(fast_paths=True) == _kernel_trace(
            fast_paths=False)

    def test_env_flag_disables_fast_paths(self, monkeypatch):
        # Lane mode forces the two-tier scheduler, so it must be off for
        # MANTLE_SIM_FAST=0 to reach the legacy kernel.
        monkeypatch.delenv("MANTLE_SIM_LANES", raising=False)
        monkeypatch.setenv("MANTLE_SIM_FAST", "0")
        assert Simulator()._fast is False
        monkeypatch.setenv("MANTLE_SIM_FAST", "1")
        assert Simulator()._fast is True
        monkeypatch.delenv("MANTLE_SIM_FAST")
        assert Simulator()._fast is True  # default on

    def test_mdtest_metrics_identical_fast_vs_legacy(self, monkeypatch):
        monkeypatch.setenv("MANTLE_SIM_FAST", "1")
        fast = _mdtest_fingerprint()
        monkeypatch.setenv("MANTLE_SIM_FAST", "0")
        legacy = _mdtest_fingerprint()
        assert fast == legacy

    def test_tracing_does_not_change_results(self, monkeypatch):
        """Span tracing is pure bookkeeping: identical simulated results."""
        monkeypatch.delenv("MANTLE_TRACE", raising=False)
        untraced = _mdtest_fingerprint()
        monkeypatch.setenv("MANTLE_TRACE", "1")
        traced = _mdtest_fingerprint()
        assert untraced == traced

    def test_tracing_identical_on_legacy_kernel(self, monkeypatch):
        monkeypatch.setenv("MANTLE_SIM_FAST", "0")
        monkeypatch.delenv("MANTLE_TRACE", raising=False)
        untraced = _mdtest_fingerprint()
        monkeypatch.setenv("MANTLE_TRACE", "1")
        traced = _mdtest_fingerprint()
        assert untraced == traced

    def test_telemetry_does_not_change_results(self, monkeypatch):
        """Windowed telemetry is pure bookkeeping: identical results."""
        monkeypatch.delenv("MANTLE_TELEMETRY", raising=False)
        off = _mdtest_fingerprint()
        monkeypatch.setenv("MANTLE_TELEMETRY", "1")
        on = _mdtest_fingerprint()
        assert off == on

    def test_telemetry_identical_on_legacy_kernel(self, monkeypatch):
        monkeypatch.setenv("MANTLE_SIM_FAST", "0")
        monkeypatch.delenv("MANTLE_TELEMETRY", raising=False)
        off = _mdtest_fingerprint()
        monkeypatch.setenv("MANTLE_TELEMETRY", "1")
        on = _mdtest_fingerprint()
        assert off == on

    def test_fig12_quick_identical_across_runs_and_kernels(self, monkeypatch):
        first = _fig12_rows()
        second = _fig12_rows()
        assert first == second
        monkeypatch.setenv("MANTLE_SIM_FAST", "0")
        legacy = _fig12_rows()
        assert first == legacy


class TestLaneKernelDeterminism:
    """The lane-sharded kernel (``MANTLE_SIM_LANES``) is the third A/B
    point: per-host event lanes, same simulated history bit-for-bit."""

    def test_mdtest_metrics_identical_lanes_vs_global(self, monkeypatch):
        monkeypatch.delenv("MANTLE_SIM_LANES", raising=False)
        single = _mdtest_fingerprint()
        monkeypatch.setenv("MANTLE_SIM_LANES", "1")
        lanes = _mdtest_fingerprint()
        assert lanes == single

    def test_mdtest_metrics_identical_with_lane_cap(self, monkeypatch):
        # A lane cap changes only which heap an event waits in (hosts
        # round-robin over N lanes), never the execution order.
        monkeypatch.setenv("MANTLE_SIM_LANES", "1")
        per_host = _mdtest_fingerprint()
        monkeypatch.setenv("MANTLE_SIM_LANES", "3")
        capped = _mdtest_fingerprint()
        assert capped == per_host

    def test_mdtest_metrics_identical_lanes_vs_legacy(self, monkeypatch):
        # All three kernels agree: the lane kernel is transitively pinned
        # against the legacy all-heap scheduler too.
        monkeypatch.delenv("MANTLE_SIM_LANES", raising=False)
        monkeypatch.setenv("MANTLE_SIM_FAST", "0")
        legacy = _mdtest_fingerprint()
        monkeypatch.setenv("MANTLE_SIM_LANES", "1")
        lanes = _mdtest_fingerprint()
        assert lanes == legacy

    def test_fig12_quick_identical_under_lanes(self, monkeypatch):
        monkeypatch.delenv("MANTLE_SIM_LANES", raising=False)
        single = _fig12_rows()
        monkeypatch.setenv("MANTLE_SIM_LANES", "1")
        lanes = _fig12_rows()
        assert lanes == single
