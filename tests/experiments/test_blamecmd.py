"""Tests for ``mantle-exp blame`` — interference-blame command surface.

The matrix-construction invariants live in ``tests/sim/test_critpath.py``
(``TestBuildBlame``); this module covers the command: artifact writing +
validator wiring on a tiny point, CLI exit codes, and the slow
acceptance battery — on the fig14 shared-mkdir storm the top culprit
must be the storming op type itself, the multitenant scenario must blame
the storm tenant for the majority of the victim's queueing, and the
JSON exports must be byte-identical across all three simulation kernels
(occupant tracking is pure bookkeeping).
"""

import json

import pytest

from repro.experiments.blamecmd import run_blame, run_multitenant
from repro.experiments.cli import main
from repro.sim.critpath import validate_blame

#: The fig14 '-s' probe point: past the knee (~24 clients) but small
#: enough for CI — the same point the whatif knee battery uses.
_FIG14_SMALL = dict(scale="quick", systems=["mantle"], clients=24)


def _kernel_envs():
    """The three A/B kernel settings: fast (default), legacy, lanes."""
    return ({"MANTLE_SIM_FAST": "1"}, {"MANTLE_SIM_FAST": "0"},
            {"MANTLE_SIM_LANES": "1"})


def _set_kernel(monkeypatch, env):
    for key in ("MANTLE_SIM_FAST", "MANTLE_SIM_LANES"):
        monkeypatch.delenv(key, raising=False)
    for key, value in env.items():
        monkeypatch.setenv(key, value)


class TestRunBlame:
    def test_writes_validated_artifact(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        tables, lines, artifacts = run_blame("mkdir", systems=["mantle"],
                                             clients=6, items=3)
        assert len(artifacts) == 1
        artifact = artifacts[0]
        assert artifact["blame"].conservation_error() <= 1e-6
        assert artifact["crit"].conservation_error() <= 1e-6
        payload = json.loads(
            (tmp_path / "blame_mkdir_mantle.json").read_text())
        assert validate_blame(payload) == []
        assert payload == artifact["payload"]
        assert any("top culprits" in t.title for t in tables)
        # The exemplar path names a culprit for each queue segment.
        assert any("<-" in line for line in lines)

    def test_blamed_microseconds_cover_queue_segments(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.chdir(tmp_path)
        _t, _l, artifacts = run_blame("mkdir", systems=["mantle"],
                                      clients=6, items=3)
        payload = artifacts[0]["payload"]
        blamed = sum(cell["us"] for cell in payload["cells"])
        assert blamed == pytest.approx(payload["total_queue_us"],
                                       rel=1e-3)
        assert 0.0 < payload["queue_share"] < 1.0


class TestCli:
    def test_blame_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["blame", "mkdir", "--systems", "mantle",
                     "--clients", "6", "--items", "3"]) == 0
        out = capsys.readouterr().out
        assert "top culprits" in out
        assert "exemplar victim path" in out
        assert (tmp_path / "blame_mkdir_mantle.json").exists()

    def test_blame_rejects_unknown_target(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(ValueError):
            main(["blame", "warp-drive"])


@pytest.mark.slow
class TestBlameValidation:
    """The acceptance battery: the storming op type must come out as the
    top culprit, the multitenant victim's queueing must trace to the
    storm tenant, and exports must not depend on the kernel."""

    def test_fig14_storm_names_mkdir_as_top_culprit(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.chdir(tmp_path)
        _t, _l, artifacts = run_blame("fig14", **_FIG14_SMALL)
        blame = artifacts[0]["blame"]
        assert blame.conservation_error() <= 1e-6
        (top_op, _tenant, _resource), _us = blame.top_culprits(1)[0]
        assert top_op == "mkdir"

    def test_fig14_export_byte_identical_across_kernels(self, tmp_path,
                                                        monkeypatch):
        monkeypatch.chdir(tmp_path)
        blobs = set()
        for env in _kernel_envs():
            _set_kernel(monkeypatch, env)
            _t, _l, artifacts = run_blame("fig14", **_FIG14_SMALL)
            blobs.add((tmp_path / artifacts[0]["path"]).read_bytes())
        assert len(blobs) == 1

    def test_multitenant_blames_storm_for_victim_queueing(self, tmp_path,
                                                          monkeypatch):
        monkeypatch.chdir(tmp_path)
        artifact = run_multitenant(scale="quick")
        blame = artifact["blame"]
        assert blame.conservation_error() <= 1e-6
        assert validate_blame(artifact["payload"]) == []
        matrix = blame.tenant_matrix()
        victim_rows = {culprit: us for (victim, culprit), us
                       in matrix.items() if victim == "victim"}
        total = sum(victim_rows.values())
        assert total > 0.0
        # The noisy neighbour owns the majority of the victim's queueing.
        assert victim_rows.get("storm", 0.0) > 0.5 * total
        assert artifact["victim_mean_us"] > 0.0

    def test_multitenant_export_byte_identical_across_kernels(
            self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        blobs = set()
        for env in _kernel_envs():
            _set_kernel(monkeypatch, env)
            artifact = run_multitenant(scale="quick")
            blobs.add((tmp_path / artifact["path"]).read_bytes())
        assert len(blobs) == 1
