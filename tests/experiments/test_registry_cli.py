"""Tests for the experiment registry and CLI (fast experiments only —
the heavy figure runs are exercised by the benchmark suite)."""

import pytest

from repro.bench.report import Table
from repro.experiments import REGISTRY, get_experiment, list_experiments
from repro.experiments.cli import main


EXPECTED_IDS = {
    "fig03", "fig04", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "fig18", "fig19", "fig20", "table1", "table3",
    "ext-rdma", "ext-coloc", "ext-failover",
}


class TestRegistry:
    def test_every_paper_exhibit_registered(self):
        assert set(REGISTRY) == EXPECTED_IDS

    def test_list_is_sorted_and_complete(self):
        ids = [e.id for e in list_experiments()]
        assert ids == sorted(ids)
        assert set(ids) == EXPECTED_IDS

    def test_every_experiment_has_claim_and_title(self):
        for experiment in list_experiments():
            assert experiment.title
            assert experiment.paper_claim

    def test_get_unknown_raises_with_known_list(self):
        with pytest.raises(KeyError, match="fig03"):
            get_experiment("fig99")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            get_experiment("fig03").run(scale="galactic")

    def test_fig03_runs_and_returns_tables(self):
        tables = get_experiment("fig03").run(scale="quick")
        assert len(tables) == 2
        assert all(isinstance(t, Table) for t in tables)
        assert all(t.rows for t in tables)


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPECTED_IDS:
            assert exp_id in out

    def test_run_command(self, capsys):
        assert main(["run", "fig03"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3a" in out
        assert "ns4" in out

    def test_run_with_scale_flag_validation(self):
        with pytest.raises(SystemExit):
            main(["run", "fig03", "--scale", "gigantic"])

    def test_telemetry_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["telemetry", "fig12", "--clients", "8",
                     "--items", "4"]) == 0
        out = capsys.readouterr().out
        assert "saturation verdicts" in out
        assert "cpu tafdb-0" in out  # per-host CPU timeline
        csv_text = (tmp_path / "telemetry_fig12.csv").read_text()
        assert csv_text.startswith(
            "metric,kind,host,window_start_us,value,count,max,capacity")
        import json

        payload = json.loads((tmp_path / "telemetry_fig12.json").read_text())
        assert payload["experiment"] == "fig12"
        assert payload["verdict"]
        assert payload["rows"]

    def test_telemetry_command_rejects_unknown_fig(self):
        with pytest.raises(SystemExit):
            main(["telemetry", "fig03"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
