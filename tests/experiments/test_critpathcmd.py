"""Tests for ``mantle-exp critpath`` / ``mantle-exp whatif``.

The extraction invariants live in ``tests/sim/test_critpath.py``; this
module covers the command surface (artifact writing, validator wiring,
table shape, CLI exit codes) plus the headline claim of the what-if
engine: on figure *knee* points the slack prediction lands within 15% of
a measured rerun — for an on-path fsync scale, an RTT scale, and an
off-critical-path center that must predict (and measure) ≈0 gain.

The validation probes rerun real knee points, so this file is the slow
end of the suite; everything else stays tiny (``--clients 6 --items 3``).
"""

import json

import pytest

from repro.experiments.cli import main
from repro.experiments.critpathcmd import (
    DELTA_FLOOR_FRAC,
    WhatIfResult,
    run_critpath,
    run_whatif,
)
from repro.sim.critpath import validate_critpath
from repro.sim.host import CostOverrides


class TestRunCritpath:
    def test_writes_validated_artifact(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        tables, lines, artifacts = run_critpath(
            "objstat", systems=["mantle"], clients=6, items=3)
        assert len(artifacts) == 1
        artifact = artifacts[0]
        assert artifact["conservation_err"] < 1e-9
        payload = json.loads(
            (tmp_path / "critpath_objstat_mantle.json").read_text())
        assert validate_critpath(payload) == []
        assert payload == artifact["payload"]
        titles = [t.title for t in tables]
        assert any("top gating centers" in t for t in titles)
        assert any("on-path vs off-path" in t for t in titles)
        assert any("end-to-end" in line for line in lines)

    def test_gating_shares_cover_latency(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        _tables, _lines, artifacts = run_critpath(
            "mkdir", systems=["mantle"], clients=6, items=3)
        payload = artifacts[0]["payload"]
        assert sum(c["share"] for c in payload["centers"]) == \
            pytest.approx(1.0, abs=1e-3)


class TestWhatIfResultLogic:
    def _result(self, predicted, measured, baseline=1000.0):
        return WhatIfResult(
            system="mantle", op="mkdir",
            overrides=CostOverrides.of(**{"tafdb.fsync": 2.0}),
            baseline_mean_us=baseline, predicted_mean_us=predicted,
            measured_mean_us=measured, baseline_kops=1.0,
            measured_kops=1.0, matched_us_per_op={})

    def test_error_relative_to_measured_delta(self):
        result = self._result(predicted=890.0, measured=900.0)
        assert result.predicted_delta_frac == pytest.approx(0.11)
        assert result.measured_delta_frac == pytest.approx(0.10)
        assert result.error_frac == pytest.approx(0.10)
        assert result.within(0.15)
        assert not result.within(0.05)

    def test_predicting_gain_where_none_measured_is_infinite_error(self):
        result = self._result(predicted=900.0, measured=1000.0)
        assert result.error_frac == float("inf")
        assert not result.within(0.15)

    def test_both_deltas_under_floor_count_as_correct_nothing(self):
        eps = DELTA_FLOOR_FRAC / 2
        result = self._result(predicted=1000.0 * (1 - eps),
                              measured=1000.0)
        assert result.within(0.15)

    def _two_model_result(self, predicted=800.0, corrected=890.0,
                          measured=900.0, model="corrected"):
        return WhatIfResult(
            system="mantle", op="mkdir",
            overrides=CostOverrides.of(**{"tafdb.fsync": 2.0}),
            baseline_mean_us=1000.0, predicted_mean_us=predicted,
            measured_mean_us=measured, baseline_kops=1.0,
            measured_kops=1.0, matched_us_per_op={}, model=model,
            corrected_mean_us=corrected)

    def test_selected_model_drives_the_gate(self):
        # Slack over-predicts 2x (20% vs 10%); corrected lands at 11%.
        result = self._two_model_result()
        assert result.model_error_frac("slack") == pytest.approx(1.0)
        assert result.model_error_frac("corrected") == pytest.approx(0.10)
        assert result.error_frac == pytest.approx(0.10)
        assert result.within(0.15)
        assert not result.model_within("slack", 0.15)
        slack_sel = self._two_model_result(model="slack")
        assert slack_sel.error_frac == pytest.approx(1.0)
        assert not slack_sel.within(0.15)

    def test_corrected_falls_back_to_slack_without_telemetry(self):
        result = self._two_model_result(corrected=None)
        assert result.model_mean_us("corrected") == 800.0
        assert result.model_error_frac("corrected") == \
            result.model_error_frac("slack")

    def test_failure_report_names_the_failing_bound(self):
        lines = self._two_model_result().failure_report(0.15)
        assert len(lines) == 2
        slack_line, corrected_line = lines
        assert "slack model:" in slack_line
        assert "EXCEEDS --max-error 15%" in slack_line
        assert "error 100.0% of the measured delta" in slack_line
        assert "corrected model [selected]:" in corrected_line
        assert "within --max-error 15%" in corrected_line

    def test_failure_report_marks_phantom_gains_as_infinite(self):
        result = self._two_model_result(predicted=800.0, corrected=1000.0,
                                        measured=1000.0)
        slack_line = result.failure_report(0.15)[0]
        assert "predicted a gain where measurement shows none" in slack_line


@pytest.mark.slow
class TestWhatIfValidation:
    """The acceptance battery: predictions vs measured reruns at knees.

    fig12's quick point (64 objstat clients) sits at its knee; fig14's
    (64 shared-mkdir clients) is past it — latency lifts off the plateau
    at ~24 clients (see docs/observability.md), so the fsync probe runs
    there.  Past the knee the open-loop model over-predicts by design;
    that divergence is documented, not asserted away.
    """

    def test_fsync_scale_validates_at_fig14_knee(self):
        _tables, result = run_whatif("fig14", ["tafdb.fsync=2x"],
                                     clients=24)
        assert result.measured_delta_frac > DELTA_FLOOR_FRAC
        assert result.within(0.15), (result.predicted_delta_frac,
                                     result.measured_delta_frac)

    def test_rtt_scale_validates_at_fig12_knee(self):
        _tables, result = run_whatif("fig12", ["net.rtt=2x"])
        assert result.measured_delta_frac > DELTA_FLOOR_FRAC
        assert result.within(0.15), (result.predicted_delta_frac,
                                     result.measured_delta_frac)

    def test_off_path_fsync_predicts_and_measures_nothing(self):
        """objstat never fsyncs: the override must predict ≈0 and the
        rerun must confirm it (the contrast's slack claim, made testable).
        """
        _tables, result = run_whatif("fig12", ["raft.fsync=2x"])
        assert abs(result.predicted_delta_frac) < DELTA_FLOOR_FRAC
        assert abs(result.measured_delta_frac) < DELTA_FLOOR_FRAC
        assert result.within(0.15)

    def test_corrected_matches_slack_at_the_knee(self):
        """At the knee the bottleneck floor must not bind: the corrected
        model degrades gracefully to the slack prediction (and both hold
        to 15%)."""
        _tables, result = run_whatif("fig14", ["tafdb.fsync=2x"],
                                     clients=24, model="corrected")
        assert result.corrected_mean_us == \
            pytest.approx(result.predicted_mean_us)
        assert result.within(0.15)


@pytest.mark.slow
class TestWhatIfDeepSaturation:
    """Deep past fig14's knee the open-loop slack model over-predicts by
    >=2x; the bottleneck-law correction must bind and recover the
    prediction to <=30% of the measured delta (calibrated on two probes
    with different bottleneck stations — see docs/observability.md)."""

    def _probe(self, speedups):
        _tables, result = run_whatif("fig14", speedups, clients=160,
                                     model="corrected")
        # The probe only demonstrates the correction when slack really
        # misses big and the floor really binds.
        assert result.model_error_frac("slack") > 1.0, \
            (result.predicted_delta_frac, result.measured_delta_frac)
        assert not result.model_within("slack", 0.30)
        assert result.bottleneck_mean_us > result.predicted_mean_us
        assert result.model_within("corrected", 0.30), \
            (result.corrected_delta_frac, result.measured_delta_frac)
        return result

    def test_fsync_probe_recovers_cpu_bottleneck_floor(self):
        result = self._probe(["tafdb.fsync=2x"])
        assert result.bottleneck_station.endswith("/cpu")

    def test_cpu_probe_shifts_bottleneck_to_disk(self):
        result = self._probe(["tafdb.cpu=4x"])
        assert result.bottleneck_station.endswith("/disk")


class TestCli:
    def test_critpath_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["critpath", "objstat", "--systems", "mantle",
                     "--clients", "6", "--items", "3"]) == 0
        out = capsys.readouterr().out
        assert "top gating centers" in out
        assert "exemplar path" in out
        assert (tmp_path / "critpath_objstat_mantle.json").exists()

    def test_whatif_command_gates_on_max_error(self, capsys, tmp_path,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        # Off-path probe on a tiny read point: predicted == measured == 0,
        # so even a tight gate passes (and stays cheap).
        assert main(["whatif", "objstat", "--speedup", "raft.fsync=2x",
                     "--clients", "6", "--items", "3",
                     "--max-error", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "what-if" in out and "measured" in out

    def test_whatif_requires_a_speedup(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(ValueError, match="speedup"):
            main(["whatif", "objstat"])

    def test_whatif_rejects_malformed_speedup(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(ValueError):
            main(["whatif", "objstat", "--speedup", "warp.drive=9x"])
