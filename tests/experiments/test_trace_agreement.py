"""Span-derived experiment numbers must agree with the legacy counters."""

import json

from repro.experiments.base import mdtest_metrics_traced
from repro.experiments.cli import main as cli_main
from repro.experiments.tracecmd import (
    AGREEMENT_TOLERANCE,
    agreement_table,
    breakdown_table,
)
from repro.sim.trace import export_chrome_trace, validate_chrome_trace


def _artifact(system, op, **kwargs):
    metrics, tracer = mdtest_metrics_traced(system, op, **kwargs)
    return {"label": f"{op}/{system}", "op": op, "metrics": metrics,
            "tracer": tracer}


def test_span_and_metric_derivations_agree_within_tolerance():
    artifacts = [
        _artifact("mantle", "mkdir", clients=8, items=4),
        _artifact("infinifs", "objstat", clients=8, items=4, depth=6),
    ]
    table, worst = agreement_table(artifacts)
    assert worst <= AGREEMENT_TOLERANCE
    # in the deterministic sim the two derivations are actually bit-equal:
    assert worst == 0.0
    assert len(table.rows) >= 2 * 3  # latency + rpcs + >=1 phase per case
    payload = export_chrome_trace(
        [(a["label"], a["tracer"].spans) for a in artifacts])
    assert validate_chrome_trace(payload) == []
    summary = breakdown_table(artifacts)
    assert summary.rows


def test_cli_trace_subcommand_writes_valid_json(tmp_path, capsys):
    out = tmp_path / "trace_table1.json"
    assert cli_main(["trace", "table1", "--out", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert validate_chrome_trace(payload) == []
    assert payload["traceEvents"]
    printed = capsys.readouterr().out
    assert "Span-derived vs metric-derived agreement" in printed
