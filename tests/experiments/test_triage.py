"""``mantle-exp triage``: phase-resolved tail blame, validated end to end.

The PR 10 acceptance path: triaging the fig14 shared-mkdir storm must
find a saturated phase whose tail exemplars fold into a critical path
and blame matrix that conserve (within the critpath tolerance) and name
the same top culprit the full-run blame does — mkdir.  The export must
validate against its schema and be byte-identical across the three
simulation kernels.
"""

import json
import os

import pytest

from repro.experiments.critpathcmd import CONSERVATION_TOLERANCE
from repro.experiments.triagecmd import (
    dropped_warning,
    run_triage,
    triage_point,
    validate_triage,
)
from repro.experiments.profilecmd import resolve_case


@pytest.fixture(scope="module")
def storm_artifact(tmp_path_factory):
    """One triaged fig14 mantle storm, shared by the assertions below."""
    out = tmp_path_factory.mktemp("triage") / "triage_fig14"
    case = resolve_case("fig14")
    return triage_point("mantle", "fig14", case, "quick",
                        out_base=str(out))


class TestTriageStorm:
    def test_saturated_phase_found_and_triaged(self, storm_artifact):
        payload = storm_artifact["payload"]
        assert payload["primary_phase"] == "saturated"
        assert any(p["label"] == "saturated" for p in payload["phases"])
        triaged = [t for t in payload["triage"] if t["exemplars"] > 0]
        assert triaged, "the storm must yield tail exemplars to triage"

    def test_blame_conserves_and_names_mkdir(self, storm_artifact):
        # Same top culprit as the full-run blame matrix (PR 9 ground
        # truth): the mkdir storm blames itself.
        for entry in storm_artifact["payload"]["triage"]:
            if entry["exemplars"] == 0:
                continue
            assert entry["critpath_conservation_error"] \
                <= CONSERVATION_TOLERANCE
            assert entry["blame_conservation_error"] \
                <= CONSERVATION_TOLERANCE
            assert entry["blamed_on"], "queued time must be attributed"
            assert entry["blamed_on"][0]["culprit_op"] == "mkdir"
            assert "gated by" in entry["summary"]
            assert "blamed on" in entry["summary"]

    def test_export_passes_schema_and_is_on_disk(self, storm_artifact):
        assert validate_triage(storm_artifact["payload"]) == []
        with open(storm_artifact["path"]) as handle:
            on_disk = json.load(handle)
        assert validate_triage(on_disk) == []
        assert on_disk == json.loads(
            json.dumps(storm_artifact["payload"], default=str))

    def test_trace_stats_embedded(self, storm_artifact):
        stats = storm_artifact["payload"]["trace_stats"]
        assert stats["started"] > 0
        assert stats["kept_roots"] > 0
        assert stats["kept_spans"] > 0


class TestTriageKernelIndependence:
    def _export_bytes(self, tmp_path, tag):
        out = tmp_path / f"triage_{tag}"
        case = resolve_case("mkdir")
        artifact = triage_point("mantle", "mkdir", case, "quick",
                                clients=24, items=6, out_base=str(out))
        with open(artifact["path"], "rb") as handle:
            return handle.read()

    def test_export_byte_identical_across_kernels(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.delenv("MANTLE_SIM_FAST", raising=False)
        monkeypatch.delenv("MANTLE_SIM_LANES", raising=False)
        fast = self._export_bytes(tmp_path, "fast")
        monkeypatch.setenv("MANTLE_SIM_FAST", "0")
        legacy = self._export_bytes(tmp_path, "legacy")
        monkeypatch.delenv("MANTLE_SIM_FAST")
        monkeypatch.setenv("MANTLE_SIM_LANES", "1")
        lanes = self._export_bytes(tmp_path, "lanes")
        assert fast == legacy
        assert fast == lanes


class TestRunTriage:
    def test_run_triage_returns_tables_lines_artifacts(self, tmp_path):
        tables, lines, artifacts = run_triage(
            "mkdir", scale="quick", out_base=str(tmp_path / "t"),
            systems=["mantle"], clients=16, items=5)
        assert len(artifacts) == 1
        assert tables, "phase table expected"
        assert any(line.startswith("(wrote ") for line in lines)
        assert os.path.exists(artifacts[0]["path"])
        assert validate_triage(artifacts[0]["payload"]) == []


class TestTriageSchema:
    def test_rejects_non_object(self):
        assert validate_triage([]) == ["payload is not a JSON object"]

    def test_flags_conservation_breach(self, storm_artifact):
        bad = json.loads(json.dumps(storm_artifact["payload"],
                                    default=str))
        for entry in bad["triage"]:
            if entry["exemplars"] > 0:
                entry["blame_conservation_error"] = 0.5
                break
        problems = validate_triage(bad)
        assert any("conservation tolerance" in p for p in problems)

    def test_flags_unknown_phase_label(self, storm_artifact):
        bad = json.loads(json.dumps(storm_artifact["payload"],
                                    default=str))
        bad["phases"][0]["label"] = "mystery"
        assert any("unknown label" in p for p in validate_triage(bad))


class TestDroppedWarning:
    def test_silent_when_nothing_dropped(self):
        assert dropped_warning({"dropped": 0}) is None

    def test_loud_when_spans_dropped(self):
        warning = dropped_warning({"dropped": 123, "finished": 1000,
                                   "kept_spans": 50, "kept_roots": 5})
        assert warning is not None
        assert "WARNING" in warning
        assert "123" in warning
