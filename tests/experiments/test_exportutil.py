"""Direct unit tests for ``repro.experiments.exportutil``.

Every ``mantle-exp`` artifact subcommand (trace, telemetry, profile,
critpath) leans on these three helpers; their contract — sanitised
default paths, validate-before-write, trailing-newline JSON — is pinned
here so the commands cannot drift apart.
"""

import json

import pytest

from repro.experiments.exportutil import (
    default_out,
    ensure_valid,
    write_json_payload,
)


class TestDefaultOut:
    def test_joins_kind_and_name(self):
        assert default_out("critpath", "fig14") == "critpath_fig14"

    def test_suffix_appended_verbatim(self):
        assert default_out("profile", "fig12",
                           ".speedscope.json") == "profile_fig12.speedscope.json"

    def test_sanitises_separators_and_spaces(self):
        assert default_out("trace", "a/b c") == "trace_a_b_c"
        assert "/" not in default_out("trace", "../../etc/passwd")


class TestEnsureValid:
    def test_no_problems_is_a_no_op(self):
        assert ensure_valid([], "anything") is None

    def test_raises_with_context_and_problems(self):
        with pytest.raises(RuntimeError) as excinfo:
            ensure_valid(["bad share", "missing frame"], "critpath.json")
        message = str(excinfo.value)
        assert "critpath.json" in message
        assert "bad share; missing frame" in message

    def test_truncates_past_limit(self):
        problems = [f"p{i}" for i in range(8)]
        with pytest.raises(RuntimeError, match=r"\(\+3 more\)"):
            ensure_valid(problems, "payload")

    def test_custom_limit(self):
        with pytest.raises(RuntimeError, match=r"p0 \(\+2 more\)"):
            ensure_valid(["p0", "p1", "p2"], "payload", limit=1)


class TestWriteJsonPayload:
    def test_round_trips_and_returns_payload(self, tmp_path):
        path = tmp_path / "out.json"
        payload = {"centers": [{"share": 0.5}], "ops": 3}
        assert write_json_payload(str(path), payload) is payload
        assert json.loads(path.read_text()) == payload

    def test_ends_with_newline(self, tmp_path):
        path = tmp_path / "out.json"
        write_json_payload(str(path), [1, 2])
        assert path.read_text().endswith("\n")

    def test_non_serialisable_values_fall_back_to_str(self, tmp_path):
        class Opaque:
            def __str__(self):
                return "opaque-object"

        path = tmp_path / "out.json"
        write_json_payload(str(path), {"value": Opaque()})
        assert json.loads(path.read_text()) == {"value": "opaque-object"}

    def test_overwrites_existing_file(self, tmp_path):
        path = tmp_path / "out.json"
        write_json_payload(str(path), {"old": True})
        write_json_payload(str(path), {"new": True})
        assert json.loads(path.read_text()) == {"new": True}
