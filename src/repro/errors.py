"""Exception hierarchy shared by every metadata service in the reproduction.

The paper's proxy layer surfaces a small set of error conditions to clients
(missing path components, duplicate names, permission failures, rename loops
and transaction aborts).  All four systems — Mantle and the three baselines —
raise the same exception types so workloads and benchmarks can treat them
uniformly.

The full hierarchy (every class derives from :class:`MetadataError`, so
``except MetadataError`` catches anything a metadata operation can raise)::

    MetadataError                  base class; catch-all for client code
    ├── NoSuchPathError            ENOENT: a path component is missing
    ├── AlreadyExistsError         EEXIST: target name already taken
    ├── NotADirectoryError         ENOTDIR: non-final component is an object
    ├── IsADirectoryError          EISDIR: object op aimed at a directory
    ├── NotEmptyError              ENOTEMPTY: rmdir of a non-empty directory
    ├── PermissionDeniedError      EACCES: aggregated path permission failed
    ├── InvalidPathError           malformed path string (client-side)
    ├── RenameLoopError            dirrename would create a namespace cycle
    ├── RenameLockConflict         loop detection hit another rename's lock
    ├── TransactionAbort           TafDB optimistic-concurrency conflict
    ├── ServiceUnavailableError    no Raft leader / server crashed; retryable
    └── StaleReadError             replica applyIndex too old for the read

Retry semantics: ``TransactionAbort``, ``RenameLockConflict``,
``ServiceUnavailableError`` and ``StaleReadError`` are *transient* — proxies
retry them internally with backoff, and :class:`~repro.sim.stats.OpContext`
counts each retry.  The rest describe the namespace state and surface
directly to the caller; :class:`~repro.core.api.MantleClient` lets them
propagate (per-op in :meth:`~repro.core.api.MantleClient.batch`, where they
land in ``BatchResult.error`` instead of raising).
"""


class MetadataError(Exception):
    """Base class for every error raised by a metadata service."""


class NoSuchPathError(MetadataError):
    """A path component does not exist (ENOENT)."""

    def __init__(self, path, component=None):
        self.path = path
        self.component = component
        detail = f" (missing component {component!r})" if component else ""
        super().__init__(f"no such path: {path!r}{detail}")


class AlreadyExistsError(MetadataError):
    """The target name already exists in its parent directory (EEXIST)."""

    def __init__(self, path):
        self.path = path
        super().__init__(f"already exists: {path!r}")


class NotADirectoryError(MetadataError):
    """A non-final path component resolved to an object (ENOTDIR)."""

    def __init__(self, path, component=None):
        self.path = path
        self.component = component
        super().__init__(f"not a directory: {path!r} at {component!r}")


class IsADirectoryError(MetadataError):
    """An object operation targeted a directory (EISDIR)."""

    def __init__(self, path):
        self.path = path
        super().__init__(f"is a directory: {path!r}")


class NotEmptyError(MetadataError):
    """rmdir on a directory that still has children (ENOTEMPTY)."""

    def __init__(self, path):
        self.path = path
        super().__init__(f"directory not empty: {path!r}")


class PermissionDeniedError(MetadataError):
    """Aggregated path permission check failed (EACCES)."""

    def __init__(self, path, needed):
        self.path = path
        self.needed = needed
        super().__init__(f"permission denied on {path!r} (needed {needed!r})")


class RenameLoopError(MetadataError):
    """A dirrename would move a directory underneath itself."""

    def __init__(self, src, dst):
        self.src = src
        self.dst = dst
        super().__init__(f"rename loop: {src!r} -> {dst!r}")


class InvalidPathError(MetadataError):
    """Malformed path string (empty component, missing leading slash, ...)."""

    def __init__(self, path, reason):
        self.path = path
        self.reason = reason
        super().__init__(f"invalid path {path!r}: {reason}")


class TransactionAbort(MetadataError):
    """A (distributed) TafDB transaction aborted due to a conflict.

    Proxies retry aborted transactions with backoff; the abort/retry rate is
    the mechanism behind the contention collapse in Figure 4b and the win of
    delta records in Figures 14-16.
    """

    def __init__(self, reason="conflict", key=None):
        self.reason = reason
        self.key = key
        super().__init__(f"transaction aborted: {reason} (key={key!r})")


class RenameLockConflict(MetadataError):
    """Loop-detection found a directory already locked by another rename."""

    def __init__(self, path):
        self.path = path
        super().__init__(f"rename lock conflict on {path!r}")


class ServiceUnavailableError(MetadataError):
    """Raft group has no leader / server crashed; caller should retry."""

    def __init__(self, what="service"):
        self.what = what
        super().__init__(f"{what} temporarily unavailable")


class StaleReadError(MetadataError):
    """A replica could not serve a consistent read (applyIndex too old)."""

    def __init__(self, needed, have):
        self.needed = needed
        self.have = have
        super().__init__(f"stale replica: need applyIndex>={needed}, have {have}")
