"""Exception hierarchy shared by every metadata service in the reproduction.

The paper's proxy layer surfaces a small set of error conditions to clients
(missing path components, duplicate names, permission failures, rename loops
and transaction aborts).  All four systems — Mantle and the three baselines —
raise the same exception types so workloads and benchmarks can treat them
uniformly.

The full hierarchy (every class derives from :class:`MetadataError`, so
``except MetadataError`` catches anything a metadata operation can raise)::

    MetadataError                  base class; catch-all for client code
    ├── NoSuchPathError            ENOENT: a path component is missing
    ├── AlreadyExistsError         EEXIST: target name already taken
    ├── NotADirectoryError         ENOTDIR: non-final component is an object
    ├── IsADirectoryError          EISDIR: object op aimed at a directory
    ├── NotEmptyError              ENOTEMPTY: rmdir of a non-empty directory
    ├── PermissionDeniedError      EACCES: aggregated path permission failed
    ├── InvalidPathError           malformed path string (client-side)
    ├── RenameLoopError            dirrename would create a namespace cycle
    ├── RenameLockConflict         loop detection hit another rename's lock
    ├── TransactionAbort           TafDB optimistic-concurrency conflict
    ├── ServiceUnavailableError    no Raft leader / server crashed; retryable
    │   └── TransportError         live-runtime transport fault (retryable)
    │       ├── ConnectionLostError  TCP connect/reset/EOF mid-call
    │       ├── RPCTimeoutError      response deadline expired
    │       └── FrameError           truncated or malformed wire frame
    └── StaleReadError             replica applyIndex too old for the read

Retry semantics: ``TransactionAbort``, ``RenameLockConflict``,
``ServiceUnavailableError`` and ``StaleReadError`` are *transient* — proxies
retry them internally with backoff, and :class:`~repro.sim.stats.OpContext`
counts each retry.  The rest describe the namespace state and surface
directly to the caller; :class:`~repro.core.api.MantleClient` lets them
propagate (per-op in :meth:`~repro.core.api.MantleClient.batch`, where they
land in ``BatchResult.error`` instead of raising).

The :class:`TransportError` branch exists for the live asyncio runtime
(``repro/runtime/``): a dropped connection, an expired RPC deadline or a
truncated frame all map onto the same *logical* fault the simulator models
with a crashed host — "the service did not answer; retry" — so every retry
loop written against ``except ServiceUnavailableError`` handles live
transport faults without modification, and
:class:`~repro.runtime.client.LiveClient` raises the same exception types
:class:`~repro.core.api.MantleClient` does for the same conditions.

:func:`error_to_wire` / :func:`error_from_wire` round-trip this hierarchy
across the JSON wire protocol so a server-side exception re-raises as the
identical type (with its structured fields) in the calling client process.
"""


class MetadataError(Exception):
    """Base class for every error raised by a metadata service."""


class NoSuchPathError(MetadataError):
    """A path component does not exist (ENOENT)."""

    def __init__(self, path, component=None):
        self.path = path
        self.component = component
        detail = f" (missing component {component!r})" if component else ""
        super().__init__(f"no such path: {path!r}{detail}")


class AlreadyExistsError(MetadataError):
    """The target name already exists in its parent directory (EEXIST)."""

    def __init__(self, path):
        self.path = path
        super().__init__(f"already exists: {path!r}")


class NotADirectoryError(MetadataError):
    """A non-final path component resolved to an object (ENOTDIR)."""

    def __init__(self, path, component=None):
        self.path = path
        self.component = component
        super().__init__(f"not a directory: {path!r} at {component!r}")


class IsADirectoryError(MetadataError):
    """An object operation targeted a directory (EISDIR)."""

    def __init__(self, path):
        self.path = path
        super().__init__(f"is a directory: {path!r}")


class NotEmptyError(MetadataError):
    """rmdir on a directory that still has children (ENOTEMPTY)."""

    def __init__(self, path):
        self.path = path
        super().__init__(f"directory not empty: {path!r}")


class PermissionDeniedError(MetadataError):
    """Aggregated path permission check failed (EACCES)."""

    def __init__(self, path, needed):
        self.path = path
        self.needed = needed
        super().__init__(f"permission denied on {path!r} (needed {needed!r})")


class RenameLoopError(MetadataError):
    """A dirrename would move a directory underneath itself."""

    def __init__(self, src, dst):
        self.src = src
        self.dst = dst
        super().__init__(f"rename loop: {src!r} -> {dst!r}")


class InvalidPathError(MetadataError):
    """Malformed path string (empty component, missing leading slash, ...)."""

    def __init__(self, path, reason):
        self.path = path
        self.reason = reason
        super().__init__(f"invalid path {path!r}: {reason}")


class TransactionAbort(MetadataError):
    """A (distributed) TafDB transaction aborted due to a conflict.

    Proxies retry aborted transactions with backoff; the abort/retry rate is
    the mechanism behind the contention collapse in Figure 4b and the win of
    delta records in Figures 14-16.
    """

    def __init__(self, reason="conflict", key=None):
        self.reason = reason
        self.key = key
        super().__init__(f"transaction aborted: {reason} (key={key!r})")


class RenameLockConflict(MetadataError):
    """Loop-detection found a directory already locked by another rename."""

    def __init__(self, path):
        self.path = path
        super().__init__(f"rename lock conflict on {path!r}")


class ServiceUnavailableError(MetadataError):
    """Raft group has no leader / server crashed; caller should retry."""

    def __init__(self, what="service"):
        self.what = what
        super().__init__(f"{what} temporarily unavailable")


class StaleReadError(MetadataError):
    """A replica could not serve a consistent read (applyIndex too old)."""

    def __init__(self, needed, have):
        self.needed = needed
        self.have = have
        super().__init__(f"stale replica: need applyIndex>={needed}, have {have}")


class TransportError(ServiceUnavailableError):
    """A live-runtime transport fault.

    Deliberately a :class:`ServiceUnavailableError`: the simulator models
    "server did not answer" with crashed hosts, and every proxy retry loop
    is written against that type — subclassing makes a real TCP fault take
    the exact same retry path, with no live-only branches in domain code.
    """

    def __init__(self, what="transport", detail=""):
        self.detail = detail
        super().__init__(what)
        if detail:
            self.args = (f"{self.args[0]}: {detail}",)


class ConnectionLostError(TransportError):
    """TCP connect refused, reset, or EOF arrived mid-call."""

    def __init__(self, endpoint, detail=""):
        self.endpoint = endpoint
        super().__init__(f"connection to {endpoint}", detail)


class RPCTimeoutError(TransportError):
    """The per-call response deadline expired."""

    def __init__(self, endpoint, timeout_s=0.0):
        self.endpoint = endpoint
        self.timeout_s = timeout_s
        super().__init__(f"rpc to {endpoint}",
                         f"no response within {timeout_s:g}s")


class FrameError(TransportError):
    """A wire frame was truncated or failed to decode."""

    def __init__(self, detail):
        super().__init__("wire framing", detail)


#: Exception class -> attribute names, in constructor-argument order.  Every
#: attribute value must be JSON-encodable after the special cases handled in
#: :func:`error_to_wire` (Permission masks and RowKeys).
_WIRE_FIELDS = {
    NoSuchPathError: ("path", "component"),
    AlreadyExistsError: ("path",),
    NotADirectoryError: ("path", "component"),
    IsADirectoryError: ("path",),
    NotEmptyError: ("path",),
    PermissionDeniedError: ("path", "needed"),
    RenameLoopError: ("src", "dst"),
    InvalidPathError: ("path", "reason"),
    TransactionAbort: ("reason", "key"),
    RenameLockConflict: ("path",),
    StaleReadError: ("needed", "have"),
    ConnectionLostError: ("endpoint", "detail"),
    RPCTimeoutError: ("endpoint", "timeout_s"),
    FrameError: ("detail",),
    TransportError: ("what", "detail"),
    ServiceUnavailableError: ("what",),
}

_WIRE_CLASSES = {cls.__name__: cls for cls in _WIRE_FIELDS}


def error_to_wire(exc: MetadataError) -> dict:
    """Encode a metadata exception as a JSON-safe payload.

    The payload carries the concrete class name plus its constructor
    arguments, so :func:`error_from_wire` rebuilds the *same type* with the
    same structured fields — which is what lets a LiveClient surface
    server-side errors exactly as the in-process client would.
    """
    cls = type(exc)
    fields = _WIRE_FIELDS.get(cls)
    if fields is None:
        # Unknown subclass: degrade to the message under the base type.
        return {"error": "MetadataError", "args": [str(exc)]}
    args = []
    for field in fields:
        value = getattr(exc, field, None)
        if field == "needed" and cls is PermissionDeniedError \
                and value is not None:
            value = int(value)
        elif field == "key" and value is not None:
            value = [value.pid, value.name, value.ts]
        args.append(value)
    return {"error": cls.__name__, "args": args}


def error_from_wire(payload: dict) -> MetadataError:
    """Rebuild the exception :func:`error_to_wire` encoded."""
    cls = _WIRE_CLASSES.get(payload.get("error", ""))
    args = list(payload.get("args", []))
    if cls is None:
        return MetadataError(*(args or ["remote metadata error"]))
    if cls is PermissionDeniedError and len(args) > 1 \
            and args[1] is not None:
        from repro.types import Permission
        args[1] = Permission(args[1])
    elif cls is TransactionAbort and len(args) > 1 and args[1] is not None:
        from repro.tafdb.rows import RowKey
        args[1] = RowKey(*args[1])
    return cls(*args)
