"""Configuration for a Mantle deployment.

Every optimisation in §5 is an independent toggle so the Figure 16 ablation
(`Mantle-base`, `+pathcache`, `+raftlogbatch`, `+delta record`,
`+follower read`) can be expressed as configurations.
"""

from __future__ import annotations

import dataclasses

from typing import Optional

from repro.sim.host import CostModel, CostOverrides


@dataclasses.dataclass
class MantleConfig:
    """Tunable knobs for a Mantle cluster.

    Attributes mirror the paper's design points:

    * ``path_cache_k`` — number of trailing path levels excluded from
      TopDirPathCache (§5.1.1; production value 3, Figure 18 sweeps 1-5).
    * ``enable_path_cache`` — TopDirPathCache on/off ('+pathcache').
    * ``enable_follower_read`` / ``num_learners`` — replica lookup offload
      (§5.1.3, '+follower read', Figure 19b '+learners').
    * ``enable_delta_records`` — out-of-place attribute updates (§5.2.1).
    * ``delta_activation_threshold`` — delta records activate only under
      sustained contention: this many aborts on one directory within
      ``delta_activation_window_us`` flips the directory to delta mode.
    * ``enable_raft_batching`` / ``raft_batch_window_us`` — §5.2.3.
    """

    # --- cluster shape (Table 2) -----------------------------------------
    num_db_servers: int = 18
    num_db_shards: int = 72
    num_proxies: int = 4
    index_replicas: int = 3
    num_learners: int = 0
    index_cores: int = 64
    db_cores: int = 32
    proxy_cores: int = 32

    # --- §5.1 lookup optimisations ---------------------------------------
    enable_path_cache: bool = True
    path_cache_k: int = 3
    enable_follower_read: bool = True
    #: Invalidator poll period for draining RemovalList into cache removals.
    invalidator_period_us: float = 200.0

    # --- §5.2 directory modification optimisations ------------------------
    enable_delta_records: bool = True
    #: Aborts-per-directory within the window that activate delta mode.
    delta_activation_threshold: int = 3
    delta_activation_window_us: float = 1_000_000.0
    #: Background compaction period for delta records.
    compaction_period_us: float = 5_000.0
    enable_raft_batching: bool = True
    raft_batch_window_us: float = 100.0
    raft_max_batch: int = 64
    #: Snapshot + compact the IndexNode Raft log every N applied entries
    #: (keeps long-lived namespaces' logs bounded; 0 disables).
    raft_snapshot_threshold: int = 1024

    # --- Figure 20 study: optional proxy-side metadata caching -------------
    #: Entries of an AM-Cache-style lookup cache in each proxy.  Disabled by
    #: default: the paper's point is that Mantle's single-RPC lookups leave
    #: little for client caching to win (§6.5 "Adding metadata caching").
    client_cache_capacity: int = 0

    # --- permissions --------------------------------------------------------
    #: Enforce Lazy-Hybrid aggregated path permissions: traversal requires
    #: EXECUTE along the whole prefix, mutations additionally require WRITE
    #: on the parent.  The aggregation itself (§5.1.1) always happens; this
    #: flag controls whether the proxy rejects on it.
    enforce_permissions: bool = True

    # --- retry policy ------------------------------------------------------
    max_txn_retries: int = 64
    max_rename_retries: int = 64

    # --- observability ------------------------------------------------------
    #: Attach a live span tracer (:mod:`repro.sim.trace`) to this
    #: deployment's simulator.  Purely observational: the tracer never
    #: creates simulator events, so simulated results are identical with it
    #: on or off.  ``MANTLE_TRACE=1`` enables tracing process-wide instead.
    tracing: bool = False
    #: Attach a windowed time-series registry (:mod:`repro.sim.telemetry`)
    #: to this deployment's simulator.  Same contract as ``tracing``: pure
    #: bookkeeping, results identical either way.  ``MANTLE_TELEMETRY=1``
    #: enables it process-wide instead.
    telemetry: bool = False
    #: Telemetry sampling window in simulated microseconds (10 ms sim).
    telemetry_window_us: float = 10_000.0

    # --- costs -------------------------------------------------------------
    costs: CostModel = dataclasses.field(default_factory=CostModel)
    #: What-if cost overrides (:class:`~repro.sim.host.CostOverrides`):
    #: per-component speedup factors applied to ``costs`` when the system
    #: is built.  ``None`` (or empty) leaves the cost model untouched.
    #: ``mantle-exp whatif --speedup raft.fsync=2x`` reruns through this.
    overrides: Optional[CostOverrides] = None

    def copy(self, **overrides) -> "MantleConfig":
        dup = dataclasses.replace(self)
        for key, value in overrides.items():
            if not hasattr(dup, key):
                raise AttributeError(f"unknown MantleConfig field {key!r}")
            setattr(dup, key, value)
        return dup

    @classmethod
    def base(cls) -> "MantleConfig":
        """Mantle-base from Figure 16: every §5 optimisation disabled."""
        return cls(
            enable_path_cache=False,
            enable_follower_read=False,
            enable_delta_records=False,
            enable_raft_batching=False,
        )

    @classmethod
    def small(cls, **overrides) -> "MantleConfig":
        """A laptop-friendly cluster shape for interactive use and tests.

        Three DB servers with six shards, two proxies and a three-replica
        IndexNode group — the default behind ``MantleClient()``.
        """
        return cls(num_db_servers=3, num_db_shards=6, num_proxies=2,
                   index_replicas=3, num_learners=0,
                   index_cores=8, db_cores=8, proxy_cores=8).copy(**overrides)

    @classmethod
    def paper_scale(cls, **overrides) -> "MantleConfig":
        """The paper's Table 2 deployment shape (the dataclass defaults)."""
        return cls().copy(**overrides)

    def effective_costs(self) -> CostModel:
        """The cost model a built system actually runs with: ``costs``
        with any what-if ``overrides`` applied."""
        if self.overrides:
            return self.overrides.apply(self.costs)
        return self.costs

    def validate(self) -> None:
        if self.path_cache_k < 0:
            raise ValueError("path_cache_k must be >= 0")
        if self.index_replicas < 1:
            raise ValueError("need at least one IndexNode replica")
        if self.num_db_shards < 1 or self.num_db_servers < 1:
            raise ValueError("need at least one DB shard and server")
        if self.num_db_shards % self.num_db_servers != 0:
            raise ValueError("shards must divide evenly across DB servers")
        if self.telemetry_window_us <= 0:
            raise ValueError("telemetry_window_us must be positive")
