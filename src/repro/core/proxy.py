"""Mantle's proxy layer: per-operation orchestration (§4, Figure 5).

Each proxy is a stateless request coordinator.  For every metadata operation
it performs the paper's division of labour:

* **lookup** — a single RPC to an IndexNode replica (leader, or any
  follower/learner when follower read is enabled);
* **execution** — TafDB reads/transactions (with the delta-record fast path
  under contention) plus, for directory mutations, one Raft-replicated
  IndexNode command;
* **loop detection** — for dirrename only, folded into the IndexNode
  preparation RPC (which is why Mantle "records zero lookup time in
  dirrename": resolution is merged with loop detection).

Transaction aborts retry with exponential backoff and feed the contention
registry that activates delta records (§5.2.1).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro import paths
from repro.errors import (
    AlreadyExistsError,
    IsADirectoryError,
    MetadataError,
    NoSuchPathError,
    NotADirectoryError,
    NotEmptyError,
    PermissionDeniedError,
    RenameLockConflict,
    ServiceUnavailableError,
    TransactionAbort,
)
from repro.sim.stats import (
    PHASE_EXECUTION,
    PHASE_LOOKUP,
    PHASE_LOOP_DETECT,
    OpContext,
)
from repro.tafdb.rows import AttrDelta, Dirent, attr_key, delta_key, dirent_key
from repro.tafdb.shard import WriteIntent
from repro.types import AttrMeta, EntryKind, Permission, make_stat


@dataclasses.dataclass
class _ParentDelta:
    """Pending attribute change for one parent directory."""

    link_delta: int = 0
    entry_delta: int = 0


class MantleProxy:
    """One stateless proxy endpoint of a Mantle deployment."""

    def __init__(self, service, proxy_id: int):
        self.service = service
        self.proxy_id = proxy_id
        self.sim = service.sim
        self.network = service.network
        self.config = service.config
        self.costs = service.config.costs
        #: Execution environment (RPC, clock, host work): the system's
        #: SimRuntime in a simulated deployment, an AsyncioRuntime inside a
        #: ``mantle-serve`` proxy process.  Every op_* generator below goes
        #: through this seam only, which is what lets the identical
        #: orchestration code run live (docs/runtime.md).
        self.runtime = service.runtime
        self.host = service.proxy_host(proxy_id)
        self.db = service.tafdb.client()
        self._replica_rr = 0
        self._outstanding_lookups = 0
        #: §5.1.3: lookups spill to followers/learners only "when the
        #: leader node is under heavy load" — approximated by how many of
        #: this proxy's lookups are already in flight.
        self.follower_spill_threshold = 4
        #: Optional Figure 20 metadata cache (off in Mantle's design).
        self.client_cache = None
        if self.config.client_cache_capacity > 0:
            from repro.structures.lru import LRUCache
            self.client_cache = LRUCache(self.config.client_cache_capacity)

    # -- IndexNode routing ----------------------------------------------------

    def _leader_service(self):
        return self.service.leader_service()

    def _lookup_service(self):
        """Pick a replica for a lookup.

        Leader-only without follower read; with it, the leader serves until
        this proxy has ``follower_spill_threshold`` lookups already in
        flight, then requests round-robin across every replica (leader,
        followers, learners) — §5.1.3's load-conditional offload.
        """
        if not self.config.enable_follower_read:
            return self._leader_service()
        if self._outstanding_lookups < self.follower_spill_threshold:
            return self._leader_service()
        services = self.service.lookup_services()
        self._replica_rr += 1
        return services[self._replica_rr % len(services)]

    @staticmethod
    def _cache_key(path: str, want: str):
        """AM-Cache-style key: the *directory* being resolved, so sibling
        objects in one directory share an entry."""
        if want == "parent":
            parent_path, name = paths.parent_and_name(path)
            return parent_path, name
        return paths.normalize(path), None

    def _index_lookup(self, path: str, want: str, ctx: OpContext):
        """Single-RPC path resolution with leader-failover retry."""
        cache_key = final_name = None
        if self.client_cache is not None:
            cache_key, final_name = self._cache_key(path, want)
            cached = self.client_cache.get(cache_key)
            if cached is not None:
                yield from self.runtime.work(self.host, self.costs.cache_hit_us)
                target_id, permission, depth = cached
                from repro.indexnode.state import LookupOutcome
                return LookupOutcome(
                    path=path, target_id=target_id, final_name=final_name,
                    permission=permission, depth=depth, cache_hit=True,
                    bypassed_cache=False, index_probes=0, cache_probes=0)
        for attempt in range(4):
            service = self._lookup_service()
            self._outstanding_lookups += 1
            try:
                outcome = yield from self.runtime.rpc(
                    service, "lookup", path, want, ctx=ctx)
                if self.client_cache is not None:
                    self.client_cache.put(
                        cache_key,
                        (outcome.target_id, outcome.permission,
                         outcome.depth))
                return outcome
            except ServiceUnavailableError:
                ctx.retries += 1
                yield from self.runtime.sleep(self.db.backoff_us(attempt))
            finally:
                self._outstanding_lookups -= 1
        raise ServiceUnavailableError("indexnode")

    def _index_mutate(self, command, ctx: OpContext):
        for attempt in range(4):
            try:
                service = self._leader_service()
                result = yield from self.runtime.rpc(
                    service, "mutate", command, ctx=ctx)
                return result
            except ServiceUnavailableError:
                ctx.retries += 1
                yield from self.runtime.sleep(self.db.backoff_us(attempt))
        raise ServiceUnavailableError("indexnode leader")

    def _require(self, outcome, path: str, write: bool = False) -> None:
        """Enforce the Lazy-Hybrid unified path permission (§5.1.1).

        Traversal needs EXECUTE across the whole prefix; mutating a
        directory's contents additionally needs WRITE.  The mask arrives
        pre-intersected from the IndexNode (or its caches), so enforcement
        is a single AND here.
        """
        if not self.config.enforce_permissions:
            return
        needed = Permission.EXECUTE
        if write:
            needed |= Permission.WRITE
        if (outcome.permission & needed) != needed:
            raise PermissionDeniedError(path, needed)

    # -- TafDB transaction helper with delta-record fast path ----------------------

    def _txn_with_parents(self, static_intents: List[WriteIntent],
                          parent_deltas: Dict[int, _ParentDelta],
                          semantic: Dict, ctx: OpContext,
                          force_delta: bool = False):
        """Run one metadata transaction, retrying on contention.

        ``static_intents`` are the dirent/attr-row changes of the operation
        itself; ``parent_deltas`` the attribute adjustments of the affected
        parent directories.  Each attempt builds parent updates fresh:
        through conflict-free delta records when the directory is in delta
        mode, or read-modify-write with version expectations otherwise.
        ``force_delta`` always uses delta records (object create/delete:
        pure counter adjustments where the append is also the fast path —
        no parent read, and the dirent insert plus the delta share the
        parent's shard, so the whole transaction is one RPC).

        ``semantic`` maps a row key to an exception factory: an abort caused
        by that key is a real application error (EEXIST/ENOENT), not
        contention, and is raised immediately without retry.
        """
        registry = self.service.tafdb.contention
        use_delta_always = force_delta and self.config.enable_delta_records
        attempt = 0
        while True:
            intents = list(static_intents)
            for parent_id, pending in parent_deltas.items():
                if (use_delta_always
                        or registry.is_delta_mode(parent_id, self.runtime.now)):
                    intents.append(WriteIntent(
                        delta_key(parent_id, self.db.next_delta_ts()),
                        "insert",
                        AttrDelta(link_delta=pending.link_delta,
                                  entry_delta=pending.entry_delta,
                                  mtime=self.runtime.now)))
                else:
                    row = yield from self.db.read(attr_key(parent_id), ctx=ctx)
                    if row is None:
                        raise NoSuchPathError(f"dir id {parent_id}")
                    attrs = row.value.copy()
                    attrs.link_count += pending.link_delta
                    attrs.entry_count += pending.entry_delta
                    attrs.mtime = self.runtime.now
                    intents.append(WriteIntent(
                        attr_key(parent_id), "update", attrs,
                        expect_version=row.version))
            try:
                yield from self.db.execute_txn(intents, ctx=ctx)
                return
            except TransactionAbort as exc:
                factory = semantic.get(exc.key) if exc.key is not None else None
                if factory is not None and exc.reason in ("exists", "missing"):
                    raise factory() from exc
                if exc.key is not None and exc.key.is_attr:
                    registry.note_abort(exc.key.pid, self.runtime.now)
                ctx.retries += 1
                attempt += 1
                if attempt > self.config.max_txn_retries:
                    raise
                yield from self.runtime.sleep(self.db.backoff_us(attempt))

    # -- object operations ------------------------------------------------------------

    def op_create(self, path: str, ctx: OpContext, size: int = 0):
        yield from self.runtime.work(self.host, self.costs.proxy_overhead_us)
        ctx.begin(PHASE_LOOKUP, self.runtime.now)
        parent = yield from self._index_lookup(path, "parent", ctx)
        ctx.end(PHASE_LOOKUP, self.runtime.now)
        self._require(parent, path, write=True)
        ctx.begin(PHASE_EXECUTION, self.runtime.now)
        obj_id = self.service.ids.next()
        now = self.runtime.now
        dirent = Dirent(id=obj_id, kind=EntryKind.OBJECT,
                        attrs=AttrMeta(id=obj_id, kind=EntryKind.OBJECT,
                                       size=size, ctime=now, mtime=now))
        key = dirent_key(parent.target_id, parent.final_name)
        yield from self._txn_with_parents(
            [WriteIntent(key, "insert", dirent)],
            {parent.target_id: _ParentDelta(entry_delta=1)},
            {key: lambda: AlreadyExistsError(path)},
            ctx, force_delta=True)
        ctx.end(PHASE_EXECUTION, self.runtime.now)
        return obj_id

    def _read_dirent(self, parent, path: str, ctx: OpContext):
        row = yield from self.db.read(
            dirent_key(parent.target_id, parent.final_name), ctx=ctx)
        if row is None:
            raise NoSuchPathError(path, parent.final_name)
        return row

    def op_delete(self, path: str, ctx: OpContext):
        yield from self.runtime.work(self.host, self.costs.proxy_overhead_us)
        ctx.begin(PHASE_LOOKUP, self.runtime.now)
        parent = yield from self._index_lookup(path, "parent", ctx)
        ctx.end(PHASE_LOOKUP, self.runtime.now)
        self._require(parent, path, write=True)
        ctx.begin(PHASE_EXECUTION, self.runtime.now)
        row = yield from self._read_dirent(parent, path, ctx)
        if row.value.is_dir:
            raise IsADirectoryError(path)
        key = dirent_key(parent.target_id, parent.final_name)
        yield from self._txn_with_parents(
            [WriteIntent(key, "delete", expect_version=row.version)],
            {parent.target_id: _ParentDelta(entry_delta=-1)},
            {key: lambda: NoSuchPathError(path)},
            ctx, force_delta=True)
        ctx.end(PHASE_EXECUTION, self.runtime.now)
        return row.value.id

    def op_objstat(self, path: str, ctx: OpContext):
        yield from self.runtime.work(self.host, self.costs.proxy_overhead_us)
        ctx.begin(PHASE_LOOKUP, self.runtime.now)
        parent = yield from self._index_lookup(path, "parent", ctx)
        ctx.end(PHASE_LOOKUP, self.runtime.now)
        self._require(parent, path)
        ctx.begin(PHASE_EXECUTION, self.runtime.now)
        row = yield from self._read_dirent(parent, path, ctx)
        value = row.value
        if value.is_dir:
            attrs = yield from self.db.read_dir_attrs(value.id, ctx=ctx)
            if attrs is None:
                raise NoSuchPathError(path)
        else:
            attrs = value.attrs
        ctx.end(PHASE_EXECUTION, self.runtime.now)
        return make_stat(paths.normalize(path), attrs)

    # -- directory read operations -----------------------------------------------------

    def op_dirstat(self, path: str, ctx: OpContext):
        yield from self.runtime.work(self.host, self.costs.proxy_overhead_us)
        ctx.begin(PHASE_LOOKUP, self.runtime.now)
        target = yield from self._index_lookup(path, "dir", ctx)
        ctx.end(PHASE_LOOKUP, self.runtime.now)
        self._require(target, path)
        ctx.begin(PHASE_EXECUTION, self.runtime.now)
        attrs = yield from self.db.read_dir_attrs(target.target_id, ctx=ctx)
        if attrs is None:
            raise NoSuchPathError(path)
        ctx.end(PHASE_EXECUTION, self.runtime.now)
        return make_stat(paths.normalize(path), attrs)

    def op_readdir(self, path: str, ctx: OpContext, limit: Optional[int] = None,
                   start_after: Optional[str] = None):
        yield from self.runtime.work(self.host, self.costs.proxy_overhead_us)
        ctx.begin(PHASE_LOOKUP, self.runtime.now)
        target = yield from self._index_lookup(path, "dir", ctx)
        ctx.end(PHASE_LOOKUP, self.runtime.now)
        self._require(target, path)
        ctx.begin(PHASE_EXECUTION, self.runtime.now)
        page = yield from self.db.scan_children(
            target.target_id, limit=limit, start_after=start_after, ctx=ctx)
        ctx.end(PHASE_EXECUTION, self.runtime.now)
        return [name for name, _ in page]

    # -- directory modifications (§5.2) --------------------------------------------------

    def op_mkdir(self, path: str, ctx: OpContext,
                 permission: Permission = Permission.ALL):
        yield from self.runtime.work(self.host, self.costs.proxy_overhead_us)
        ctx.begin(PHASE_LOOKUP, self.runtime.now)
        parent = yield from self._index_lookup(path, "parent", ctx)
        ctx.end(PHASE_LOOKUP, self.runtime.now)
        self._require(parent, path, write=True)
        ctx.begin(PHASE_EXECUTION, self.runtime.now)
        dir_id = self.service.ids.next()
        now = self.runtime.now
        key = dirent_key(parent.target_id, parent.final_name)
        dirent = Dirent(id=dir_id, kind=EntryKind.DIRECTORY,
                        permission=permission)
        attrs = AttrMeta(id=dir_id, kind=EntryKind.DIRECTORY,
                         ctime=now, mtime=now, permission=permission)
        yield from self._txn_with_parents(
            [WriteIntent(key, "insert", dirent),
             WriteIntent(attr_key(dir_id), "insert", attrs)],
            {parent.target_id: _ParentDelta(link_delta=1, entry_delta=1)},
            {key: lambda: AlreadyExistsError(path)},
            ctx)
        # Synchronize the access metadata into the IndexNode (one Raft commit).
        yield from self._index_mutate(
            ("mkdir", parent.target_id, parent.final_name, dir_id,
             int(permission)), ctx)
        ctx.end(PHASE_EXECUTION, self.runtime.now)
        return dir_id

    def op_rmdir(self, path: str, ctx: OpContext):
        yield from self.runtime.work(self.host, self.costs.proxy_overhead_us)
        ctx.begin(PHASE_LOOKUP, self.runtime.now)
        parent = yield from self._index_lookup(path, "parent", ctx)
        ctx.end(PHASE_LOOKUP, self.runtime.now)
        self._require(parent, path, write=True)
        ctx.begin(PHASE_EXECUTION, self.runtime.now)
        row = yield from self._read_dirent(parent, path, ctx)
        if not row.value.is_dir:
            raise NotADirectoryError(path, parent.final_name)
        dir_id = row.value.id
        non_empty = yield from self.db.has_children(dir_id, ctx=ctx)
        if non_empty:
            raise NotEmptyError(path)
        key = dirent_key(parent.target_id, parent.final_name)
        yield from self._txn_with_parents(
            [WriteIntent(key, "delete", expect_version=row.version),
             WriteIntent(attr_key(dir_id), "delete")],
            {parent.target_id: _ParentDelta(link_delta=-1, entry_delta=-1)},
            {key: lambda: NoSuchPathError(path)},
            ctx)
        yield from self._index_mutate(
            ("rmdir", parent.target_id, parent.final_name,
             paths.normalize(path)), ctx)
        self._client_cache_invalidate(paths.normalize(path))
        ctx.end(PHASE_EXECUTION, self.runtime.now)
        return dir_id

    def _client_cache_invalidate(self, prefix: str) -> None:
        if self.client_cache is not None:
            self.client_cache.invalidate_where(
                lambda key: paths.is_prefix(prefix, key))

    def op_setattr(self, path: str, permission: Permission, ctx: OpContext):
        yield from self.runtime.work(self.host, self.costs.proxy_overhead_us)
        ctx.begin(PHASE_LOOKUP, self.runtime.now)
        target = yield from self._index_lookup(path, "dir", ctx)
        ctx.end(PHASE_LOOKUP, self.runtime.now)
        ctx.begin(PHASE_EXECUTION, self.runtime.now)
        parent = yield from self._index_lookup(path, "parent", ctx)
        # setattr is owner-gated in real systems (chmod), not write-gated —
        # gating on the target's own mask would lock a directory forever.
        # We model ownership as always-satisfied and only require traversal.
        self._require(parent, path)
        row = yield from self.db.read(attr_key(target.target_id), ctx=ctx)
        if row is None:
            raise NoSuchPathError(path)
        attrs = row.value.copy()
        attrs.permission = permission
        attrs.mtime = self.runtime.now
        yield from self._txn_with_parents(
            [WriteIntent(attr_key(target.target_id), "update", attrs,
                         expect_version=row.version)],
            {}, {}, ctx)
        yield from self._index_mutate(
            ("setperm", parent.target_id, parent.final_name,
             int(permission), paths.normalize(path)), ctx)
        self._client_cache_invalidate(paths.normalize(path))
        ctx.end(PHASE_EXECUTION, self.runtime.now)
        return make_stat(paths.normalize(path), attrs)

    def op_dirrename(self, src: str, dst: str, ctx: OpContext):
        """Cross-directory rename, Figure 9's full workflow."""
        yield from self.runtime.work(self.host, self.costs.proxy_overhead_us)
        owner = self.service.next_uuid()
        # Resolution is merged with loop detection on the IndexNode, so the
        # whole preparation is accounted to the loop-detection phase.
        ctx.begin(PHASE_LOOP_DETECT, self.runtime.now)
        prep = None
        for attempt in range(self.config.max_rename_retries + 1):
            try:
                service = self._leader_service()
                prep = yield from self.runtime.rpc(
                    service, "rename_prepare", src, dst, owner, ctx=ctx)
                break
            except RenameLockConflict:
                ctx.retries += 1
                yield from self.runtime.sleep(self.db.backoff_us(attempt))
            except ServiceUnavailableError:
                ctx.retries += 1
                yield from self.runtime.sleep(self.db.backoff_us(attempt))
        ctx.end(PHASE_LOOP_DETECT, self.runtime.now)
        if prep is None:
            raise RenameLockConflict(src)
        if self.config.enforce_permissions:
            needed = Permission.EXECUTE | Permission.WRITE
            if (prep.permission & needed) != needed:
                yield from self._index_mutate(
                    ("rename_abort", prep.src_pid, prep.src_name, owner,
                     prep.src_path), ctx)
                raise PermissionDeniedError(src, needed)

        ctx.begin(PHASE_EXECUTION, self.runtime.now)
        src_key = dirent_key(prep.src_pid, prep.src_name)
        dst_key = dirent_key(prep.dst_parent_id, prep.dst_name)
        moved = Dirent(id=prep.src_id, kind=EntryKind.DIRECTORY,
                       permission=prep.permission)
        parent_deltas: Dict[int, _ParentDelta] = {}
        if prep.src_pid == prep.dst_parent_id:
            parent_deltas[prep.src_pid] = _ParentDelta()  # mtime-only
        else:
            parent_deltas[prep.src_pid] = _ParentDelta(link_delta=-1,
                                                       entry_delta=-1)
            parent_deltas[prep.dst_parent_id] = _ParentDelta(link_delta=1,
                                                             entry_delta=1)
        try:
            yield from self._txn_with_parents(
                [WriteIntent(src_key, "delete"),
                 WriteIntent(dst_key, "insert", moved)],
                parent_deltas,
                {dst_key: lambda: AlreadyExistsError(dst),
                 src_key: lambda: NoSuchPathError(src)},
                ctx)
        except MetadataError:
            # Release the rename lock before surfacing the error.
            yield from self._index_mutate(
                ("rename_abort", prep.src_pid, prep.src_name, owner,
                 prep.src_path), ctx)
            ctx.end(PHASE_EXECUTION, self.runtime.now)
            raise
        yield from self._index_mutate(
            ("rename_commit", prep.src_pid, prep.src_name,
             prep.dst_parent_id, prep.dst_name), ctx)
        self._client_cache_invalidate(prep.src_path)
        ctx.end(PHASE_EXECUTION, self.runtime.now)
        return prep.src_id
