"""Assembly of a complete Mantle deployment (Figure 5).

One :class:`MantleSystem` wires together the simulated cluster: the shared
TafDB, the per-namespace IndexNode Raft group (leader + followers +
optional learners), and a fleet of stateless proxies.  It implements the
system-agnostic :class:`~repro.baselines.base.MetadataSystem` interface used
by every workload and benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.base import IdAllocator, MetadataSystem
from repro.core.config import MantleConfig
from repro.core.proxy import MantleProxy
from repro.errors import NoSuchPathError
from repro.indexnode.server import IndexNodeService
from repro.indexnode.state import IndexNodeState
from repro.paths import parent_and_name
from repro.raft.group import RaftGroup
from repro.raft.node import RaftConfig
from repro.sim.core import Simulator
from repro.sim.host import Host
from repro.sim.network import Network
from repro.tafdb.cluster import TafDBCluster
from repro.tafdb.rows import Dirent, attr_key, dirent_key
from repro.tafdb.shard import WriteIntent
from repro.types import ROOT_ID, AttrMeta, EntryKind


class MantleSystem(MetadataSystem):
    """A full simulated Mantle deployment for one namespace."""

    name = "mantle"

    def __init__(self, config: Optional[MantleConfig] = None,
                 sim: Optional[Simulator] = None,
                 network: Optional[Network] = None, seed: int = 7,
                 tafdb: Optional[TafDBCluster] = None,
                 ids: Optional[IdAllocator] = None,
                 root_id: int = ROOT_ID,
                 namespace: str = "default",
                 index_hosts: Optional[List[Host]] = None):
        """Build one namespace's Mantle service.

        By default everything (simulator, network, TafDB) is private; a
        :class:`~repro.core.multitenant.MantleDeployment` passes shared
        ``sim``/``network``/``tafdb``/``ids`` plus a per-namespace
        ``root_id``, reproducing the paper's multi-namespace architecture
        (shared TafDB, one IndexNode Raft group per namespace, §4/§7).
        ``index_hosts`` allows co-locating several namespaces' IndexNode
        replicas on shared physical servers (§7.2).
        """
        self.config = config or MantleConfig()
        self.config.validate()
        # What-if overrides scale the cost model once, here; the scaled
        # model then threads through hosts, network, Raft and TafDB like
        # any other CostModel, so an override rerun exercises the exact
        # machinery of a hand-calibrated deployment.
        costs = self.config.effective_costs()
        sim = sim or Simulator()
        if self.config.tracing and not sim.tracer.enabled:
            from repro.sim.trace import Tracer
            sim.tracer = Tracer()
            sim.tracer.bind(sim)
        if self.config.telemetry and not sim.telemetry.enabled:
            from repro.sim.telemetry import Telemetry
            sim.telemetry = Telemetry(
                window_us=self.config.telemetry_window_us)
        network = network or Network(sim, one_way_us=costs.net_one_way_us)
        super().__init__(sim, network)
        self.costs = costs
        self.namespace = namespace
        if namespace != "default":
            self.tenant = namespace
        self.root_id = root_id

        self.tafdb = tafdb or TafDBCluster(
            sim, network,
            num_servers=self.config.num_db_servers,
            num_shards=self.config.num_db_shards,
            cores=self.config.db_cores,
            costs=costs,
            compaction_period_us=self.config.compaction_period_us,
            delta_threshold=self.config.delta_activation_threshold,
            delta_window_us=self.config.delta_activation_window_us,
            deltas_enabled=self.config.enable_delta_records)
        self._owns_tafdb = tafdb is None

        raft_config = RaftConfig(
            batching_enabled=self.config.enable_raft_batching,
            batch_window_us=self.config.raft_batch_window_us,
            max_batch=self.config.raft_max_batch,
            snapshot_threshold=self.config.raft_snapshot_threshold)
        replicas = self.config.index_replicas + self.config.num_learners
        if index_hosts is None:
            index_hosts = [
                Host(sim, f"{namespace}-indexnode-{i}",
                     cores=self.config.index_cores, fsync_us=costs.fsync_us)
                for i in range(replicas)
            ]
        elif len(index_hosts) != replicas:
            raise ValueError("index_hosts must cover voters + learners")
        self.index_group = RaftGroup(
            sim, network, index_hosts,
            state_machine_factory=lambda nid: IndexNodeState(
                cache_k=self.config.path_cache_k,
                cache_enabled=self.config.enable_path_cache,
                root_id=root_id),
            num_voters=self.config.index_replicas,
            num_learners=self.config.num_learners,
            config=raft_config, costs=costs, seed=seed)
        self.index_services: Dict[int, IndexNodeService] = {
            nid: IndexNodeService(
                node.host, node, node.state_machine, costs,
                purge_period_us=self.config.invalidator_period_us)
            for nid, node in self.index_group.nodes.items()
        }

        self.ids = ids or IdAllocator(start=root_id + 1)
        self.proxies = [MantleProxy(self, i)
                        for i in range(self.config.num_proxies)]
        self._proxy_rr = 0
        self._bulk_dirs: Dict[str, int] = {"/": root_id}
        self._bulk_seq = 0
        self._install_root()

    # -- lifecycle ----------------------------------------------------------------

    def _install_root(self) -> None:
        """Install the namespace root's attribute row directly in TafDB."""
        self._bulk_execute(self.root_id, [WriteIntent(
            attr_key(self.root_id), "insert",
            AttrMeta(id=self.root_id, kind=EntryKind.DIRECTORY))])

    def startup(self) -> None:
        """Elect the IndexNode leader; must run before submitting ops."""
        self.sim.run_process(self.index_group.wait_for_leader())

    def shutdown(self) -> None:
        for service in self.index_services.values():
            service.stop()
        self.index_group.stop()
        if self._owns_tafdb:
            self.tafdb.stop_compactors()

    # -- routing ---------------------------------------------------------------------

    def proxy(self) -> MantleProxy:
        self._proxy_rr += 1
        return self.proxies[self._proxy_rr % len(self.proxies)]

    def proxy_host(self, proxy_id: int) -> Host:
        """The execution host backing proxy ``proxy_id``.

        Simulated deployments build a fresh :class:`~repro.sim.host.Host`;
        the live facade overrides this to hand out the process's single
        :class:`~repro.runtime.live.LiveHost`.
        """
        return Host(self.sim, f"proxy-{proxy_id}",
                    cores=self.config.proxy_cores)

    def leader_service(self) -> IndexNodeService:
        """The RPC target for the current IndexNode leader (raises
        :class:`~repro.errors.ServiceUnavailableError` mid-election)."""
        leader = self.index_group.leader_or_raise()
        return self.index_services[leader.id]

    def lookup_services(self) -> List[IndexNodeService]:
        return [svc for svc in self.index_services.values()
                if not svc.host.crashed]

    # -- MetadataSystem operations ------------------------------------------------------

    def op_create(self, path, ctx):
        result = yield from self.proxy().op_create(path, ctx=ctx)
        return result

    def op_delete(self, path, ctx):
        result = yield from self.proxy().op_delete(path, ctx=ctx)
        return result

    def op_objstat(self, path, ctx):
        result = yield from self.proxy().op_objstat(path, ctx=ctx)
        return result

    def op_dirstat(self, path, ctx):
        result = yield from self.proxy().op_dirstat(path, ctx=ctx)
        return result

    def op_readdir(self, path, ctx):
        result = yield from self.proxy().op_readdir(path, ctx=ctx)
        return result

    def op_mkdir(self, path, ctx):
        result = yield from self.proxy().op_mkdir(path, ctx=ctx)
        return result

    def op_rmdir(self, path, ctx):
        result = yield from self.proxy().op_rmdir(path, ctx=ctx)
        return result

    def op_dirrename(self, src, dst, ctx):
        result = yield from self.proxy().op_dirrename(src, dst, ctx=ctx)
        return result

    def op_setattr(self, path, permission, ctx):
        result = yield from self.proxy().op_setattr(path, permission, ctx=ctx)
        return result

    # -- bulk loading ----------------------------------------------------------------------

    def _bulk_execute(self, pid: int, intents) -> None:
        shard_id = self.tafdb.partitioner.shard_of(pid)
        server = self.tafdb.servers[
            self.tafdb.partitioner.server_of_shard(shard_id)]
        self._bulk_seq += 1
        server.shard(shard_id).execute(f"bulk-{self._bulk_seq}", intents)

    def _bulk_parent(self, path: str):
        parent_path, name = parent_and_name(path)
        pid = self._bulk_dirs.get(parent_path)
        if pid is None:
            raise NoSuchPathError(path, parent_path)
        return parent_path, name, pid

    def _bulk_bump_parent(self, pid: int, link_delta: int, entry_delta: int):
        shard_id = self.tafdb.partitioner.shard_of(pid)
        shard = self.tafdb.servers[
            self.tafdb.partitioner.server_of_shard(shard_id)].shard(shard_id)
        row = shard.read(attr_key(pid))
        if row is None:
            raise NoSuchPathError(f"dir id {pid}")
        attrs = row.value.copy()
        attrs.link_count += link_delta
        attrs.entry_count += entry_delta
        self._bulk_execute(pid, [WriteIntent(
            attr_key(pid), "update", attrs, expect_version=row.version)])

    def bulk_mkdir(self, path: str) -> int:
        """Install one directory without simulated cost (pre-population)."""
        from repro.paths import normalize
        path = normalize(path)
        if path in self._bulk_dirs:
            return self._bulk_dirs[path]
        _parent_path, name, pid = self._bulk_parent(path)
        dir_id = self.ids.next()
        self._bulk_execute(pid, [WriteIntent(
            dirent_key(pid, name), "insert",
            Dirent(id=dir_id, kind=EntryKind.DIRECTORY))])
        self._bulk_execute(dir_id, [WriteIntent(
            attr_key(dir_id), "insert",
            AttrMeta(id=dir_id, kind=EntryKind.DIRECTORY))])
        self._bulk_bump_parent(pid, 1, 1)
        for node in self.index_group.nodes.values():
            node.state_machine.bulk_insert_dir(pid, name, dir_id)
        self._bulk_dirs[path] = dir_id
        return dir_id

    def bulk_create(self, path: str, size: int = 0) -> int:
        from repro.paths import normalize
        path = normalize(path)
        _parent_path, name, pid = self._bulk_parent(path)
        obj_id = self.ids.next()
        self._bulk_execute(pid, [WriteIntent(
            dirent_key(pid, name), "insert",
            Dirent(id=obj_id, kind=EntryKind.OBJECT,
                   attrs=AttrMeta(id=obj_id, kind=EntryKind.OBJECT,
                                  size=size)))])
        self._bulk_bump_parent(pid, 0, 1)
        return obj_id
