"""Multi-namespace Mantle deployments (§4 / §7).

Figure 5's architecture is per-namespace IndexNodes over one shared TafDB:
"TafDB stores all metadata at scale and is shared across namespaces, while
IndexNode caches only essential directory metadata for a single namespace".
Production (§7.1) runs 19 internal namespaces across three clusters, and
§7.2 describes co-locating the IndexNode replicas of several namespaces on
a shared pool of physical servers.

:class:`MantleDeployment` reproduces exactly that: one simulator, one
network, one TafDB cluster, one shared id allocator — and any number of
namespaces, each with its own IndexNode Raft group (optionally placed on a
shared host pool).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.base import IdAllocator
from repro.core.config import MantleConfig
from repro.core.service import MantleSystem
from repro.sim.core import Simulator
from repro.sim.host import Host
from repro.sim.network import Network
from repro.tafdb.cluster import TafDBCluster


class MantleDeployment:
    """A cluster hosting many namespaces over one shared TafDB."""

    def __init__(self, config: Optional[MantleConfig] = None, seed: int = 7,
                 shared_index_pool: int = 0):
        """``shared_index_pool`` > 0 creates a pool of that many physical
        servers; namespaces created with ``colocate=True`` place their
        IndexNode replicas round-robin on the pool instead of on dedicated
        hosts (§7.2's utilisation strategy)."""
        self.config = config or MantleConfig()
        self.config.validate()
        self.seed = seed
        self.sim = Simulator()
        self.network = Network(self.sim,
                               one_way_us=self.config.costs.net_one_way_us)
        self.tafdb = TafDBCluster(
            self.sim, self.network,
            num_servers=self.config.num_db_servers,
            num_shards=self.config.num_db_shards,
            cores=self.config.db_cores,
            costs=self.config.costs,
            compaction_period_us=self.config.compaction_period_us,
            delta_threshold=self.config.delta_activation_threshold,
            delta_window_us=self.config.delta_activation_window_us,
            deltas_enabled=self.config.enable_delta_records)
        self.ids = IdAllocator(start=2)
        self.namespaces: Dict[str, MantleSystem] = {}
        self._pool: List[Host] = [
            Host(self.sim, f"index-pool-{i}",
                 cores=self.config.index_cores,
                 fsync_us=self.config.costs.fsync_us)
            for i in range(shared_index_pool)
        ]
        self._pool_rr = 0

    # -- namespace management ---------------------------------------------------

    def create_namespace(self, name: str, colocate: bool = False,
                         **config_overrides) -> MantleSystem:
        """Provision one namespace: a fresh root id and IndexNode group.

        ``colocate=True`` places this namespace's replicas on the shared
        host pool (several namespaces then compete for the same CPUs,
        which is the §7.2 trade-off worth measuring).
        """
        if name in self.namespaces:
            raise ValueError(f"namespace {name!r} already exists")
        config = self.config.copy(**config_overrides) \
            if config_overrides else self.config
        index_hosts = None
        if colocate:
            if not self._pool:
                raise ValueError("deployment has no shared index pool")
            replicas = config.index_replicas + config.num_learners
            index_hosts = []
            for _ in range(replicas):
                index_hosts.append(self._pool[self._pool_rr % len(self._pool)])
                self._pool_rr += 1
        system = MantleSystem(
            config,
            sim=self.sim, network=self.network,
            tafdb=self.tafdb, ids=self.ids,
            root_id=self.ids.next(),
            namespace=name,
            index_hosts=index_hosts,
            seed=self.seed + len(self.namespaces) + 1)
        system.startup()
        self.namespaces[name] = system
        return system

    def namespace(self, name: str) -> MantleSystem:
        if name not in self.namespaces:
            raise KeyError(f"unknown namespace {name!r}")
        return self.namespaces[name]

    def shutdown(self) -> None:
        for system in self.namespaces.values():
            system.shutdown()
        self.tafdb.stop_compactors()

    # -- observability --------------------------------------------------------------

    @property
    def total_metadata_rows(self) -> int:
        """Rows across every namespace, all in the one shared TafDB."""
        return self.tafdb.total_rows

    def namespace_sizes(self) -> Dict[str, int]:
        """IndexTable entry count (directories) per namespace."""
        out = {}
        for name, system in self.namespaces.items():
            leader = system.index_group.current_leader()
            node = leader if leader is not None else \
                next(iter(system.index_group.nodes.values()))
            out[name] = len(node.state_machine.table)
        return out
