"""Mantle's core: proxy layer, operation orchestration, public client API."""
