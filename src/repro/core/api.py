"""MantleClient — the synchronous public facade.

Hides the discrete-event simulation behind an ordinary Python API: each call
spawns the operation as a simulated process and drives the event loop until
it completes.  This is what the examples and downstream users consume::

    from repro import MantleClient, MantleConfig

    with MantleClient(MantleConfig.small()) as client:
        client.mkdir("/datasets/audio")
        client.create("/datasets/audio/seg-000.bin", size=4096)
        print(client.listdir("/datasets/audio"))

Operations dispatch through the typed registry (:mod:`repro.ops`); mutating
calls return :class:`~repro.types.OpResult` — an ``int`` subclass carrying
the inode id plus the per-call RPC/latency measurements — and reads return
:class:`~repro.types.StatResult` or entry lists.  Errors raise the
:mod:`repro.errors` hierarchy.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, List, Optional, Tuple

from repro.core.config import MantleConfig
from repro.core.service import MantleSystem
from repro.errors import MetadataError, NoSuchPathError
from repro.ops import (
    Create,
    Delete,
    DirStat,
    Mkdir,
    ObjStat,
    Op,
    ReadDir,
    Rename,
    Rmdir,
    SetAttr,
)
from repro.paths import ancestors, normalize as paths_normalize
from repro.sim.stats import MetricSet, OpContext
from repro.types import OpResult, Permission, StatResult


def _small_config() -> MantleConfig:
    """Deprecated alias of :meth:`MantleConfig.small` (kept for importers)."""
    return MantleConfig.small()


@dataclasses.dataclass
class BatchResult:
    """Outcome of one operation inside :meth:`MantleClient.batch`."""

    op: Op
    result: Any = None
    error: Optional[MetadataError] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class MantleClient:
    """Synchronous client over a simulated Mantle deployment.

    Parameters
    ----------
    config:
        Cluster shape and optimisation toggles; defaults to
        :meth:`MantleConfig.small`, a three-replica deployment suitable for
        examples and tests (:meth:`MantleConfig.paper_scale` builds the
        Table 2 shape).

    The client is a context manager: ``with MantleClient() as c: ...`` shuts
    the simulated cluster down on exit.
    """

    def __init__(self, config: Optional[MantleConfig] = None):
        self.system = MantleSystem(config or MantleConfig.small())
        self.system.startup()
        self.metrics = MetricSet()
        self.metrics.started_at = self.system.sim.now

    # -- internal --------------------------------------------------------------

    def _run_ctx(self, op: Op) -> Tuple[Any, OpContext]:
        """Drive one typed op to completion; returns (result, context)."""
        ctx = OpContext(op.name)
        try:
            result = self.system.sim.run_process(
                self.system.perform(op, ctx=ctx), name=op.name)
        except MetadataError:
            self.metrics.record_failure(ctx)
            raise
        self.metrics.record(ctx)
        self.metrics.finished_at = self.system.sim.now
        return result, ctx

    def _run(self, op: Op) -> Any:
        return self._run_ctx(op)[0]

    def _run_mutation(self, op: Op) -> OpResult:
        result, ctx = self._run_ctx(op)
        return OpResult(result, rpcs=ctx.rpcs, retries=ctx.retries,
                        latency_us=ctx.latency)

    def perform(self, op: Op) -> Any:
        """Run one typed op; mutations come back as :class:`OpResult`.

        Same contract as ``repro.runtime.client.LiveClient.perform`` — the
        agreement suite replays one trace through both.
        """
        result, ctx = self._run_ctx(op)
        if isinstance(result, int) and not isinstance(result, bool):
            return OpResult(result, rpcs=ctx.rpcs, retries=ctx.retries,
                            latency_us=ctx.latency)
        return result

    # -- namespace operations ------------------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> OpResult:
        """Create a directory; with ``parents=True`` create missing ancestors.

        The ancestor resolution walks *up* from the deepest ancestor until
        an existing directory is found (one ``dirstat`` drive per probed
        level), then creates the missing chain downwards — instead of one
        ``exists()`` probe (up to two sim drives) per level from the root.
        """
        if parents:
            chain = ancestors(paths_normalize(path))[1:]  # strict, sans root
            missing: List[str] = []
            for ancestor in reversed(chain):
                try:
                    self.dirstat(ancestor)
                    break
                except NoSuchPathError:
                    missing.append(ancestor)
                except MetadataError:
                    break  # exists but is not a plain dir; let mkdir surface it
            for ancestor in reversed(missing):
                self._run_mutation(Mkdir(ancestor))
        return self._run_mutation(Mkdir(path))

    def rmdir(self, path: str) -> OpResult:
        return self._run_mutation(Rmdir(path))

    def create(self, path: str, size: int = 0) -> OpResult:
        """Create an object (PUT without data body in this model)."""
        del size  # size is recorded via bulk loaders; kept for API symmetry
        return self._run_mutation(Create(path))

    def delete(self, path: str) -> OpResult:
        return self._run_mutation(Delete(path))

    def objstat(self, path: str) -> StatResult:
        return self._run(ObjStat(path))

    def dirstat(self, path: str) -> StatResult:
        return self._run(DirStat(path))

    def stat(self, path: str) -> StatResult:
        """stat either kind: try the object path first, then directory."""
        try:
            return self.objstat(path)
        except MetadataError:
            return self.dirstat(path)

    def listdir(self, path: str) -> List[str]:
        return self._run(ReadDir(path))

    def listdir_page(self, path: str, limit: int,
                     start_after: Optional[str] = None) -> List[str]:
        """One page of directory entries (S3-style continuation listing)."""
        ctx = OpContext("readdir")
        proxy = self.system.proxy()
        ctx.start = self.system.sim.now
        result = self.system.sim.run_process(
            proxy.op_readdir(path, ctx, limit=limit, start_after=start_after),
            name="readdir-page")
        ctx.finish = self.system.sim.now
        self.metrics.record(ctx)
        return result

    def walk(self, path: str = "/", page_size: int = 64):
        """Iterate every entry under ``path`` breadth-first (paged)."""
        pending = [paths_normalize(path)]
        while pending:
            current = pending.pop(0)
            start_after = None
            while True:
                page = self.listdir_page(current, page_size, start_after)
                for name in page:
                    child = current.rstrip("/") + "/" + name
                    yield child
                    try:
                        if self.dirstat(child).is_dir:
                            pending.append(child)
                    except MetadataError:
                        pass  # an object, or raced with a delete
                if len(page) < page_size:
                    break
                start_after = page[-1]

    def rename(self, src: str, dst: str) -> OpResult:
        """Atomic cross-directory rename with loop detection."""
        return self._run_mutation(Rename(src, dst))

    def setattr(self, path: str, permission: Permission) -> StatResult:
        return self._run(SetAttr(path, permission))

    def exists(self, path: str) -> bool:
        try:
            self.stat(path)
            return True
        except MetadataError:
            return False

    # -- batching --------------------------------------------------------------

    def batch(self, ops: Iterable[Op]) -> List[BatchResult]:
        """Run several typed operations concurrently in one sim drive.

        All operations are spawned as simulated processes before the event
        loop runs, so they overlap exactly like concurrent clients would —
        one ``batch`` call costs one drive of the simulator instead of one
        per operation.  Per-op failures land in ``BatchResult.error`` rather
        than raising, so one conflict cannot abort its siblings.
        """
        items = [BatchResult(op) for op in ops]
        sim = self.system.sim

        def run_one(item: BatchResult):
            ctx = OpContext(item.op.name)
            try:
                item.result = yield from self.system.perform(item.op, ctx=ctx)
            except MetadataError as exc:
                ctx.finish = sim.now
                item.error = exc
                self.metrics.record_failure(ctx)
                return
            if isinstance(item.result, int) and \
                    not isinstance(item.result, bool):
                item.result = OpResult(item.result, rpcs=ctx.rpcs,
                                       retries=ctx.retries,
                                       latency_us=ctx.latency)
            self.metrics.record(ctx)

        if items:
            done = sim.all_of([
                sim.process(run_one(item), name=f"batch-{item.op.name}")
                for item in items
            ])
            sim.run_until(done)
            self.metrics.finished_at = sim.now
        return items

    # -- observability --------------------------------------------------------------

    @property
    def simulated_time_us(self) -> float:
        return self.system.sim.now

    @property
    def tracer(self):
        """The simulator's span tracer (the no-op singleton when off)."""
        return self.system.sim.tracer

    @property
    def telemetry(self):
        """The simulator's time-series registry (the no-op singleton when
        off; enable with ``MantleConfig(telemetry=True)``)."""
        return self.system.sim.telemetry

    def cache_stats(self) -> dict:
        """TopDirPathCache statistics of the current leader replica."""
        leader = self.system.index_group.leader_or_raise()
        cache = leader.state_machine.cache
        return {
            "entries": len(cache),
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": cache.hit_rate,
            "memory_bytes": cache.memory_bytes,
        }

    def close(self) -> None:
        self.system.shutdown()

    def __enter__(self) -> "MantleClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
