"""MantleClient — the synchronous public facade.

Hides the discrete-event simulation behind an ordinary Python API: each call
spawns the operation as a simulated process and drives the event loop until
it completes.  This is what the examples and downstream users consume::

    from repro import MantleClient

    client = MantleClient()
    client.mkdir("/datasets/audio")
    client.create("/datasets/audio/seg-000.bin", size=4096)
    print(client.listdir("/datasets/audio"))
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import MantleConfig
from repro.core.service import MantleSystem
from repro.errors import MetadataError
from repro.paths import normalize as paths_normalize
from repro.sim.stats import MetricSet, OpContext
from repro.types import Permission, StatResult


def _small_config() -> MantleConfig:
    """A laptop-friendly cluster shape for interactive use."""
    return MantleConfig(num_db_servers=3, num_db_shards=6, num_proxies=2,
                        index_replicas=3, num_learners=0,
                        index_cores=8, db_cores=8, proxy_cores=8)


class MantleClient:
    """Synchronous client over a simulated Mantle deployment.

    Parameters
    ----------
    config:
        Cluster shape and optimisation toggles; defaults to a small
        three-replica deployment suitable for examples and tests.
    """

    def __init__(self, config: Optional[MantleConfig] = None):
        self.system = MantleSystem(config or _small_config())
        self.system.startup()
        self.metrics = MetricSet()
        self.metrics.started_at = self.system.sim.now

    # -- internal --------------------------------------------------------------

    def _run(self, op: str, *args):
        ctx = OpContext(op)
        try:
            result = self.system.sim.run_process(
                self.system.submit(op, *args, ctx=ctx), name=op)
        except MetadataError:
            self.metrics.record_failure(ctx)
            raise
        self.metrics.record(ctx)
        self.metrics.finished_at = self.system.sim.now
        return result

    # -- namespace operations ------------------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> int:
        """Create a directory; with ``parents=True`` create missing ancestors."""
        if parents:
            from repro.paths import ancestors, normalize
            for ancestor in ancestors(normalize(path))[1:]:
                if not self.exists(ancestor):
                    self._run("mkdir", ancestor)
        return self._run("mkdir", path)

    def rmdir(self, path: str) -> int:
        return self._run("rmdir", path)

    def create(self, path: str, size: int = 0) -> int:
        """Create an object (PUT without data body in this model)."""
        del size  # size is recorded via bulk loaders; kept for API symmetry
        return self._run("create", path)

    def delete(self, path: str) -> int:
        return self._run("delete", path)

    def objstat(self, path: str) -> StatResult:
        return self._run("objstat", path)

    def dirstat(self, path: str) -> StatResult:
        return self._run("dirstat", path)

    def stat(self, path: str) -> StatResult:
        """stat either kind: try the object path first, then directory."""
        try:
            return self.objstat(path)
        except MetadataError:
            return self.dirstat(path)

    def listdir(self, path: str) -> List[str]:
        return self._run("readdir", path)

    def listdir_page(self, path: str, limit: int,
                     start_after: Optional[str] = None) -> List[str]:
        """One page of directory entries (S3-style continuation listing)."""
        ctx = OpContext("readdir")
        proxy = self.system.proxy()
        ctx.start = self.system.sim.now
        result = self.system.sim.run_process(
            proxy.op_readdir(path, ctx, limit=limit, start_after=start_after),
            name="readdir-page")
        ctx.finish = self.system.sim.now
        self.metrics.record(ctx)
        return result

    def walk(self, path: str = "/", page_size: int = 64):
        """Iterate every entry under ``path`` breadth-first (paged)."""
        pending = [paths_normalize(path)]
        while pending:
            current = pending.pop(0)
            start_after = None
            while True:
                page = self.listdir_page(current, page_size, start_after)
                for name in page:
                    child = current.rstrip("/") + "/" + name
                    yield child
                    try:
                        if self.dirstat(child).is_dir:
                            pending.append(child)
                    except MetadataError:
                        pass  # an object, or raced with a delete
                if len(page) < page_size:
                    break
                start_after = page[-1]

    def rename(self, src: str, dst: str) -> int:
        """Atomic cross-directory rename with loop detection."""
        return self._run("dirrename", src, dst)

    def setattr(self, path: str, permission: Permission) -> StatResult:
        return self._run("setattr", path, permission)

    def exists(self, path: str) -> bool:
        try:
            self.stat(path)
            return True
        except MetadataError:
            return False

    # -- observability --------------------------------------------------------------

    @property
    def simulated_time_us(self) -> float:
        return self.system.sim.now

    def cache_stats(self) -> dict:
        """TopDirPathCache statistics of the current leader replica."""
        leader = self.system.index_group.leader_or_raise()
        cache = leader.state_machine.cache
        return {
            "entries": len(cache),
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": cache.hit_rate,
            "memory_bytes": cache.memory_bytes,
        }

    def close(self) -> None:
        self.system.shutdown()

    def __enter__(self) -> "MantleClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
