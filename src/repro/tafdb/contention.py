"""Selective delta-record activation (§5.2.1).

Delta records make dirstat more expensive (it must scan and fold deltas), so
they are "enabled selectively, activated only under sustained contention
within a directory".  The registry watches transaction aborts per directory:
crossing ``threshold`` aborts inside a sliding ``window_us`` flips the
directory into delta mode; the mode decays once the window passes without
further aborts.
"""

from __future__ import annotations

import collections
from typing import Deque, Dict


class ContentionRegistry:
    """Sliding-window abort tracker deciding which directories use deltas."""

    def __init__(self, threshold: int = 3, window_us: float = 1_000_000.0,
                 enabled: bool = True):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if window_us <= 0:
            raise ValueError("window must be positive")
        self.threshold = threshold
        self.window_us = window_us
        self.enabled = enabled
        self._aborts: Dict[int, Deque[float]] = {}
        self._active_until: Dict[int, float] = {}
        self.activations = 0

    def note_abort(self, dir_id: int, now: float) -> None:
        """Record one transaction abort caused by contention on ``dir_id``."""
        if not self.enabled:
            return
        window = self._aborts.setdefault(dir_id, collections.deque())
        window.append(now)
        horizon = now - self.window_us
        while window and window[0] < horizon:
            window.popleft()
        if len(window) >= self.threshold:
            if self._active_until.get(dir_id, -1.0) < now:
                self.activations += 1
            self._active_until[dir_id] = now + self.window_us

    def is_delta_mode(self, dir_id: int, now: float) -> bool:
        """Should updates to ``dir_id``'s attributes go through delta rows?"""
        if not self.enabled:
            return False
        until = self._active_until.get(dir_id)
        if until is None:
            return False
        if until < now:
            # Decayed: clean up lazily.
            del self._active_until[dir_id]
            self._aborts.pop(dir_id, None)
            return False
        return True

    def force_delta_mode(self, dir_id: int, now: float,
                         duration_us: float = float("inf")) -> None:
        """Pin a directory into delta mode (tests and ablation studies)."""
        self._active_until[dir_id] = now + duration_us

    @property
    def active_count(self) -> int:
        return len(self._active_until)
