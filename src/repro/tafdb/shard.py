"""One TafDB shard: versioned rows, row locks, optimistic transactions,
delta records and compaction.

A shard is pure data-structure code (no simulation imports) so its
concurrency semantics can be unit-tested directly; the simulated
:class:`repro.tafdb.server.DBServer` wraps it with CPU/RPC costs.

Concurrency model
-----------------
Proxies read versioned rows, compute new values, and submit *write intents*
carrying expectations (``insert`` expects absence, ``update``/``delete``
expect a version).  ``prepare`` try-locks every intent's row and validates
expectations; any conflict raises :class:`TransactionAbort` and the caller
retries with backoff.  ``commit`` applies staged intents and releases locks.
This optimistic first-writer-wins discipline is what collapses under the
paper's "all conflict" workloads (Figure 4b) — every concurrent
read-modify-write of a hot parent's attribute row aborts all but one
transaction per round.

Delta records (§5.2.1) sidestep the conflict entirely: each update inserts a
uniquely-keyed ``(dir_id, '/_ATTR', ts)`` row, and :meth:`ShardState.compact`
folds deltas into the primary attribute row under a latch.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import TransactionAbort
from repro.tafdb.rows import AttrDelta, Dirent, Row, RowKey, RowValue, attr_key
from repro.types import AttrMeta

#: Lock owner used by the compactor's latch.
_COMPACTOR = "__compactor__"


@dataclasses.dataclass(frozen=True)
class WriteIntent:
    """One staged mutation with its optimistic expectation.

    ``kind`` is one of:

    * ``"insert"`` — row must not exist (blind inserts of dirents and deltas);
    * ``"update"`` — row must exist; if ``expect_version`` is not None it must
      match the stored version;
    * ``"delete"`` — same expectations as update.
    """

    key: RowKey
    kind: str
    value: Optional[RowValue] = None
    expect_version: Optional[int] = None

    def __post_init__(self):
        if self.kind not in ("insert", "update", "delete"):
            raise ValueError(f"unknown intent kind {self.kind!r}")
        if self.kind in ("insert", "update") and self.value is None:
            raise ValueError(f"{self.kind} intent needs a value")


class ShardState:
    """In-memory storage and transaction machinery for one shard."""

    def __init__(self, shard_id: int = 0):
        self.shard_id = shard_id
        self._rows: Dict[RowKey, Row] = {}
        self._children: Dict[int, Set[str]] = {}
        self._deltas: Dict[int, Set[int]] = {}
        self._locks: Dict[RowKey, str] = {}
        self._staged: Dict[str, List[WriteIntent]] = {}
        # Counters for the bench harness.
        self.aborts = 0
        self.commits = 0
        self.compactions = 0
        #: Abort counts keyed by conflict reason ("lock held", "exists",
        #: "missing", "version") — surfaced in trace breakdowns.
        self.abort_reasons: Dict[str, int] = {}

    # -- reads --------------------------------------------------------------

    def read(self, key: RowKey) -> Optional[Row]:
        row = self._rows.get(key)
        return row.snapshot() if row is not None else None

    def scan_children(self, pid: int, limit: Optional[int] = None,
                      start_after: Optional[str] = None) -> List[Tuple[str, Dirent]]:
        """Ordered page of (name, dirent) under directory ``pid`` (readdir)."""
        names = sorted(self._children.get(pid, ()))
        if start_after is not None:
            names = [n for n in names if n > start_after]
        if limit is not None:
            names = names[:limit]
        out = []
        for name in names:
            row = self._rows[RowKey(pid, name, 0)]
            assert isinstance(row.value, Dirent)
            out.append((name, row.value))
        return out

    def has_children(self, pid: int) -> bool:
        return bool(self._children.get(pid))

    def delta_count(self, dir_id: int) -> int:
        return len(self._deltas.get(dir_id, ()))

    def read_attrs_folded(self, dir_id: int) -> Optional[AttrMeta]:
        """Primary attribute row with all pending deltas folded in.

        This is the dirstat read path; its cost grows with the number of
        unfolded deltas — the trade-off §5.2.1 calls out.
        """
        primary = self._rows.get(attr_key(dir_id))
        if primary is None:
            return None
        attrs = primary.value.copy()
        for ts in sorted(self._deltas.get(dir_id, ())):
            delta_row = self._rows[RowKey(dir_id, attr_key(dir_id).name, ts)]
            delta_row.value.apply_to(attrs)
        return attrs

    # -- transactions ---------------------------------------------------------

    def prepare(self, txn_id: str, intents: List[WriteIntent]) -> None:
        """Validate expectations and lock every intent's row.

        Raises :class:`TransactionAbort` on any conflict, releasing whatever
        this call had locked (all-or-nothing prepare).
        """
        if txn_id in self._staged:
            raise TransactionAbort("txn already prepared on this shard", None)
        acquired: List[RowKey] = []
        try:
            for intent in intents:
                holder = self._locks.get(intent.key)
                if holder is not None and holder != txn_id:
                    raise TransactionAbort("lock held", intent.key)
                row = self._rows.get(intent.key)
                if intent.kind == "insert":
                    if row is not None:
                        raise TransactionAbort("exists", intent.key)
                else:
                    if row is None:
                        raise TransactionAbort("missing", intent.key)
                    if (intent.expect_version is not None
                            and row.version != intent.expect_version):
                        raise TransactionAbort("version", intent.key)
                if holder is None:
                    self._locks[intent.key] = txn_id
                    acquired.append(intent.key)
        except TransactionAbort as exc:
            self.aborts += 1
            self.abort_reasons[exc.reason] = \
                self.abort_reasons.get(exc.reason, 0) + 1
            for key in acquired:
                del self._locks[key]
            raise
        self._staged[txn_id] = list(intents)

    def commit(self, txn_id: str) -> None:
        intents = self._staged.pop(txn_id, None)
        if intents is None:
            raise TransactionAbort("commit of unprepared txn", None)
        for intent in intents:
            self._apply(intent)
        self._release(txn_id)
        self.commits += 1

    def abort(self, txn_id: str) -> None:
        self._staged.pop(txn_id, None)
        self._release(txn_id)

    def execute(self, txn_id: str, intents: List[WriteIntent]) -> None:
        """Single-shard one-shot transaction (prepare + commit, one RPC)."""
        self.prepare(txn_id, intents)
        self.commit(txn_id)

    def _release(self, txn_id: str) -> None:
        for key in [k for k, owner in self._locks.items() if owner == txn_id]:
            del self._locks[key]

    def _apply(self, intent: WriteIntent) -> None:
        key = intent.key
        if intent.kind == "delete":
            del self._rows[key]
            self._unindex(key)
            return
        old = self._rows.get(key)
        version = old.version + 1 if old is not None else 1
        self._rows[key] = Row(key, intent.value, version)
        if old is None:
            self._index(key)

    def _index(self, key: RowKey) -> None:
        if key.is_delta:
            self._deltas.setdefault(key.pid, set()).add(key.ts)
        elif not key.is_attr:
            self._children.setdefault(key.pid, set()).add(key.name)

    def _unindex(self, key: RowKey) -> None:
        if key.is_delta:
            bucket = self._deltas.get(key.pid)
            if bucket is not None:
                bucket.discard(key.ts)
                if not bucket:
                    del self._deltas[key.pid]
        elif not key.is_attr:
            bucket = self._children.get(key.pid)
            if bucket is not None:
                bucket.discard(key.name)
                if not bucket:
                    del self._children[key.pid]

    def fold_direct(self, dir_id: int, delta: AttrDelta) -> bool:
        """Apply one attribute delta in place, bypassing the transaction path.

        This is the single-shard *atomic primitive* of CFS/InfiniFS
        (§3.3/§5.2.1 discussion): it never aborts, but the serving layer
        serialises concurrent callers with a latch, so hot directories
        serialise instead of thrashing with retries.  Returns False when an
        in-flight transaction holds the row (caller should retry shortly).
        """
        key = attr_key(dir_id)
        row = self._rows.get(key)
        if row is None:
            return False
        if self._locks.get(key) is not None:
            return False
        attrs = row.value.copy()
        delta.apply_to(attrs)
        self._rows[key] = Row(key, attrs, row.version + 1)
        self.commits += 1
        return True

    # -- lock introspection ---------------------------------------------------

    def is_locked(self, key: RowKey) -> bool:
        return key in self._locks

    def lock_owner(self, key: RowKey) -> Optional[str]:
        return self._locks.get(key)

    # -- delta compaction -------------------------------------------------------

    def compact(self, dir_id: int) -> int:
        """Fold every delta of ``dir_id`` into its primary attribute row.

        Takes the compactor latch on the primary row; if an in-flight
        transaction holds it the compaction is skipped this round (returns 0)
        — it will catch up on the next pass.  Returns the number of deltas
        folded.
        """
        pending = self._deltas.get(dir_id)
        if not pending:
            return 0
        primary_key = attr_key(dir_id)
        primary = self._rows.get(primary_key)
        if primary is None:
            # Directory was removed; orphaned deltas are garbage-collected.
            return self._drop_deltas(dir_id)
        if self._locks.get(primary_key) is not None:
            return 0
        self._locks[primary_key] = _COMPACTOR
        try:
            attrs = primary.value.copy()
            timestamps = sorted(pending)
            for ts in timestamps:
                key = RowKey(dir_id, primary_key.name, ts)
                self._rows[key].value.apply_to(attrs)
                del self._rows[key]
                self._unindex(key)
            self._rows[primary_key] = Row(primary_key, attrs, primary.version + 1)
            self.compactions += 1
            return len(timestamps)
        finally:
            del self._locks[primary_key]

    def compact_all(self) -> int:
        """Compact every directory with pending deltas; returns deltas folded."""
        folded = 0
        for dir_id in list(self._deltas.keys()):
            folded += self.compact(dir_id)
        return folded

    def _drop_deltas(self, dir_id: int) -> int:
        dropped = 0
        for ts in sorted(self._deltas.get(dir_id, set()).copy()):
            key = RowKey(dir_id, attr_key(dir_id).name, ts)
            if self._locks.get(key) is None:
                del self._rows[key]
                self._unindex(key)
                dropped += 1
        return dropped

    # -- stats -----------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def pending_delta_rows(self) -> int:
        return sum(len(v) for v in self._deltas.values())

    @property
    def dirs_with_deltas(self) -> List[int]:
        return list(self._deltas.keys())
