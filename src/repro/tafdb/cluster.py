"""Assembly of a TafDB deployment: hosts, servers, shards, compactors."""

from __future__ import annotations

from typing import List, Optional

from repro.sim.core import Simulator
from repro.sim.host import CostModel, Host
from repro.sim.network import Network
from repro.tafdb.client import TafDBClient
from repro.tafdb.contention import ContentionRegistry
from repro.tafdb.partition import Partitioner
from repro.tafdb.server import DBServer


class TafDBCluster:
    """A sharded TafDB deployment shared by every namespace (§4).

    ``contention`` is the cluster-wide registry deciding which directories
    run in delta mode; it is internal metadata-service state, so modelling
    it as a shared object (rather than replicated state) is faithful enough
    for the behaviours under study.
    """

    def __init__(self, sim: Simulator, network: Network,
                 num_servers: int = 18, num_shards: int = 72,
                 cores: int = 32, costs: Optional[CostModel] = None,
                 compaction_period_us: float = 5_000.0,
                 delta_threshold: int = 3,
                 delta_window_us: float = 1_000_000.0,
                 deltas_enabled: bool = True,
                 start_compactors: bool = True):
        self.sim = sim
        self.network = network
        self.costs = costs or CostModel()
        self.partitioner = Partitioner(num_shards, num_servers)
        self.hosts: List[Host] = []
        self.servers: List[DBServer] = []
        for server_id in range(num_servers):
            host = Host(sim, f"tafdb-{server_id}", cores=cores,
                        fsync_us=self.costs.fsync_us)
            shard_ids = self.partitioner.shards_on_server(server_id)
            self.hosts.append(host)
            self.servers.append(DBServer(host, shard_ids, self.costs))
        self.contention = ContentionRegistry(
            threshold=delta_threshold, window_us=delta_window_us,
            enabled=deltas_enabled)
        self._compactors = []
        if start_compactors:
            for server in self.servers:
                self._compactors.append(sim.process(
                    server.compactor_loop(compaction_period_us),
                    name=f"compactor-{server.host.name}"))

    def client(self, client_id: Optional[int] = None) -> TafDBClient:
        return TafDBClient(self.sim, self.network, self.partitioner,
                           self.servers, self.costs, client_id=client_id)

    def stop_compactors(self) -> None:
        for proc in self._compactors:
            proc.interrupt("shutdown")
        self._compactors = []

    # -- aggregate stats ------------------------------------------------------

    @property
    def total_rows(self) -> int:
        return sum(server.total_rows for server in self.servers)

    @property
    def total_aborts(self) -> int:
        return sum(server.total_aborts for server in self.servers)

    @property
    def total_commits(self) -> int:
        return sum(server.total_commits for server in self.servers)
