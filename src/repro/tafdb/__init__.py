"""TafDB — the scalable, sharded metadata database under Mantle.

Schema (after Figures 2 and 8 of the paper):

* **dirent rows** ``(pid, name, ts=0)`` map a parent directory id and entry
  name to the entry's access metadata (id, kind, permission).  Sharded by
  ``pid`` so one directory's entries co-locate.
* **attribute rows** ``(id, '/_ATTR', ts=0)`` hold a directory's attribute
  metadata, co-located with that directory's *children* (same pid).
* **delta rows** ``(id, '/_ATTR', ts>0)`` are the out-of-place attribute
  updates of §5.2.1; a background compactor folds them into the primary
  attribute row.
* objects store their attributes inline in the dirent row (objects have no
  children, so no separate attribute row is needed).

Transactions are optimistic: proxies read versioned rows, stage write
intents with version expectations, and run one-shot single-shard commits or
two-phase commits across shards.  Version mismatches and lock conflicts
abort the transaction (:class:`repro.errors.TransactionAbort`), which is the
mechanism behind the paper's Figure 4b contention collapse.
"""

from repro.tafdb.rows import AttrDelta, Dirent, Row, RowKey, attr_key, dirent_key
from repro.tafdb.shard import ShardState, WriteIntent
from repro.tafdb.partition import Partitioner
from repro.tafdb.contention import ContentionRegistry
from repro.tafdb.cluster import TafDBCluster
from repro.tafdb.client import TafDBClient

__all__ = [
    "RowKey",
    "Row",
    "Dirent",
    "AttrDelta",
    "attr_key",
    "dirent_key",
    "ShardState",
    "WriteIntent",
    "Partitioner",
    "ContentionRegistry",
    "TafDBCluster",
    "TafDBClient",
]
