"""Simulated TafDB shard server: RPC surface + CPU/disk cost accounting.

One :class:`DBServer` hosts several :class:`~repro.tafdb.shard.ShardState`
instances (Table 2 runs 18 DB servers; the default config spreads 72 shards
across them).  All storage logic lives in ``ShardState``; this class only
charges simulated costs and dispatches.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.host import CostModel, Host
from repro.sim.network import Server
from repro.sim.resources import Resource
from repro.tafdb.rows import AttrDelta, RowKey, attr_key
from repro.tafdb.shard import ShardState, WriteIntent


class DBServer(Server):
    """RPC wrapper over the shards placed on one host."""

    def __init__(self, host: Host, shard_ids: List[int], costs: CostModel):
        super().__init__(host)
        self.costs = costs
        self.shards: Dict[int, ShardState] = {
            shard_id: ShardState(shard_id) for shard_id in shard_ids
        }
        self._dir_latches: Dict[tuple, "Resource"] = {}

    def shard(self, shard_id: int) -> ShardState:
        state = self.shards.get(shard_id)
        if state is None:
            raise KeyError(f"shard {shard_id} is not placed on {self.host.name}")
        return state

    # -- reads ----------------------------------------------------------------

    def rpc_read(self, shard_id: int, key: RowKey):
        yield from self.runtime.work(
            self.host, self.costs.db_row_read_us)
        return self.shard(shard_id).read(key)

    def rpc_scan_children(self, shard_id: int, pid: int,
                          limit: Optional[int] = None,
                          start_after: Optional[str] = None):
        state = self.shard(shard_id)
        page = state.scan_children(pid, limit=limit, start_after=start_after)
        # Charge one probe plus one row read per returned entry.
        yield from self.runtime.work(
            self.host,
            self.costs.db_row_read_us * max(1, len(page)))
        return page

    def rpc_has_children(self, shard_id: int, pid: int):
        yield from self.runtime.work(
            self.host, self.costs.db_row_read_us)
        return self.shard(shard_id).has_children(pid)

    def rpc_read_dir_attrs(self, shard_id: int, dir_id: int):
        state = self.shard(shard_id)
        pending = state.delta_count(dir_id)
        # dirstat folds pending deltas at read time: the §5.2.1 trade-off.
        yield from self.runtime.work(
            self.host, self.costs.db_row_read_us * (1 + pending))
        return state.read_attrs_folded(dir_id)

    # -- transactions -----------------------------------------------------------

    def _write_cost(self, intents: List[WriteIntent]) -> float:
        return (self.costs.db_txn_overhead_us
                + self.costs.db_row_write_us * len(intents))

    def rpc_prepare(self, shard_id: int, txn_id: str, intents: List[WriteIntent]):
        yield from self.runtime.work(
            self.host, self._write_cost(intents))
        self.shard(shard_id).prepare(txn_id, intents)
        return True

    def rpc_commit(self, shard_id: int, txn_id: str):
        yield from self.runtime.work(
            self.host, self.costs.db_txn_overhead_us)
        yield from self.runtime.fsync(
            self.host, self.costs.db_commit_sync_us)
        self.shard(shard_id).commit(txn_id)
        return True

    def rpc_abort(self, shard_id: int, txn_id: str):
        yield from self.runtime.work(
            self.host, self.costs.db_txn_overhead_us)
        self.shard(shard_id).abort(txn_id)
        return True

    def rpc_execute(self, shard_id: int, txn_id: str, intents: List[WriteIntent]):
        """Single-shard one-shot transaction: one RPC, one durable commit."""
        yield from self.runtime.work(
            self.host, self._write_cost(intents))
        self.shard(shard_id).prepare(txn_id, intents)
        yield from self.runtime.fsync(
            self.host, self.costs.db_commit_sync_us)
        self.shard(shard_id).commit(txn_id)
        return True

    def rpc_atomic_add(self, shard_id: int, dir_id: int, link_delta: int,
                       entry_delta: int, mtime: float = 0.0):
        """CFS-style single-shard atomic attribute increment.

        Never aborts; concurrent updates to the same directory serialise on
        a per-directory latch (the "serialized by a latch" behaviour the
        paper observes in LocoFS/Tectonic and InfiniFS's improvement over
        retry storms).
        """
        latch = self._dir_latches.get((shard_id, dir_id))
        if latch is None:
            latch = Resource(self.sim, 1)
            self._dir_latches[(shard_id, dir_id)] = latch
        req = latch.request()
        yield req
        tracer = self.sim.tracer
        if tracer.enabled:
            wait = self.sim._now - req._enqueue_time
            if wait > 0.0:
                tracer.charge("queue", wait, self.host.name,
                              resource="latch",
                              by=getattr(req, "_blame", None))
        try:
            yield from self.host.work(
                self.costs.db_row_read_us + self.costs.db_row_write_us)
            yield from self.host.fsync_cost(self.costs.db_commit_sync_us)
            delta = AttrDelta(link_delta=link_delta,
                              entry_delta=entry_delta, mtime=mtime)
            while not self.shard(shard_id).fold_direct(dir_id, delta):
                if self.shard(shard_id).read(attr_key(dir_id)) is None:
                    return False  # directory vanished
                yield self.sim.timeout(20.0)  # txn holds the row; retry
            return True
        finally:
            latch.release(req)

    # -- maintenance --------------------------------------------------------------

    def compactor_loop(self, period_us: float):
        """Background process folding delta rows into primary attribute rows.

        Runs until interrupted (cluster shutdown / failure injection).
        """
        from repro.sim.core import Interrupt
        try:
            while True:
                yield self.sim.timeout(period_us)
                if self.host.crashed:
                    continue
                tracer = self.sim.tracer
                round_folded = 0
                span = None
                for state in self.shards.values():
                    for dir_id in state.dirs_with_deltas:
                        folded = state.compact(dir_id)
                        if folded:
                            if span is None and tracer.enabled:
                                span = tracer.begin(
                                    "tafdb.compact", self.sim.now,
                                    category="maintenance",
                                    host=self.host.name)
                            round_folded += folded
                            yield from self.host.work(
                                self.costs.db_row_write_us * folded)
                if span is not None:
                    span.annotate(folded=round_folded)
                    tracer.end(span, self.sim.now)
        except Interrupt:
            return

    # -- stats ----------------------------------------------------------------------

    @property
    def total_aborts(self) -> int:
        return sum(s.aborts for s in self.shards.values())

    @property
    def total_commits(self) -> int:
        return sum(s.commits for s in self.shards.values())

    @property
    def abort_reasons(self) -> Dict[str, int]:
        """Per-reason abort counts aggregated across this server's shards."""
        out: Dict[str, int] = {}
        for state in self.shards.values():
            for reason, count in state.abort_reasons.items():
                out[reason] = out.get(reason, 0) + count
        return out

    @property
    def total_rows(self) -> int:
        return sum(s.row_count for s in self.shards.values())
