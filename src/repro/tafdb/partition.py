"""Shard placement: pid-hash partitioning with directory locality.

The DBtable design (§2.3) partitions the metadata table by ``pid`` so that
the entries under one directory land on one shard.  We use a deterministic
integer hash (Fibonacci multiplicative) rather than Python's randomized
``hash()`` so simulations are reproducible across runs.
"""

from __future__ import annotations

from typing import List

_FIB = 11400714819323198485  # 2^64 / golden ratio


def pid_hash(pid: int) -> int:
    """Deterministic 64-bit mix of a parent-directory id."""
    return ((pid * _FIB) & 0xFFFFFFFFFFFFFFFF) >> 16


class Partitioner:
    """Maps pids to shard ids and shard ids to server slots."""

    def __init__(self, num_shards: int, num_servers: int):
        if num_shards < 1 or num_servers < 1:
            raise ValueError("need at least one shard and one server")
        if num_shards % num_servers != 0:
            raise ValueError(
                f"{num_shards} shards do not divide evenly over {num_servers} servers"
            )
        self.num_shards = num_shards
        self.num_servers = num_servers

    def shard_of(self, pid: int) -> int:
        return pid_hash(pid) % self.num_shards

    def server_of_shard(self, shard_id: int) -> int:
        if not 0 <= shard_id < self.num_shards:
            raise ValueError(f"shard {shard_id} out of range")
        return shard_id % self.num_servers

    def server_of(self, pid: int) -> int:
        return self.server_of_shard(self.shard_of(pid))

    def shards_on_server(self, server_id: int) -> List[int]:
        return [s for s in range(self.num_shards) if s % self.num_servers == server_id]
