"""Client-side TafDB access: routing, single-shard fast path, 2PC.

A :class:`TafDBClient` lives inside a proxy (or an IndexNode applying
synchronized updates).  It routes row keys to shard servers through the
partitioner and executes transactions:

* all intents on one shard → a single ``execute`` RPC (one round trip);
* intents spanning shards → two-phase commit: parallel ``prepare`` RPCs,
  then parallel ``commit`` (or ``abort``) RPCs.

Aborts surface as :class:`~repro.errors.TransactionAbort`; retry policy
belongs to the operation layer, but :meth:`backoff_us` provides the shared
exponential-backoff schedule.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TransactionAbort
from repro.sim.core import Simulator
from repro.sim.host import CostModel
from repro.sim.network import Network
from repro.sim.stats import OpContext
from repro.tafdb.partition import Partitioner
from repro.tafdb.rows import RowKey
from repro.tafdb.server import DBServer
from repro.tafdb.shard import WriteIntent

_client_counter = itertools.count(1)


class TafDBClient:
    """Routing + transaction coordination for one client (proxy) endpoint."""

    def __init__(self, sim: Simulator, network: Network,
                 partitioner: Partitioner, servers: Sequence[DBServer],
                 costs: CostModel, client_id: Optional[int] = None,
                 runtime=None):
        if len(servers) != partitioner.num_servers:
            raise ValueError("server list does not match partitioner")
        self.sim = sim
        self.network = network
        if runtime is None:
            from repro.runtime.base import default_runtime
            runtime = default_runtime(sim, network)
        self.runtime = runtime
        self.partitioner = partitioner
        self.servers = list(servers)
        self.costs = costs
        self.client_id = client_id if client_id is not None else next(_client_counter)
        self._txn_seq = 0
        self._ts_seq = 0
        self.txn_attempts = 0
        self.txn_aborts = 0

    # -- identifiers ---------------------------------------------------------

    def next_txn_id(self) -> str:
        self._txn_seq += 1
        return f"txn-{self.client_id}-{self._txn_seq}"

    def next_delta_ts(self) -> int:
        """Globally unique non-zero delta timestamp (client id + sequence)."""
        self._ts_seq += 1
        return (self.client_id << 24) | self._ts_seq

    def backoff_us(self, attempt: int) -> float:
        """Exponential backoff schedule for transaction retries.

        Called by the operation layer once per retry, which makes it the
        one central place to count retries in the telemetry timeline.
        """
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            telemetry.counter("tafdb.retries").add(self.sim._now)
        delay = self.costs.backoff_base_us * (2 ** min(attempt, 10))
        return min(delay, self.costs.backoff_max_us)

    def _count_txn(self, outcome: str) -> None:
        """Per-window transaction outcome counters: ``tafdb.commits`` or
        ``tafdb.aborts.<cause>`` (cause as reported by the shard: "lock
        held", "exists", "missing", "version")."""
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            telemetry.counter(outcome).add(self.sim._now)

    # -- routing ----------------------------------------------------------------

    def shard_of(self, pid: int) -> int:
        return self.partitioner.shard_of(pid)

    def server_for(self, pid: int) -> Tuple[int, DBServer]:
        shard_id = self.partitioner.shard_of(pid)
        return shard_id, self.servers[self.partitioner.server_of_shard(shard_id)]

    # -- reads ---------------------------------------------------------------------

    def read(self, key: RowKey, ctx: Optional[OpContext] = None):
        shard_id, server = self.server_for(key.pid)
        row = yield from self.runtime.rpc(server, "read", shard_id, key, ctx=ctx)
        return row

    def scan_children(self, pid: int, limit: Optional[int] = None,
                      start_after: Optional[str] = None,
                      ctx: Optional[OpContext] = None):
        shard_id, server = self.server_for(pid)
        page = yield from self.runtime.rpc(
            server, "scan_children", shard_id, pid, limit, start_after, ctx=ctx)
        return page

    def has_children(self, dir_id: int, ctx: Optional[OpContext] = None):
        shard_id, server = self.server_for(dir_id)
        result = yield from self.runtime.rpc(
            server, "has_children", shard_id, dir_id, ctx=ctx)
        return result

    def read_dir_attrs(self, dir_id: int, ctx: Optional[OpContext] = None):
        shard_id, server = self.server_for(dir_id)
        attrs = yield from self.runtime.rpc(
            server, "read_dir_attrs", shard_id, dir_id, ctx=ctx)
        return attrs

    def atomic_add(self, dir_id: int, link_delta: int, entry_delta: int,
                   ctx: Optional[OpContext] = None):
        """CFS-style atomic parent-attribute increment (never aborts)."""
        shard_id, server = self.server_for(dir_id)
        ok = yield from self.runtime.rpc(
            server, "atomic_add", shard_id, dir_id, link_delta, entry_delta,
            self.runtime.now, ctx=ctx)
        return ok

    # -- transactions ------------------------------------------------------------------

    def _fanout_leg(self, verb: str, parent, gen, label=None):
        """Wrap one parallel fan-out RPC so the critical path can see it.

        2PC legs run in spawned processes, so their spans are dynamic
        roots — outside the waiting op's tree, which would leave the
        fan-out wait as unexplained idle on the critical path.  The
        wrapper span records a ``join_to`` edge back to the fan-out wait
        span; :mod:`repro.sim.critpath` follows it and folds the *gating*
        leg (the one the AllOf actually waited on) into the op's path,
        with the overlapped legs surfacing as off-path cost.  The cost
        profiler ignores the edge — its per-tree conservation needs the
        legs to stay roots.

        ``label`` is the owning op's ``(op, tenant)`` identity, captured
        by the caller *in the client's process* (here the generator body
        already runs in the spawned leg process, where the op root is not
        on the stack); ``Tracer.current_op_label`` reads it back so
        resource occupancy inside a leg blames the op, not the leg.
        """
        tracer = self.sim.tracer
        span = tracer.begin("fanout:" + verb, self.sim.now,
                            category="txn", parent=parent)
        span.annotate(join_to=parent.span_id)
        if label is not None:
            span.annotate(op_label=label)
        try:
            result = yield from gen
        except BaseException:
            tracer.end(span, self.sim.now, ok=False)
            raise
        tracer.end(span, self.sim.now)
        return result

    def execute_txn(self, intents: Sequence[WriteIntent],
                    ctx: Optional[OpContext] = None):
        """Run one transaction; raises TransactionAbort on conflict.

        Single-shard transactions commit in one RPC; multi-shard ones use
        2PC with parallel prepares and commits, exactly the coordination the
        paper's Figure 2 step (4a)/(4b) shows.
        """
        if not intents:
            return
        by_shard: Dict[int, List[WriteIntent]] = {}
        for intent in intents:
            by_shard.setdefault(self.shard_of(intent.key.pid), []).append(intent)
        txn_id = self.next_txn_id()
        self.txn_attempts += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            span = tracer.begin(
                "tafdb.txn", self.sim.now, category="txn",
                parent=ctx.trace if ctx is not None else None)
            span.annotate(txn_id=txn_id, shards=len(by_shard),
                          intents=len(intents),
                          mode="1pc" if len(by_shard) == 1 else "2pc")
        else:
            span = None
        if len(by_shard) == 1:
            shard_id, shard_intents = next(iter(by_shard.items()))
            server = self.servers[self.partitioner.server_of_shard(shard_id)]
            try:
                yield from self.runtime.rpc(
                    server, "execute", shard_id, txn_id, shard_intents, ctx=ctx)
            except TransactionAbort as exc:
                self.txn_aborts += 1
                self._count_txn("tafdb.aborts." + exc.reason)
                if span is not None:
                    span.annotate(abort_reason=exc.reason)
                    tracer.end(span, self.sim.now, ok=False)
                raise
            self._count_txn("tafdb.commits")
            if span is not None:
                tracer.end(span, self.sim.now)
            return
        try:
            yield from self._two_phase_commit(txn_id, by_shard, ctx, span)
        except TransactionAbort as exc:
            self._count_txn("tafdb.aborts." + exc.reason)
            if span is not None:
                span.annotate(abort_reason=exc.reason)
                tracer.end(span, self.sim.now, ok=False)
            raise
        self._count_txn("tafdb.commits")
        if span is not None:
            tracer.end(span, self.sim.now)

    def _two_phase_commit(self, txn_id: str,
                          by_shard: Dict[int, List[WriteIntent]],
                          ctx: Optional[OpContext], span=None):
        tracer = self.sim.tracer
        shard_ids = sorted(by_shard)
        if span is not None:
            pspan = tracer.begin("tafdb.prepare", self.sim.now,
                                 category="txn", parent=span)
        else:
            pspan = None
        legs = [self._prepare_one(txn_id, sid, by_shard[sid], ctx)
                for sid in shard_ids]
        if pspan is not None:
            label = tracer.current_op_label()
            legs = [self._fanout_leg("prepare", pspan, leg, label)
                    for leg in legs]
        prepares = [self._guarded(leg) for leg in legs]
        outcomes = yield from self.runtime.gather(prepares)
        failures = [err for ok, err in outcomes if not ok]
        if pspan is not None:
            tracer.end(pspan, self.sim.now, ok=not failures)
        if failures:
            prepared = [sid for sid, (ok, _) in zip(shard_ids, outcomes) if ok]
            yield from self._finish(txn_id, prepared, "abort", ctx, span)
            self.txn_aborts += 1
            raise failures[0]
        yield from self._finish(txn_id, shard_ids, "commit", ctx, span)

    def _prepare_one(self, txn_id: str, shard_id: int,
                     intents: List[WriteIntent], ctx: Optional[OpContext]):
        server = self.servers[self.partitioner.server_of_shard(shard_id)]
        yield from self.runtime.rpc(
            server, "prepare", shard_id, txn_id, intents, ctx=ctx)

    def _finish(self, txn_id: str, shard_ids: List[int], verb: str,
                ctx: Optional[OpContext], span=None):
        if not shard_ids:
            return
        tracer = self.sim.tracer
        if span is not None:
            fspan = tracer.begin("tafdb." + verb, self.sim.now,
                                 category="txn", parent=span)
        else:
            fspan = None
        rounds = []
        label = tracer.current_op_label() if fspan is not None else None
        for shard_id in shard_ids:
            server = self.servers[self.partitioner.server_of_shard(shard_id)]
            leg = self.runtime.rpc(server, verb, shard_id, txn_id, ctx=ctx)
            if fspan is not None:
                leg = self._fanout_leg(verb, fspan, leg, label)
            rounds.append(self._swallow(leg))
        yield from self.runtime.gather(rounds)
        if fspan is not None:
            tracer.end(fspan, self.sim.now)

    @staticmethod
    def _guarded(generator):
        """Convert exceptions into (ok, error) results so AllOf never fails
        mid-flight with sibling prepares still holding locks."""
        def runner():
            try:
                yield from generator
                return (True, None)
            except TransactionAbort as exc:
                return (False, exc)
        return runner()

    @staticmethod
    def _swallow(generator):
        def runner():
            try:
                yield from generator
            except TransactionAbort:
                pass
        return runner()
