"""Row model of the TafDB metadata table."""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from repro.paths import ATTR_SENTINEL
from repro.types import AttrMeta, EntryKind, Permission


@dataclasses.dataclass(frozen=True, order=True)
class RowKey:
    """Composite primary key: (parent id, name, transaction timestamp).

    ``ts == 0`` marks a primary record; delta records carry the creating
    transaction's unique timestamp (Figure 8).
    """

    pid: int
    name: str
    ts: int = 0

    @property
    def is_delta(self) -> bool:
        return self.name == ATTR_SENTINEL and self.ts != 0

    @property
    def is_attr(self) -> bool:
        return self.name == ATTR_SENTINEL


def dirent_key(pid: int, name: str) -> RowKey:
    """Key of the dirent row for entry ``name`` under directory ``pid``."""
    return RowKey(pid, name, 0)


def attr_key(dir_id: int) -> RowKey:
    """Key of a directory's primary attribute row (co-located with its
    children because the key's pid is the directory's own id)."""
    return RowKey(dir_id, ATTR_SENTINEL, 0)


def delta_key(dir_id: int, ts: int) -> RowKey:
    """Key of one delta record for directory ``dir_id``."""
    if ts == 0:
        raise ValueError("delta timestamps must be non-zero")
    return RowKey(dir_id, ATTR_SENTINEL, ts)


@dataclasses.dataclass(frozen=True)
class Dirent:
    """Access metadata stored in a dirent row.

    For objects, ``attrs`` carries the full attribute record inline; for
    directories ``attrs`` is None and attributes live in the attribute row.
    """

    id: int
    kind: EntryKind
    permission: Permission = Permission.ALL
    attrs: Optional[AttrMeta] = None

    @property
    def is_dir(self) -> bool:
        return self.kind is EntryKind.DIRECTORY


@dataclasses.dataclass(frozen=True)
class AttrDelta:
    """One conflict-free out-of-place attribute update (§5.2.1)."""

    link_delta: int = 0
    entry_delta: int = 0
    size_delta: int = 0
    mtime: float = 0.0

    def apply_to(self, attrs: AttrMeta) -> None:
        """Fold this delta into a mutable attribute record (compaction)."""
        attrs.link_count += self.link_delta
        attrs.entry_count += self.entry_delta
        attrs.size += self.size_delta
        if self.mtime > attrs.mtime:
            attrs.mtime = self.mtime


#: What a row's value may be.
RowValue = Union[Dirent, AttrMeta, AttrDelta]


@dataclasses.dataclass
class Row:
    """A stored row: value plus its optimistic-concurrency version."""

    key: RowKey
    value: RowValue
    version: int = 1

    def snapshot(self) -> "Row":
        """Copy handed to readers so cached references can't see later writes."""
        value = self.value
        if isinstance(value, AttrMeta):
            value = value.copy()
        return Row(self.key, value, self.version)
