"""Critical-path analysis and the what-if ("virtual speedup") predictor.

The cost profiler (:mod:`repro.sim.profile`) answers *where every simulated
microsecond went*; this module answers the sharper question *which
microseconds actually gated end-to-end latency* — and, on top of that,
*what a hypothesised fix would buy*.

Extraction
----------
Every completed operation runs as one client process, and RPC handlers
execute inline in the calling process, so an op's dynamic span tree
(``Span.dyn_parent_id``) is a **serial decomposition** of its wall clock:
sibling intervals are disjoint and self-times telescope to the root's
duration exactly.  Parallel sub-work (the 2PC fan-out) enters the tree
through explicit ``join_to`` edges — spans annotated with the fan-out
wait span they join back into; within a group of time-overlapping
siblings only the **gating leg** (the one the join actually waited on,
i.e. the last to finish) stays on the path, and the overlapped legs'
cost surfaces as off-path slack in the contrast.  :func:`build_critpath`
walks each successful ``op`` root and splits every span's self-time into
gating segments:

* the cpu / fsync / wire charges the sim layer attributed to the span,
* ``queue`` charges refined by the resource waited on
  (``queue:cpu`` / ``queue:disk`` / ``queue:latch``, from
  ``Span.queue_res``),
* **blocked-on edges** (``Span.blocked``) — time the span spent waiting on
  *another process*, decomposed into its causes.  The cross-process waits
  in the stack are the Raft commit — the IndexNode service stamps the
  commit timeline so the wait splits into ``raft.queue`` (batch window),
  ``raft.flush`` (leader log fsync), ``raft.follower_flush`` /
  ``raft.follower_apply`` (the gating follower's fsync and apply,
  piggybacked on its AppendReply and charged to the follower's host) and
  ``raft.replicate`` (the remaining replication round trips — genuinely
  network-shaped) — and the follower read barrier
  (``raft.read_barrier``, the commitIndex round trip replica reads wait
  on, charged as wire),
* an ``idle`` residual for self-time no charge or blocked edge explains.

Summed over an op's tree the segments equal the op's duration (up to float
addition dust), so the aggregated **gating profile** — microseconds gated
per (host, frame, kind) center — covers 100% of end-to-end latency and a
center's ``share`` reads directly as "fraction of client latency gated
here".

Slack
-----
Because each op is a serial chain, every on-path microsecond has zero
slack: shrinking it moves the op's finish time one-for-one (first order —
queueing effects are where the what-if *rerun* earns its keep).  The
interesting slack lives at the center level: :func:`contrast_with_profile`
aligns the gating profile against the total-cost profile, and the
difference — cost attributed somewhere, but never on any op's path — is
**off-path work** (Raft heartbeats, follower fsyncs absorbed in the
replicate edge, compaction, maintenance).  Speeding up an off-path center
predicts ≈0 client-visible gain, which the what-if engine makes testable.

What-if
-------
:func:`predict_speedup` maps each gating center to the
:data:`~repro.sim.host.COMPONENT_FIELDS` component that scales it and
computes the first-order gain ``gated_us * (1 - 1/factor)`` of a
:class:`~repro.sim.host.CostOverrides` set.  Uniquely, because the cluster
is a deterministic DES, the prediction is *checkable*: rerun the sim with
the overrides actually applied (``MantleConfig.overrides``) and compare.
``mantle-exp whatif`` automates exactly that loop.

Known first-order limits (documented, and why validation picks the probes
it does): with the follower piggyback split, ``raft.replicate`` is the
wire-only remainder and maps to ``net.rtt`` (the stamps come from the
*gating* follower, so residual skew from the non-gating replicas still
lands in replicate); queue segments scale with their underlying resource
only approximately (we assume wait shrinks proportionally with service
time).
Most importantly the model is **open-loop**: past the saturation knee,
shrinking one center raises throughput, which refills the other queues
and claws back much of the predicted gain — a closed-loop effect no
slack model sees.  Validation therefore probes at figure *knee* points
(latency just lifting off the plateau), where the measured reruns show
first-order predictions hold to ~10%; at deep saturation the same probes
over-predict ~2x, which the whatif rerun makes visible rather than
hiding.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim.host import COMPONENT_FIELDS, CostOverrides
from repro.sim.trace import CAT_OP, Span

#: Occupant tag used when a queue segment carries no ``queue_by`` entry
#: (unlabelled holder, sampled-out root, float-dust residuals).
UNKNOWN_CULPRIT = ("(unknown)", None)

#: Gating-segment kinds, in display order.  ``queue:*`` refines ``queue``
#: by the resource waited on; blocked-on edges reuse cpu/fsync/wire/queue.
SEGMENT_KINDS = ("cpu", "fsync", "wire", "queue:cpu", "queue:disk",
                 "queue:latch", "queue", "idle")

#: A gating center: (host, frame, kind) -> microseconds on some op's path.
Center = Tuple[Optional[str], str, str]


def collapse_kind(kind: str) -> str:
    """Fold ``queue:<resource>`` back to ``queue`` (profile alignment)."""
    return "queue" if kind.startswith("queue:") else kind


class CritPath:
    """The aggregated critical-path (gating) profile of one traced run.

    Attributes
    ----------
    gated:
        (host, frame, kind) -> microseconds gating end-to-end latency.
        Frames are span names, except blocked-on segments where the frame
        is the *cause* (``raft.flush``, ``raft.replicate``, ...).
    ops / op_failures:
        successful roots folded in / failed roots skipped (failed ops
        don't contribute latency, mirroring ``MetricSet``).
    total_us:
        summed duration of the folded roots == sum of ``gated`` values
        (up to float dust); the share denominator.
    root_paths:
        (root span, extracted path microseconds) per folded op — the
        per-op conservation invariant ``path_us == root.duration_us``.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.ops = 0
        self.op_failures = 0
        self.total_us = 0.0
        self.gated: Dict[Center, float] = {}
        self.ops_by_name: Dict[str, int] = {}
        self.root_paths: List[Tuple[Span, float]] = []
        self._by_id: Dict[int, Span] = {}
        self._children: Dict[int, List[Span]] = {}
        self._self_us: Dict[int, float] = {}

    # -- derived views -----------------------------------------------------

    @property
    def mean_latency_us(self) -> float:
        return self.total_us / self.ops if self.ops else 0.0

    def shares(self) -> Dict[Center, float]:
        """center -> fraction of end-to-end latency it gates."""
        total = self.total_us
        if total <= 0.0:
            return {key: 0.0 for key in self.gated}
        return {key: us / total for key, us in self.gated.items()}

    def top_gating(self, n: int = 15) -> List[Tuple[Center, float]]:
        """The ``n`` centers gating the most latency, largest first."""
        ranked = sorted(self.gated.items(),
                        key=lambda kv: (-kv[1], _center_sort_key(kv[0])))
        return ranked[:n]

    def gated_by_kind(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (_host, _frame, kind), us in self.gated.items():
            out[kind] = out.get(kind, 0.0) + us
        return out

    def host_kind_totals(self) -> Dict[Tuple[Optional[str], str], float]:
        """(host, collapsed kind) -> gated us; the contrast alignment."""
        out: Dict[Tuple[Optional[str], str], float] = {}
        for (host, _frame, kind), us in self.gated.items():
            key = (host, collapse_kind(kind))
            out[key] = out.get(key, 0.0) + us
        return out

    def conservation_error(self) -> float:
        """Relative |sum(gated) - sum(root durations)|; float dust only."""
        gated = sum(self.gated.values())
        return abs(gated - self.total_us) / max(self.total_us, 1e-9)

    # -- exemplar rendering -------------------------------------------------

    def exemplar_root(self) -> Optional[Span]:
        """The folded op whose duration is closest to the mean latency —
        a "typical" operation, deterministically chosen."""
        if not self.root_paths:
            return None
        mean = self.mean_latency_us
        return min(self.root_paths,
                   key=lambda rp: (abs(rp[0].duration_us - mean),
                                   rp[0].span_id))[0]

    def render_exemplar(self, root: Optional[Span] = None) -> List[str]:
        """Render one op's path as an indented tree with per-span gating
        segments (the drill-down behind the aggregated centers)."""
        root = root or self.exemplar_root()
        if root is None:
            return ["(no completed ops traced)"]
        lines = [f"{root.name}  {root.duration_us:.1f}us end-to-end"]

        def describe(span: Span) -> str:
            parts = []
            for host, _frame, kind, us in _segments_of(
                    span, self._self_us.get(span.span_id, 0.0)):
                if us > 0.005:
                    where = f"@{host}" if host else ""
                    parts.append(f"{kind}{where} {us:.1f}")
            return ", ".join(parts) if parts else "-"

        def walk(span: Span, depth: int) -> None:
            pad = "  " * depth
            if depth:
                lines.append(f"{pad}{span.name}  {span.duration_us:.1f}us"
                             f"  [{describe(span)}]")
            else:
                lines.append(f"{pad}gates: {describe(span)}")
            for child in sorted(self._children.get(span.span_id, ()),
                                key=lambda s: (s.start_us, s.span_id)):
                walk(child, depth + 1)

        walk(root, 0)
        return lines


def _center_sort_key(center: Center) -> Tuple[str, str, str]:
    host, frame, kind = center
    return (host or "", frame, kind)


def _segments_of(span: Span, self_us: float) -> List[
        Tuple[Optional[str], str, str, float]]:
    """Decompose one span's self-time into (host, frame, kind, us) gating
    segments.  By construction the segments sum to ``self_us`` up to float
    dust: charges are taken verbatim, queue charges are refined by their
    resource tags, blocked-on edges refine (and are capped by) the idle
    residual, and whatever remains is ``idle``.
    """
    frame = span.name
    out: List[Tuple[Optional[str], str, str, float]] = []
    charged = 0.0
    if span.costs:
        queue_res = dict(span.queue_res) if span.queue_res else {}
        for (kind, host), us in span.costs.items():
            charged += us
            if kind != "queue":
                out.append((host, frame, kind, us))
                continue
            remaining = us
            for (resource, rhost), rus in list(queue_res.items()):
                if rhost != host or rus <= 0.0 or remaining <= 0.0:
                    continue
                take = min(rus, remaining)
                out.append((host, frame, f"queue:{resource}", take))
                remaining -= take
                del queue_res[(resource, rhost)]
            if remaining > 0.0:
                out.append((host, frame, "queue", remaining))
    avail = self_us - charged
    if avail < 0.0:
        avail = 0.0
    if span.blocked:
        blocked_total = sum(span.blocked.values())
        scale = 1.0
        if blocked_total > avail:
            scale = avail / blocked_total if blocked_total > 0.0 else 0.0
        used = 0.0
        for (cause, kind, host), us in span.blocked.items():
            us *= scale
            if us > 0.0:
                out.append((host, cause, kind, us))
                used += us
        avail -= used
    if avail > 0.0:
        out.append((span.host, frame, "idle", avail))
    return out


def _fold_children(kids: List[Span]) -> List[Span]:
    """Select the children on the gating path.

    Serial siblings (disjoint intervals — the normal stack-discipline
    case) all stay.  Siblings whose intervals overlap are a fan-out
    group: the join waited on whichever leg finished *last*, so only
    that leg gates; the others ran in its shadow.  Back-to-back spans
    (end == next start, exact in the DES) are serial, not overlapping.
    """
    kids = sorted(kids, key=lambda s: (s.start_us, s.end_us, s.span_id))
    folded: List[Span] = []
    group = [kids[0]]
    group_end = kids[0].end_us
    for kid in kids[1:]:
        if kid.start_us < group_end:
            group.append(kid)
            group_end = max(group_end, kid.end_us)
        else:
            folded.append(max(group,
                              key=lambda s: (s.end_us, s.span_id)))
            group = [kid]
            group_end = kid.end_us
    folded.append(max(group, key=lambda s: (s.end_us, s.span_id)))
    return folded


def build_critpath(spans: Iterable[Span], name: str = "",
                   root_category: str = CAT_OP,
                   root_name: Optional[str] = None,
                   require_ok: bool = True,
                   root_where: Optional[Callable[[Span], bool]] = None
                   ) -> CritPath:
    """Extract and aggregate the critical path of every traced op.

    Only *successful*, *dynamically rooted* ``op``-category spans are
    folded (an op whose root fell out of the ring cannot be decomposed;
    failed ops contribute no latency).  Per root, the extracted segments
    sum to the root's duration exactly — the telescoping identity the
    profiler relies on, inherited here segment-by-segment, with fan-out
    groups contributing exactly their gating leg.

    ``root_category`` / ``root_name`` / ``require_ok`` repoint the fold at
    non-op roots — e.g. ``root_category="raft", root_name="raft.election"``
    decomposes a traced failover's unavailability window instead of client
    ops (lost candidacies are still skipped unless ``require_ok=False``).
    ``root_where`` filters root spans further — the triage path uses it to
    fold only the tail exemplars of one phase (the predicate sees the root
    span; roots it rejects are skipped without counting as failures).
    """
    crit = CritPath(name)
    finished = [s for s in spans if s.end_us is not None]
    by_id = {s.span_id: s for s in finished}
    raw_children: Dict[int, List[Span]] = {}
    for span in finished:
        pid = span.dyn_parent_id
        if (not pid or pid not in by_id) and span.attrs is not None:
            # A fan-out leg: a dynamic root that joins back into the
            # span that awaited it (see TafDBClient._fanout_leg).
            pid = span.attrs.get("join_to", 0)
        if pid and pid in by_id:
            raw_children.setdefault(pid, []).append(span)
    children = {pid: _fold_children(kids)
                for pid, kids in raw_children.items()}
    child_us: Dict[int, float] = {
        pid: sum(kid.duration_us for kid in kids)
        for pid, kids in children.items()}
    crit._by_id = by_id
    crit._children = children
    self_us = crit._self_us
    for span in finished:
        value = span.duration_us - child_us.get(span.span_id, 0.0)
        self_us[span.span_id] = value if value > 0.0 else 0.0

    gated = crit.gated
    for span in finished:
        if span.category != root_category:
            continue
        if root_name is not None and span.name != root_name:
            continue
        if span.dyn_parent_id and span.dyn_parent_id in by_id:
            continue  # op nested under another op's tree: not a root
        if root_where is not None and not root_where(span):
            continue
        if require_ok and not span.ok:
            crit.op_failures += 1
            continue
        crit.ops += 1
        crit.ops_by_name[span.name] = crit.ops_by_name.get(span.name, 0) + 1
        crit.total_us += span.duration_us
        path_us = 0.0
        stack = [span]
        while stack:
            node = stack.pop()
            for host, frame, kind, us in _segments_of(
                    node, self_us[node.span_id]):
                key = (host, frame, kind)
                gated[key] = gated.get(key, 0.0) + us
                path_us += us
            stack.extend(children.get(node.span_id, ()))
        crit.root_paths.append((span, path_us))
    return crit


def critpath_from_tracer(tracer, name: str = "") -> CritPath:
    """Fold one tracer's finished spans into a gating profile."""
    return build_critpath(tracer.spans, name=name)


# ---------------------------------------------------------------------------
# Blame: who delayed whom, per queue-kind gating segment.
# ---------------------------------------------------------------------------

def _queue_resource(frame: str, kind: str) -> Optional[str]:
    """The occupant-tagged resource behind a queue-kind gating segment,
    or ``None`` for non-queue segments.  ``queue:<res>`` names it
    directly; the Raft batch-window blocked edge queues on the leader's
    log (tagged ``"raft"``); an untagged ``queue`` residual matches no
    occupant map and falls to the unknown culprit."""
    if kind.startswith("queue:"):
        return kind.partition(":")[2]
    if kind == "queue":
        return "raft" if frame == "raft.queue" else "other"
    return None


#: One blame cell key: (victim op, victim tenant, culprit op,
#: culprit tenant, resource, host).
BlameKey = Tuple[str, Optional[str], str, Optional[str], str,
                 Optional[str]]


class BlameMatrix:
    """Who-delayed-whom: queue microseconds on victims' critical paths,
    attributed to the occupant that held (or preceded them at) the
    contended resource.

    Every queue-kind gating segment of every folded op is distributed
    over the span's ``queue_by`` occupant tags for that (resource, host)
    — proportionally, so the matrix total equals the queue-segment total
    *exactly* (float dust aside); segments with no tags land under
    :data:`UNKNOWN_CULPRIT`.  ``total_us`` is the all-segments denominator
    (the folded ops' end-to-end latency), so ``queue_share`` reads as
    "fraction of client latency spent queueing behind someone".
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.ops = 0
        self.total_us = 0.0
        self.total_queue_us = 0.0
        self.cells: Dict[BlameKey, float] = {}

    @property
    def blamed_us(self) -> float:
        return sum(self.cells.values())

    @property
    def queue_share(self) -> float:
        """Fraction of end-to-end latency that was queueing."""
        if self.total_us <= 0.0:
            return 0.0
        return self.total_queue_us / self.total_us

    def conservation_error(self) -> float:
        """Relative |sum(cells) - sum(queue segments)|; float dust only."""
        return (abs(self.blamed_us - self.total_queue_us)
                / max(self.total_queue_us, 1e-9))

    def top_culprits(self, n: int = 15) -> List[
            Tuple[Tuple[str, Optional[str], str], float]]:
        """(culprit op, culprit tenant, resource) -> us, largest first."""
        agg: Dict[Tuple[str, Optional[str], str], float] = {}
        for (_vo, _vt, c_op, c_ten, res, _host), us in self.cells.items():
            key = (c_op, c_ten, res)
            agg[key] = agg.get(key, 0.0) + us
        ranked = sorted(agg.items(),
                        key=lambda kv: (-kv[1], kv[0][0], kv[0][1] or "",
                                        kv[0][2]))
        return ranked[:n]

    def victim_totals(self) -> Dict[Tuple[str, Optional[str]], float]:
        """(victim op, victim tenant) -> blamed us."""
        out: Dict[Tuple[str, Optional[str]], float] = {}
        for (v_op, v_ten, _co, _ct, _res, _host), us in self.cells.items():
            key = (v_op, v_ten)
            out[key] = out.get(key, 0.0) + us
        return out

    def tenant_matrix(self) -> Dict[Tuple[Optional[str], Optional[str]],
                                    float]:
        """(victim tenant, culprit tenant) -> us: the interference-share
        rollup multitenant runs read (None = untenanted work)."""
        out: Dict[Tuple[Optional[str], Optional[str]], float] = {}
        for (_vo, v_ten, _co, c_ten, _res, _host), us in self.cells.items():
            key = (v_ten, c_ten)
            out[key] = out.get(key, 0.0) + us
        return out

    def interference_us(self) -> float:
        """Queue time blamed on a *different* op type or tenant than the
        victim's own — cross-traffic interference, as opposed to
        self-contention within one op population."""
        return sum(
            us for (v_op, v_ten, c_op, c_ten, _r, _h), us
            in self.cells.items() if (v_op, v_ten) != (c_op, c_ten))


def build_blame(crit: CritPath, name: str = "") -> BlameMatrix:
    """Fold a :class:`CritPath`'s queue segments into a blame matrix.

    Walks exactly the spans :func:`build_critpath` folded (same children
    selection, same self-times, same segment decomposition), so the
    matrix conserves against the profile's ``queue*`` centers by
    construction — the invariant ``mantle-exp blame`` gates on.
    """
    blame = BlameMatrix(name or crit.name)
    blame.ops = crit.ops
    blame.total_us = crit.total_us
    cells = blame.cells
    self_us = crit._self_us
    children = crit._children
    for root, _path_us in crit.root_paths:
        attrs = root.attrs
        victim = (root.name, attrs.get("tenant") if attrs else None)
        stack = [root]
        while stack:
            node = stack.pop()
            for host, frame, kind, us in _segments_of(
                    node, self_us[node.span_id]):
                resource = _queue_resource(frame, kind)
                if resource is None or us <= 0.0:
                    continue
                blame.total_queue_us += us
                tags = node.queue_by
                shares = []
                if tags:
                    shares = [((op, tenant), t_us)
                              for (op, tenant, res, t_host), t_us
                              in tags.items()
                              if res == resource and t_host == host
                              and t_us > 0.0]
                total = sum(t_us for _c, t_us in shares)
                if total <= 0.0:
                    key = victim + UNKNOWN_CULPRIT + (resource, host)
                    cells[key] = cells.get(key, 0.0) + us
                    continue
                for culprit, t_us in shares:
                    key = victim + culprit + (resource, host)
                    cells[key] = cells.get(key, 0.0) + us * (t_us / total)
            stack.extend(children.get(node.span_id, ()))
    return blame


def render_blame_exemplar(crit: CritPath,
                          root: Optional[Span] = None) -> List[str]:
    """One victim op's path with each queue segment naming its culprits —
    the drill-down behind the aggregated matrix."""
    root = root or crit.exemplar_root()
    if root is None:
        return ["(no completed ops traced)"]
    attrs = root.attrs
    tenant = attrs.get("tenant") if attrs else None
    who = f"{root.name}" + (f" [tenant {tenant}]" if tenant else "")
    lines = [f"{who}  {root.duration_us:.1f}us end-to-end"]

    def culprits_of(span: Span, resource: str,
                    host: Optional[str]) -> str:
        tags = span.queue_by
        if not tags:
            return "(unknown)"
        shares = [((op, ten), us) for (op, ten, res, t_host), us
                  in tags.items()
                  if res == resource and t_host == host and us > 0.0]
        total = sum(us for _c, us in shares)
        if total <= 0.0:
            return "(unknown)"
        shares.sort(key=lambda cu: (-cu[1], cu[0][0], cu[0][1] or ""))
        parts = []
        for (op, ten), us in shares[:3]:
            label = op + (f"/{ten}" if ten else "")
            parts.append(f"{label} {us / total:.0%}")
        return ", ".join(parts)

    def walk(span: Span, depth: int) -> None:
        segs = []
        for host, frame, kind, us in _segments_of(
                span, crit._self_us.get(span.span_id, 0.0)):
            resource = _queue_resource(frame, kind)
            if resource is None or us <= 0.005:
                continue
            where = f"@{host}" if host else ""
            segs.append(f"{kind}{where} {us:.1f}us <- "
                        f"{culprits_of(span, resource, host)}")
        if depth and (segs or crit._children.get(span.span_id)):
            pad = "  " * depth
            detail = "; ".join(segs) if segs else "-"
            lines.append(f"{pad}{span.name}  [{detail}]")
        elif not depth and segs:
            lines.append(f"  queued: {'; '.join(segs)}")
        for child in sorted(crit._children.get(span.span_id, ()),
                            key=lambda s: (s.start_us, s.span_id)):
            walk(child, depth + 1)

    walk(root, 0)
    return lines


# ---------------------------------------------------------------------------
# Contrast: gating profile vs total-cost profile -> off-path slack.
# ---------------------------------------------------------------------------

class ContrastRow:
    """One (host, kind) alignment of gated vs total attributed cost."""

    __slots__ = ("host", "kind", "gated_us", "total_us")

    def __init__(self, host: Optional[str], kind: str,
                 gated_us: float, total_us: float):
        self.host = host
        self.kind = kind
        self.gated_us = gated_us
        self.total_us = total_us

    @property
    def offpath_us(self) -> float:
        """Attributed cost never on any op's path: the center's slack —
        work you can speed up without moving client latency."""
        return max(0.0, self.total_us - self.gated_us)

    @property
    def gated_frac(self) -> float:
        """Fraction of this center's cost that gates latency."""
        if self.total_us <= 0.0:
            return 0.0
        return min(1.0, self.gated_us / self.total_us)


def contrast_with_profile(crit: CritPath, profile) -> List[ContrastRow]:
    """Align the gating profile with a :class:`~repro.sim.profile.CostProfile`
    at (host, kind) granularity, largest off-path slack first.

    ``idle`` is excluded on both sides (it is a residual, not a cost) and
    blocked-on segments are excluded from the gated side: their cost is
    *attributed* on the worker process's own spans (raft.flush fsync,
    raft.msg wire...), so including the waiter's view too would double
    count.  What remains compares like-for-like: cost charged at sim
    sites, split by whether any op's path ran through it.
    """
    total: Dict[Tuple[Optional[str], str], float] = {}
    for (host, _frame, kind), us in profile.centers.items():
        if kind == "idle":
            continue
        key = (host, kind)
        total[key] = total.get(key, 0.0) + us
    blocked_frames = ("raft.queue", "raft.flush", "raft.follower_flush",
                      "raft.follower_apply", "raft.replicate",
                      "raft.commit", "raft.read_barrier")
    gated: Dict[Tuple[Optional[str], str], float] = {}
    for (host, frame, kind), us in crit.gated.items():
        if kind == "idle" or frame in blocked_frames:
            continue
        key = (host, collapse_kind(kind))
        gated[key] = gated.get(key, 0.0) + us
    rows = [ContrastRow(host, kind, gated.get((host, kind), 0.0), us)
            for (host, kind), us in total.items()]
    rows.sort(key=lambda r: (-r.offpath_us, r.host or "", r.kind))
    return rows


# ---------------------------------------------------------------------------
# What-if: first-order prediction of a virtual speedup.
# ---------------------------------------------------------------------------

def component_of(host: Optional[str], frame: str, kind: str,
                 include_queue: bool = True) -> Optional[str]:
    """Map a gating center to the override component that scales it.

    Returns ``None`` for centers no single cost constant controls:
    ``idle``, latch queueing (serialisation, not a cost), the Raft batch
    window (config, not a cost) and the undecomposed ``raft.commit``
    fallback.  ``raft.replicate`` — wire-only now that follower fsync/cpu
    are split out via the AppendReply piggyback — maps to ``net.rtt``.
    Queue segments map to the component of the resource they waited on
    (first-order: waits shrink with service time) unless
    ``include_queue`` is off.
    """
    if kind == "idle":
        return None
    if frame in ("raft.queue", "raft.commit"):
        return None
    if kind == "wire":
        return "net.rtt"
    resource = None
    if kind.startswith("queue"):
        if not include_queue:
            return None
        resource = kind.partition(":")[2]
        if resource in ("", "latch"):
            return None
    host = host or ""
    if kind == "fsync" or resource == "disk":
        if "tafdb" in host:
            return "tafdb.fsync"
        return "raft.fsync"  # IndexNode/dir-server disks hold Raft logs
    # cpu (or queue:cpu) by host class; raft frames override the host.
    if frame.startswith("raft."):
        return "raft.cpu"
    if "tafdb" in host:
        return "tafdb.cpu"
    if "indexnode" in host or "dir" in host or "coordinator" in host:
        return "index.cpu"
    if "proxy" in host:
        return "proxy.cpu"
    return None


class Prediction:
    """First-order what-if estimate for one override set."""

    __slots__ = ("overrides", "baseline_mean_us", "ops", "gain_us_per_op",
                 "matched_us_per_op", "include_queue")

    def __init__(self, overrides: CostOverrides, baseline_mean_us: float,
                 ops: int, gain_us_per_op: float,
                 matched_us_per_op: Dict[str, float], include_queue: bool):
        self.overrides = overrides
        self.baseline_mean_us = baseline_mean_us
        self.ops = ops
        self.gain_us_per_op = gain_us_per_op
        self.matched_us_per_op = matched_us_per_op
        self.include_queue = include_queue

    @property
    def predicted_mean_us(self) -> float:
        return max(0.0, self.baseline_mean_us - self.gain_us_per_op)

    @property
    def predicted_latency_delta_frac(self) -> float:
        """Predicted relative latency reduction (0.31 = 31% faster)."""
        if self.baseline_mean_us <= 0.0:
            return 0.0
        return self.gain_us_per_op / self.baseline_mean_us

    @property
    def predicted_throughput_ratio(self) -> float:
        """Closed-loop throughput multiplier: clients are latency-bound,
        so throughput scales inversely with mean latency."""
        predicted = self.predicted_mean_us
        if predicted <= 0.0:
            return float("inf")
        return self.baseline_mean_us / predicted


def predict_speedup(crit: CritPath, overrides: CostOverrides,
                    include_queue: bool = True) -> Prediction:
    """Predict the latency delta of ``overrides`` from gating slack alone.

    First-order model: a center gated for ``g`` microseconds per run,
    scaled by factor ``f``, returns ``g * (1 - 1/f)`` of latency.  Centers
    that map to no overridden component predict zero — which is the whole
    point for off-path overrides.
    """
    factors = overrides.as_dict()
    for component in factors:
        if component not in COMPONENT_FIELDS:  # pragma: no cover
            raise ValueError(f"unknown component {component!r}")
    ops = max(crit.ops, 1)
    gain = 0.0
    matched: Dict[str, float] = {component: 0.0 for component in factors}
    for (host, frame, kind), us in crit.gated.items():
        component = component_of(host, frame, kind,
                                 include_queue=include_queue)
        if component is None:
            continue
        factor = factors.get(component)
        if factor is None:
            continue
        matched[component] += us / ops
        gain += (us / ops) * (1.0 - 1.0 / factor)
    return Prediction(overrides, crit.mean_latency_us, crit.ops, gain,
                      matched, include_queue)


# ---------------------------------------------------------------------------
# Queueing-aware correction: the closed-loop bottleneck bound.
# ---------------------------------------------------------------------------

class Station:
    """One service station (host x cpu|disk) in the bottleneck-law view."""

    __slots__ = ("host", "resource", "demand_us", "scaled_demand_us",
                 "utilization", "mean_queue")

    def __init__(self, host: str, resource: str, demand_us: float,
                 scaled_demand_us: float, utilization: float,
                 mean_queue: float):
        self.host = host
        self.resource = resource
        #: Measured per-op service demand busy_us / (ops * capacity).
        self.demand_us = demand_us
        #: Demand after subtracting the overridden components' saved work.
        self.scaled_demand_us = scaled_demand_us
        self.utilization = utilization
        self.mean_queue = mean_queue


class CorrectedPrediction:
    """Slack prediction floored by the closed-loop bottleneck law.

    The first-order slack model shrinks every gated microsecond
    independently — open-loop, so past the saturation knee it
    over-predicts (~2x): shrinking one center raises throughput, which
    refills the bottleneck queue.  But a closed system of ``clients``
    concurrent requesters cannot respond faster than the bottleneck
    law allows: with per-op demand ``D_i = busy_us_i / (ops *
    capacity_i)`` at each station, throughput is capped at ``1 /
    max(D_i)`` per client slot, i.e. mean latency is floored at
    ``clients * max(D_i')`` where ``D_i'`` is the demand *after* the
    override removes its share of service time.  The corrected estimate
    is simply ``max(slack prediction, bottleneck floor)``: at knee
    points the floor is slack (the slack model already holds to ~10%),
    deep in saturation the floor binds and removes the ~2x optimism.
    """

    __slots__ = ("slack", "clients", "stations", "bottleneck_mean_us")

    def __init__(self, slack: Prediction, clients: int,
                 stations: List[Station], bottleneck_mean_us: float):
        self.slack = slack
        self.clients = clients
        self.stations = stations
        self.bottleneck_mean_us = bottleneck_mean_us

    @property
    def predicted_mean_us(self) -> float:
        return max(self.slack.predicted_mean_us, self.bottleneck_mean_us)

    @property
    def bound_binding(self) -> bool:
        """True when the bottleneck floor (not slack) sets the estimate —
        i.e. the run is past the knee and the correction is doing work."""
        return self.bottleneck_mean_us > self.slack.predicted_mean_us

    def bottleneck(self) -> Optional[Station]:
        """The station with the largest post-override demand."""
        if not self.stations:
            return None
        return max(self.stations,
                   key=lambda s: (s.scaled_demand_us, s.host, s.resource))


#: Busy-time telemetry behind each station resource.
_STATION_METRICS = (("host.cpu_busy_us", "cpu"),
                    ("host.disk_busy_us", "disk"))


def predict_speedup_corrected(crit: CritPath, overrides: CostOverrides,
                              profile, telemetry, clients: int,
                              include_queue: bool = True,
                              ) -> CorrectedPrediction:
    """Queueing-aware what-if: slack prediction + bottleneck-law floor.

    ``profile`` is the run's total-cost :class:`~repro.sim.profile.CostProfile`
    (same charge sites as the ``host.*_busy_us`` telemetry counters, so the
    component split of busy time is exact); ``telemetry`` supplies measured
    busy microseconds, capacities and queue depths; ``clients`` is the
    closed-loop population that drove the run.
    """
    slack = predict_speedup(crit, overrides, include_queue=include_queue)
    factors = overrides.as_dict()
    ops = max(crit.ops, 1)
    elapsed = max((root.end_us or 0.0 for root, _us in crit.root_paths),
                  default=0.0)

    # Busy time each override removes, per station: profile centers are
    # total attributed cost (on- and off-path), exactly what the busy
    # counters integrate, so subtracting the overridden components' share
    # scales the measured demand without re-deriving it from the model.
    saved: Dict[Tuple[str, str], float] = {}
    for (host, frame, kind), us in profile.centers.items():
        if kind == "cpu":
            resource = "cpu"
        elif kind == "fsync":
            resource = "disk"
        else:
            continue
        component = component_of(host, frame, kind, include_queue=False)
        factor = factors.get(component) if component else None
        if factor is None or host is None:
            continue
        key = (host, resource)
        saved[key] = saved.get(key, 0.0) + us * (1.0 - 1.0 / factor)

    stations: List[Station] = []
    for metric, resource in _STATION_METRICS:
        for host in sorted(telemetry.hosts(metric)):
            counter = telemetry.find(metric, host)
            if counter is None or counter.total <= 0.0:
                continue
            capacity = counter.capacity if counter.capacity > 0 else 1.0
            busy = counter.total
            scaled_busy = max(0.0, busy - saved.get((host, resource), 0.0))
            gauge = telemetry.find("resource.queued." + resource, host)
            stations.append(Station(
                host, resource,
                demand_us=busy / (ops * capacity),
                scaled_demand_us=scaled_busy / (ops * capacity),
                utilization=(busy / (elapsed * capacity)
                             if elapsed > 0 else 0.0),
                mean_queue=gauge.mean_over() if gauge is not None else 0.0))

    d_max = max((s.scaled_demand_us for s in stations), default=0.0)
    return CorrectedPrediction(slack, clients, stations, clients * d_max)


# ---------------------------------------------------------------------------
# JSON export + validator.
# ---------------------------------------------------------------------------

def to_critpath_payload(crit: CritPath,
                        contrast: Optional[List[ContrastRow]] = None) -> dict:
    """Render the gating profile (and optional contrast) as JSON.

    Values are rounded after aggregation and centers are sorted, so — with
    the simulation itself bit-identical across kernels — the payload is
    byte-identical across ``MANTLE_SIM_FAST`` on/off.
    """
    shares = crit.shares()
    centers = [
        {"host": host, "frame": frame, "kind": kind,
         "gated_us": round(us, 3), "share": round(shares[(host, frame,
                                                          kind)], 6)}
        for (host, frame, kind), us in sorted(
            crit.gated.items(), key=lambda kv: (-kv[1],
                                                _center_sort_key(kv[0])))
    ]
    payload = {
        "name": crit.name,
        "ops": crit.ops,
        "op_failures": crit.op_failures,
        "ops_by_name": dict(sorted(crit.ops_by_name.items())),
        "total_us": round(crit.total_us, 3),
        "mean_latency_us": round(crit.mean_latency_us, 3),
        "centers": centers,
        "exemplar": crit.render_exemplar(),
    }
    if contrast is not None:
        payload["contrast"] = [
            {"host": row.host, "kind": row.kind,
             "gated_us": round(row.gated_us, 3),
             "total_us": round(row.total_us, 3),
             "offpath_us": round(row.offpath_us, 3)}
            for row in contrast
        ]
    return payload


def validate_critpath(payload: Any) -> List[str]:
    """Schema-check a critical-path payload; returns a list of problems.

    Beyond field shapes, checks the load-bearing invariant the export
    must carry: center shares sum to ~1 of end-to-end latency (when any
    ops completed) and no center claims more than the total.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    for field in ("ops", "op_failures"):
        if not isinstance(payload.get(field), int) or payload[field] < 0:
            problems.append(f"{field} must be a non-negative int")
    for field in ("total_us", "mean_latency_us"):
        value = payload.get(field)
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"{field} must be a non-negative number")
    centers = payload.get("centers")
    if not isinstance(centers, list):
        problems.append("missing centers array")
        centers = []
    share_sum = 0.0
    total_us = payload.get("total_us") or 0.0
    for i, center in enumerate(centers):
        where = f"centers[{i}]"
        if not isinstance(center, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(center.get("frame"), str) or not center["frame"]:
            problems.append(f"{where}: missing frame")
        if not isinstance(center.get("kind"), str) or not center["kind"]:
            problems.append(f"{where}: missing kind")
        host = center.get("host")
        if host is not None and not isinstance(host, str):
            problems.append(f"{where}: host must be a string or null")
        gated = center.get("gated_us")
        if not isinstance(gated, (int, float)) or gated < 0:
            problems.append(f"{where}: bad gated_us {gated!r}")
        elif isinstance(total_us, (int, float)) and \
                gated > total_us * (1 + 1e-6) + 1e-3:
            problems.append(f"{where}: gated_us {gated} exceeds total_us")
        share = center.get("share")
        if not isinstance(share, (int, float)) or not 0 <= share <= 1:
            problems.append(f"{where}: bad share {share!r}")
        else:
            share_sum += share
    if centers and isinstance(total_us, (int, float)) and total_us > 0 \
            and abs(share_sum - 1.0) > 1e-3:
        problems.append(f"center shares sum to {share_sum:.6f}, not 1")
    exemplar = payload.get("exemplar")
    if not isinstance(exemplar, list) or \
            not all(isinstance(line, str) for line in exemplar):
        problems.append("exemplar must be a list of strings")
    if "contrast" in payload:
        contrast = payload["contrast"]
        if not isinstance(contrast, list):
            problems.append("contrast must be an array")
        else:
            for i, row in enumerate(contrast):
                if not isinstance(row, dict):
                    problems.append(f"contrast[{i}]: not an object")
                    continue
                for field in ("gated_us", "total_us", "offpath_us"):
                    value = row.get(field)
                    if not isinstance(value, (int, float)) or value < 0:
                        problems.append(
                            f"contrast[{i}]: bad {field} {value!r}")
    return problems


def to_blame_payload(blame: BlameMatrix, crit: CritPath) -> dict:
    """Render a blame matrix as JSON (rounded after aggregation, cells
    sorted), byte-identical across kernels like the critpath payload."""
    total_queue = blame.total_queue_us

    def cell_row(key: BlameKey, us: float) -> dict:
        v_op, v_ten, c_op, c_ten, resource, host = key
        return {"victim_op": v_op, "victim_tenant": v_ten,
                "culprit_op": c_op, "culprit_tenant": c_ten,
                "resource": resource, "host": host,
                "us": round(us, 3),
                "share": round(us / total_queue, 6) if total_queue > 0
                else 0.0}

    cells = [cell_row(key, us) for key, us in sorted(
        blame.cells.items(),
        key=lambda kv: (-kv[1], kv[0][0], kv[0][1] or "", kv[0][2],
                        kv[0][3] or "", kv[0][4], kv[0][5] or ""))]
    culprits = [
        {"culprit_op": c_op, "culprit_tenant": c_ten, "resource": resource,
         "us": round(us, 3),
         "share": round(us / total_queue, 6) if total_queue > 0 else 0.0}
        for (c_op, c_ten, resource), us in blame.top_culprits(n=10 ** 9)
    ]
    tenants = [
        {"victim_tenant": v_ten, "culprit_tenant": c_ten,
         "us": round(us, 3)}
        for (v_ten, c_ten), us in sorted(
            blame.tenant_matrix().items(),
            key=lambda kv: (-kv[1], kv[0][0] or "", kv[0][1] or ""))
    ]
    return {
        "name": blame.name,
        "ops": blame.ops,
        "total_us": round(blame.total_us, 3),
        "total_queue_us": round(total_queue, 3),
        "queue_share": round(blame.queue_share, 6),
        "interference_us": round(blame.interference_us(), 3),
        "conservation_error": blame.conservation_error(),
        "cells": cells,
        "top_culprits": culprits,
        "tenant_matrix": tenants,
        "exemplar": render_blame_exemplar(crit),
    }


def validate_blame(payload: Any) -> List[str]:
    """Schema-check a blame payload; returns a list of problems.

    Carries the conservation invariant into the export: cell
    microseconds must sum back to ``total_queue_us`` (to rounding dust —
    each cell is rounded to 1e-3, so the tolerance scales with the cell
    count), and no cell or share may exceed the total.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    if not isinstance(payload.get("ops"), int) or payload["ops"] < 0:
        problems.append("ops must be a non-negative int")
    for field in ("total_us", "total_queue_us", "queue_share",
                  "interference_us", "conservation_error"):
        value = payload.get(field)
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"{field} must be a non-negative number")
    cells = payload.get("cells")
    if not isinstance(cells, list):
        problems.append("missing cells array")
        cells = []
    total_queue = payload.get("total_queue_us") or 0.0
    cell_sum = 0.0
    share_sum = 0.0
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in ("victim_op", "culprit_op", "resource"):
            if not isinstance(cell.get(field), str) or not cell[field]:
                problems.append(f"{where}: missing {field}")
        for field in ("victim_tenant", "culprit_tenant", "host"):
            value = cell.get(field)
            if value is not None and not isinstance(value, str):
                problems.append(f"{where}: {field} must be string or null")
        us = cell.get("us")
        if not isinstance(us, (int, float)) or us < 0:
            problems.append(f"{where}: bad us {us!r}")
        else:
            cell_sum += us
            if isinstance(total_queue, (int, float)) and \
                    us > total_queue * (1 + 1e-6) + 1e-3:
                problems.append(f"{where}: us {us} exceeds total_queue_us")
        share = cell.get("share")
        if not isinstance(share, (int, float)) or not 0 <= share <= 1:
            problems.append(f"{where}: bad share {share!r}")
        else:
            share_sum += share
    if isinstance(total_queue, (int, float)) and total_queue > 0:
        dust = 1e-3 * (len(cells) + 1) + total_queue * 1e-6
        if abs(cell_sum - total_queue) > dust:
            problems.append(
                f"cells sum to {cell_sum:.3f}us, not total_queue_us "
                f"{total_queue:.3f} (tolerance {dust:.3f})")
        if cells and abs(share_sum - 1.0) > 1e-3:
            problems.append(f"cell shares sum to {share_sum:.6f}, not 1")
    for field in ("top_culprits", "tenant_matrix"):
        if not isinstance(payload.get(field), list):
            problems.append(f"missing {field} array")
    exemplar = payload.get("exemplar")
    if not isinstance(exemplar, list) or \
            not all(isinstance(line, str) for line in exemplar):
        problems.append("exemplar must be a list of strings")
    return problems
