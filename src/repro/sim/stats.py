"""Measurement plumbing: latency recorders, CDFs, phase breakdowns.

The paper reports three views of performance and this module supports all of
them:

* throughput (ops completed / simulated wall time) — Figures 12, 14, 19;
* latency distributions and CDFs — Figure 11, 17, 18;
* per-phase latency breakdown into lookup / loop-detection / execution —
  Figures 4a, 13, 15.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Canonical phase names used by every system so breakdowns line up.
PHASE_LOOKUP = "lookup"
PHASE_LOOP_DETECT = "loop_detect"
PHASE_EXECUTION = "execution"
PHASES = (PHASE_LOOKUP, PHASE_LOOP_DETECT, PHASE_EXECUTION)


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of an ascending-sorted sequence."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (p / 100.0) * (len(sorted_values) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return float(sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac)


class LatencyRecorder:
    """Accumulates latency samples for one (operation, phase) stream."""

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative latency sample: {value}")
        self._samples.append(value)
        self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def _ensure_sorted(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    @property
    def total(self) -> float:
        return sum(self._samples)

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0

    @property
    def min(self) -> float:
        return min(self._samples) if self._samples else 0.0

    def p(self, pct: float) -> float:
        if not self._samples:
            return 0.0
        return percentile(self._ensure_sorted(), pct)

    @property
    def p50(self) -> float:
        return self.p(50)

    @property
    def p99(self) -> float:
        return self.p(99)

    @property
    def p999(self) -> float:
        return self.p(99.9)

    @property
    def stddev(self) -> float:
        """Population standard deviation (0 for fewer than two samples)."""
        n = len(self._samples)
        if n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((v - mean) ** 2 for v in self._samples) / n)

    def summary(self) -> Dict[str, float]:
        """Empty-safe scalar digest (all zeros when no samples)."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.max,
            "min": self.min,
            "stddev": self.stddev,
            "total": self.total,
        }

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """Return ``points`` (latency, cumulative fraction) pairs."""
        data = self._ensure_sorted()
        if not data:
            return []
        out = []
        for i in range(1, points + 1):
            frac = i / points
            idx = min(len(data) - 1, max(0, int(math.ceil(frac * len(data))) - 1))
            out.append((data[idx], frac))
        return out

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples strictly above ``threshold`` (tail mass)."""
        if not self._samples:
            return 0.0
        data = self._ensure_sorted()
        idx = bisect.bisect_right(data, threshold)
        return (len(data) - idx) / len(data)


#: Shared immutable stand-in for "no phases recorded yet"; real dicts are
#: allocated lazily on first use so the per-op hot loop skips two dict
#: allocations for phase-less operations.
_NO_PHASES: Dict[str, float] = {}


class OpContext:
    """Per-operation measurement context threaded through orchestration code.

    Records RPC rounds (Table 1), retries, and phase timings.  Phase usage::

        ctx.begin(PHASE_LOOKUP, sim.now)
        ...
        ctx.end(PHASE_LOOKUP, sim.now)

    The phase API doubles as a thin shim over span tracing: when the
    operation's root span is attached (``trace``/``tracer``, set by
    ``MetadataSystem.perform`` under an enabled tracer), every begin/end
    pair additionally opens and closes a ``phase``-category child span, so
    breakdowns can be derived from the trace instead of these counters.
    """

    __slots__ = ("op", "rpcs", "retries", "phases", "_open", "start",
                 "finish", "trace", "tracer", "_phase_spans")

    def __init__(self, op: str = ""):
        self.op = op
        self.rpcs = 0
        self.retries = 0
        self.phases: Dict[str, float] = _NO_PHASES
        self._open: Optional[Dict[str, float]] = None
        self.start: Optional[float] = None
        self.finish: Optional[float] = None
        #: Root span of this operation (None while tracing is off).
        self.trace = None
        #: The tracer owning ``trace`` (None while tracing is off).
        self.tracer = None
        self._phase_spans: Optional[Dict[str, object]] = None

    def begin(self, phase: str, now: float) -> None:
        if self._open is None:
            self._open = {}
        self._open[phase] = now
        if self.trace is not None:
            if self._phase_spans is None:
                self._phase_spans = {}
            self._phase_spans[phase] = self.tracer.begin(
                phase, now, category="phase", parent=self.trace)

    def end(self, phase: str, now: float) -> None:
        started = self._open.pop(phase, None) if self._open else None
        if started is None:
            raise ValueError(f"phase {phase!r} was not begun")
        phases = self.phases
        if phases is _NO_PHASES:
            phases = self.phases = {}
        phases[phase] = phases.get(phase, 0.0) + (now - started)
        if self._phase_spans is not None:
            span = self._phase_spans.pop(phase, None)
            if span is not None:
                self.tracer.end(span, now)

    def phase_time(self, phase: str) -> float:
        return self.phases.get(phase, 0.0)

    @property
    def latency(self) -> float:
        if self.start is None or self.finish is None:
            return 0.0
        return self.finish - self.start


class MetricSet:
    """All measurements from one benchmark run of one system."""

    def __init__(self):
        self.latency: Dict[str, LatencyRecorder] = {}
        self.phase_latency: Dict[Tuple[str, str], LatencyRecorder] = {}
        self.rpc_rounds: Dict[str, LatencyRecorder] = {}
        # Failed operations' measurements, recorded in parallel so the work
        # spent on failures is not silently dropped (telemetry and trace
        # views then agree on total work).
        self.failed_latency: Dict[str, LatencyRecorder] = {}
        self.failed_phase_latency: Dict[Tuple[str, str], LatencyRecorder] = {}
        self.failed_rpc_rounds: Dict[str, LatencyRecorder] = {}
        self.ops_completed = 0
        self.ops_failed = 0
        self.retries = 0
        self.started_at = 0.0
        self.finished_at = 0.0

    def record(self, ctx: OpContext) -> None:
        self.ops_completed += 1
        self.retries += ctx.retries
        op = ctx.op
        self.latency.setdefault(op, LatencyRecorder(op)).add(ctx.latency)
        self.rpc_rounds.setdefault(op, LatencyRecorder(op)).add(float(ctx.rpcs))
        if ctx.phases:
            for phase, spent in ctx.phases.items():
                key = (op, phase)
                self.phase_latency.setdefault(key, LatencyRecorder(op)).add(spent)

    def record_failure(self, ctx: OpContext) -> None:
        self.ops_failed += 1
        self.retries += ctx.retries
        op = ctx.op
        self.failed_latency.setdefault(op, LatencyRecorder(op)).add(
            ctx.latency)
        self.failed_rpc_rounds.setdefault(op, LatencyRecorder(op)).add(
            float(ctx.rpcs))
        if ctx.phases:
            for phase, spent in ctx.phases.items():
                key = (op, phase)
                self.failed_phase_latency.setdefault(
                    key, LatencyRecorder(op)).add(spent)

    def failed_mean_latency_us(self, op: str) -> float:
        rec = self.failed_latency.get(op)
        return rec.mean if rec else 0.0

    @property
    def duration_us(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    def throughput_kops(self, op: Optional[str] = None) -> float:
        """Completed operations per second, in Kop/s of simulated time."""
        if self.duration_us <= 0:
            return 0.0
        if op is None:
            done = self.ops_completed
        else:
            done = self.latency[op].count if op in self.latency else 0
        return done / self.duration_us * 1e6 / 1e3

    def mean_latency_us(self, op: str) -> float:
        rec = self.latency.get(op)
        return rec.mean if rec else 0.0

    def phase_breakdown(self, op: str) -> Dict[str, float]:
        """Mean per-phase latency for ``op`` (missing phases are 0)."""
        out = {}
        for phase in PHASES:
            rec = self.phase_latency.get((op, phase))
            out[phase] = rec.mean if rec else 0.0
        return out

    def mean_rpcs(self, op: str) -> float:
        rec = self.rpc_rounds.get(op)
        return rec.mean if rec else 0.0
