"""Hierarchical span tracing for the simulated cluster.

Every instrumented layer (RPC fabric, Raft, TafDB, IndexNode, the operation
orchestrators) opens :class:`Span` records against the simulator's tracer.
Spans carry parent/child links, the host doing the work, and free-form
attributes, so a single operation unrolls into a tree::

    mkdir                                   (category "op")
    |-- lookup                              (category "phase")
    |   `-- rpc:lookup -> rpc_lookup        (categories "rpc"/"handler")
    |-- execution                           (category "phase")
    |   `-- tafdb.txn                       (category "txn")
    `-- rpc:mutate ...

Design constraints, in order of importance:

* **Determinism** — the tracer performs pure Python bookkeeping and never
  creates simulator events or advances time, so enabling tracing cannot
  change any simulated result (``tests/experiments/test_fastpath_determinism``
  pins this down).
* **Zero cost when off** — the default tracer is the :data:`NULL_TRACER`
  no-op singleton; instrumentation sites guard on ``tracer.enabled`` so a
  disabled run pays one attribute load and a boolean test per site.
* **Bounded overhead when on** — finished spans land in a fixed-size ring
  buffer (oldest spans fall out) and root spans can be sampled 1-in-N;
  children of unsampled roots are elided entirely.
* **Tail retention** — the ring plus uniform sampling keep a *uniform*
  slice, so the p999 stragglers that define SLOs are exactly the spans
  that fall out first.  A :class:`TailKeeper` attached to the tracer
  additionally retains the full span tree of any root op that errored or
  whose duration clears a per-op-type adaptive threshold (a quantile of
  the op's own duration digest), under a bounded span budget with whole-
  tree eviction — so slow-op exemplars survive ring pressure.  The keep
  decision depends only on simulated durations, so it is deterministic
  across kernels.

Enable tracing with ``MANTLE_TRACE=1`` (every :class:`~repro.sim.core.Simulator`
constructed in the process gets a live tracer), ``MantleConfig(tracing=True)``
(one Mantle deployment), or by assigning ``sim.tracer = Tracer()`` directly.

The module also ships a Chrome-trace (``chrome://tracing`` / Perfetto JSON)
exporter plus the aggregation helpers ``mantle-exp trace``, fig15 and table1
use to turn raw spans back into the paper's per-phase tables.
"""

from __future__ import annotations

import collections
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Span categories used by the built-in instrumentation.
CAT_OP = "op"              #: one client-visible metadata operation (root)
CAT_PHASE = "phase"        #: lookup / loop_detect / execution sub-phase
CAT_RPC = "rpc"            #: one request/response round trip
CAT_HANDLER = "handler"    #: server-side rpc_<method> handler body
CAT_TXN = "txn"            #: one TafDB transaction (1PC or 2PC)
CAT_RAFT = "raft"          #: Raft persist / replication / apply work
CAT_INDEX = "index"        #: IndexNode-local resolution work
CAT_MAINT = "maintenance"  #: background loops (compactor, invalidator)


class Span:
    """One timed interval in the simulation, linked into a tree.

    ``start_us`` / ``end_us`` are simulated microseconds.  ``parent_id`` is 0
    for root spans.  ``ok`` is False when the spanned work raised.

    ``parent_id`` is the *declared* parent (what the instrumentation site
    passed, e.g. an RPC span declares the operation root).  ``dyn_parent_id``
    is the *dynamic* parent: the span that was innermost on the opening
    process's stack at begin time.  The two differ exactly where declared
    trees overlap (RPCs declare the root while a phase span is open); the
    profiler (:mod:`repro.sim.profile`) folds on the dynamic tree because
    only there are sibling intervals guaranteed disjoint, which is what makes
    self-time = parent-minus-children non-negative and exactly conservative.
    """

    __slots__ = ("span_id", "parent_id", "name", "category", "host",
                 "start_us", "end_us", "attrs", "ok", "dyn_parent_id",
                 "costs", "queue_res", "blocked", "queue_by")

    def __init__(self, span_id: int, parent_id: int, name: str,
                 category: str, host: Optional[str], start_us: float):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.host = host
        self.start_us = start_us
        self.end_us: Optional[float] = None
        self.attrs: Optional[Dict[str, Any]] = None
        self.ok = True
        self.dyn_parent_id = 0
        #: (cost-kind, host) -> simulated microseconds charged while this
        #: span was innermost; ``None`` until the first charge.
        self.costs: Optional[Dict[Tuple[str, Optional[str]], float]] = None
        #: (resource, host) -> queue microseconds, refining the ``queue``
        #: entries in :attr:`costs` by what was waited on (cpu/disk/latch).
        #: A strict decomposition: summed per host it never exceeds the
        #: host's ``queue`` cost.  ``None`` until the first tagged charge.
        self.queue_res: Optional[Dict[Tuple[str, Optional[str]],
                                      float]] = None
        #: (cause-frame, cost-kind, host) -> microseconds this span spent
        #: *blocked on another process's* work (e.g. a Raft commit wait
        #: decomposed into batch-window queue / leader fsync / replication
        #: wire).  Unlike :attr:`costs` these are a refinement of the
        #: span's idle residual, not additional cost — the profiler
        #: ignores them; the critical-path analyzer consumes them.
        self.blocked: Optional[Dict[Tuple[str, str, Optional[str]],
                                    float]] = None
        #: (culprit-op, culprit-tenant, resource, host) -> queue
        #: microseconds, refining :attr:`queue_res` by the *occupant* whose
        #: departure admitted this span's process to the resource — the
        #: who-delayed-whom tags the blame matrix folds.  Summed per
        #: (resource, host) it equals the matching :attr:`queue_res` entry
        #: exactly (unknown occupants land under ``"(unknown)"``).
        #: ``None`` until the first occupant-tagged charge.
        self.queue_by: Optional[Dict[Tuple[str, Optional[str], str,
                                           Optional[str]], float]] = None

    def add_cost(self, kind: str, host: Optional[str], us: float) -> None:
        """Accumulate ``us`` of ``kind`` cost (cpu/fsync/wire/queue)."""
        costs = self.costs
        if costs is None:
            costs = self.costs = {}
        key = (kind, host)
        costs[key] = costs.get(key, 0.0) + us

    def add_queue_resource(self, resource: str, host: Optional[str],
                           us: float) -> None:
        """Refine a ``queue`` charge by the resource waited on."""
        res = self.queue_res
        if res is None:
            res = self.queue_res = {}
        key = (resource, host)
        res[key] = res.get(key, 0.0) + us

    def add_blocked(self, cause: str, kind: str, host: Optional[str],
                    us: float) -> None:
        """Accumulate blocked-on time attributed to ``cause``."""
        blocked = self.blocked
        if blocked is None:
            blocked = self.blocked = {}
        key = (cause, kind, host)
        blocked[key] = blocked.get(key, 0.0) + us

    def add_queue_by(self, op: str, tenant: Optional[str], resource: str,
                     host: Optional[str], us: float) -> None:
        """Tag queue time with the occupant (op, tenant) that preceded it."""
        by = self.queue_by
        if by is None:
            by = self.queue_by = {}
        key = (op, tenant, resource, host)
        by[key] = by.get(key, 0.0) + us

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    def annotate(self, **attrs) -> None:
        """Attach free-form attributes (cache outcome, batch size, ...)."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span(#{self.span_id} {self.category}/{self.name!r} "
                f"parent={self.parent_id} host={self.host!r} "
                f"[{self.start_us}, {self.end_us}] ok={self.ok})")


class _NullSpan:
    """Stand-in returned for elided spans (disabled tracer, unsampled root,
    or any descendant of an unsampled root).  Accepts annotations silently."""

    __slots__ = ()
    span_id = 0
    parent_id = 0
    category = ""
    name = ""
    host = None
    start_us = 0.0
    end_us = 0.0
    ok = True
    duration_us = 0.0
    dyn_parent_id = 0
    costs = None
    queue_res = None
    blocked = None
    queue_by = None

    def annotate(self, **attrs) -> None:
        pass

    def add_cost(self, kind: str, host: Optional[str], us: float) -> None:
        pass

    def add_queue_resource(self, resource: str, host: Optional[str],
                           us: float) -> None:
        pass

    def add_blocked(self, cause: str, kind: str, host: Optional[str],
                    us: float) -> None:
        pass

    def add_queue_by(self, op: str, tenant: Optional[str], resource: str,
                     host: Optional[str], us: float) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SPAN"

    def __bool__(self) -> bool:
        return False


#: Shared elided-span singleton; falsy so ``if span:`` skips dead work.
NULL_SPAN = _NullSpan()


class RemoteSpanRef:
    """A parent span living in *another process* (live runtime only).

    The wire protocol carries ``{"proc", "span"}`` trace context on each
    request frame; the receiving server rebuilds it as a ``RemoteSpanRef``
    and passes it where sim code passes the caller's :class:`Span`.  A span
    begun with a remote parent becomes a *local* root (``parent_id`` 0 —
    ids are only unique per process) annotated with
    ``remote_parent_proc``/``remote_parent_span``, which is what the
    cross-process trace merge (:mod:`repro.runtime.obs`) stitches back into
    one tree.
    """

    __slots__ = ("proc", "span_id")

    def __init__(self, proc: str, span_id: int):
        self.proc = proc
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteSpanRef({self.proc!r}, #{self.span_id})"


class NullTracer:
    """The disabled tracer: every call is a no-op.

    Instrumentation sites check :attr:`enabled` before building span
    arguments, so a disabled run's cost per site is one attribute load and a
    boolean test — the "zero-cost-when-off" contract the wallclock harness
    enforces.
    """

    __slots__ = ()
    enabled = False
    keeper = None

    @property
    def spans(self) -> Sequence[Span]:
        return ()

    @property
    def dropped(self) -> int:
        return 0

    def retained_spans(self):
        return []

    def begin(self, name: str, now: float, category: str = "",
              parent: Any = None, host: Optional[str] = None):
        return NULL_SPAN

    def current_span(self):
        return None

    def end(self, span, now: float, ok: bool = True) -> None:
        pass

    def bind(self, sim) -> None:
        pass

    def charge(self, kind: str, us: float, host: Optional[str] = None,
               resource: Optional[str] = None,
               by: Optional[Tuple[str, Optional[str]]] = None) -> None:
        pass

    def charge_blocked(self, cause: str, kind: str, us: float,
                       host: Optional[str] = None,
                       resource: Optional[str] = None,
                       by: Optional[Tuple[str, Optional[str]]] = None
                       ) -> None:
        pass

    def current_op_label(self) -> Optional[Tuple[str, Optional[str]]]:
        return None

    @property
    def unattributed(self) -> Dict[Tuple[Optional[str], str], float]:
        return {}

    def reset(self) -> None:
        pass


#: Process-wide no-op tracer shared by every untraced simulator.
NULL_TRACER = NullTracer()

#: Default ring capacity: ~40 MB of spans worst-case, far above what the
#: quick-scale workloads produce, small enough to bound long soak runs.
DEFAULT_MAX_SPANS = 262_144

#: Default tail-keeper budget: whole trees are evicted (oldest first) once
#: the retained spans exceed this.
DEFAULT_KEEP_BUDGET_SPANS = 65_536

#: Adaptive keep threshold: retain roots above this duration quantile of
#: their own op type (p99 — one kept exemplar per ~100 ops at steady state).
DEFAULT_KEEP_QUANTILE = 0.99

#: Adaptive thresholds need this many samples of an op type before they
#: engage; below it every root of that type is kept (budget-bounded).
DEFAULT_KEEP_MIN_SAMPLES = 64


class TailKeeper:
    """Keep policy retaining whole span trees for tail/error exemplars.

    Attach via ``Tracer(keeper=TailKeeper(...))``.  For every finished
    root the keeper decides: keep the tree if the root errored, or if its
    duration reaches the op type's threshold — ``threshold_us`` when
    fixed, else the :data:`DEFAULT_KEEP_QUANTILE` of the op's own
    duration sketch (same log-spaced buckets as
    :class:`~repro.sim.telemetry.Digest`, so the threshold inherits the
    digest's error bound).  Until an op type has
    ``min_samples`` observations its roots are all kept — early stragglers
    are exactly the ones worth keeping, and the span ``budget`` bounds
    memory either way: once exceeded, the oldest kept trees are evicted
    whole (``evicted_roots`` counts them).

    Decisions read only simulated durations and integer counts, never the
    wall clock or an RNG — identical traffic keeps identical trees on
    every kernel.
    """

    __slots__ = ("quantile", "threshold_us", "min_samples", "budget",
                 "kept_roots", "kept_errors", "evicted_roots", "_trees",
                 "_span_count", "_buckets", "_counts")

    def __init__(self, quantile: float = DEFAULT_KEEP_QUANTILE,
                 threshold_us: Optional[float] = None,
                 min_samples: int = DEFAULT_KEEP_MIN_SAMPLES,
                 budget: int = DEFAULT_KEEP_BUDGET_SPANS):
        if not 0.0 < quantile < 1.0:
            raise ValueError("keep quantile must be in (0, 1)")
        if budget < 1:
            raise ValueError("keep budget must be >= 1")
        self.quantile = quantile
        self.threshold_us = threshold_us
        self.min_samples = min_samples
        self.budget = budget
        #: roots kept so far (monotonic; eviction does not decrement).
        self.kept_roots = 0
        #: roots kept because they errored.
        self.kept_errors = 0
        #: kept trees evicted whole to stay under budget.
        self.evicted_roots = 0
        #: root span_id -> that root's full finished tree (insertion-ordered
        #: by root finish time, which is what eviction walks).
        self._trees: Dict[int, List[Span]] = {}
        self._span_count = 0
        #: op name -> duration sketch (digest buckets) feeding thresholds.
        self._buckets: Dict[str, Dict[int, int]] = {}
        self._counts: Dict[str, int] = {}

    def op_threshold_us(self, op: str) -> Optional[float]:
        """Current keep threshold for an op type; ``None`` = keep all
        (threshold still warming up)."""
        if self.threshold_us is not None:
            return self.threshold_us
        if self._counts.get(op, 0) < self.min_samples:
            return None
        from repro.sim import telemetry as _telemetry

        return _telemetry._bucket_quantile(self._buckets[op], self.quantile)

    def offer(self, root: Span, tree: List[Span]) -> bool:
        """Decide on one finished root's tree; returns True when kept."""
        threshold = self.op_threshold_us(root.name)
        keep = (not root.ok) or threshold is None \
            or root.duration_us >= threshold
        if self.threshold_us is None:
            from repro.sim import telemetry as _telemetry

            buckets = self._buckets.get(root.name)
            if buckets is None:
                buckets = self._buckets[root.name] = {}
            b = _telemetry.digest_bucket(root.duration_us)
            buckets[b] = buckets.get(b, 0) + 1
            self._counts[root.name] = self._counts.get(root.name, 0) + 1
        if not keep:
            return False
        self.kept_roots += 1
        if not root.ok:
            self.kept_errors += 1
        self._trees[root.span_id] = tree
        self._span_count += len(tree)
        while self._span_count > self.budget and len(self._trees) > 1:
            oldest = next(iter(self._trees))
            self._span_count -= len(self._trees.pop(oldest))
            self.evicted_roots += 1
        return True

    @property
    def kept_spans(self) -> int:
        """Spans currently retained across all kept trees."""
        return self._span_count

    def trees(self) -> List[List[Span]]:
        """Kept trees, oldest root first."""
        return list(self._trees.values())

    def spans(self) -> List[Span]:
        """Every retained span, flattened (tree order, root last)."""
        out: List[Span] = []
        for tree in self._trees.values():
            out.extend(tree)
        return out

    def reset(self) -> None:
        self.kept_roots = 0
        self.kept_errors = 0
        self.evicted_roots = 0
        self._trees.clear()
        self._span_count = 0
        self._buckets.clear()
        self._counts.clear()


class Tracer:
    """Collects finished spans into a bounded ring buffer.

    Parameters
    ----------
    max_spans:
        Ring capacity; once full, the oldest finished spans fall out and
        :attr:`dropped` counts them.
    sample_every:
        Root-span sampling: keep 1 in N root spans (default 1 = keep all).
        Children of an unsampled root are elided at creation, so sampling
        bounds tracing overhead for large workloads.
    keeper:
        Optional :class:`TailKeeper`; finished trees of slow or failed
        (sampled-in) roots are retained beyond the ring under its budget.
    """

    __slots__ = ("_ring", "_next_id", "_roots_seen", "_sample_every",
                 "started", "finished", "_sim", "_stacks", "unattributed",
                 "keeper", "_root_of", "_live_trees")

    enabled = True

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS,
                 sample_every: int = 1,
                 keeper: Optional[TailKeeper] = None):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self._ring: collections.deque = collections.deque(maxlen=max_spans)
        self._next_id = 0
        self._roots_seen = 0
        self._sample_every = sample_every
        self.keeper = keeper
        #: span_id -> its tree root's span_id (tail-keep bookkeeping; only
        #: populated while a keeper is attached).
        self._root_of: Dict[int, int] = {}
        #: root span_id -> finished spans of its still-open tree.
        self._live_trees: Dict[int, List[Span]] = {}
        self.started = 0
        self.finished = 0
        # Cost attribution.  ``_stacks`` maps the simulator's currently
        # executing process to its stack of open spans; ``charge`` lands on
        # the stack top.  An unbound tracer (no ``bind`` call) degrades to a
        # single shared stack — fine for single-process unit tests, wrong
        # for concurrent workloads, which is why every assignment site binds.
        self._sim = None
        self._stacks: Dict[Any, List[Any]] = {}
        #: (host, cost-kind) -> us charged while no (sampled) span was open.
        #: Keeps profiler-vs-telemetry reconciliation exact under sampling.
        self.unattributed: Dict[Tuple[Optional[str], str], float] = {}

    def bind(self, sim) -> None:
        """Attach the simulator whose active process keys the span stacks.

        Charges and dynamic-parent links are attributed per process; the
        kernel publishes ``sim._active_process`` on every resume, so binding
        is the only coupling the tracer needs.
        """
        self._sim = sim

    @property
    def spans(self) -> Sequence[Span]:
        """Finished spans, oldest first (a snapshot-free live view)."""
        return self._ring

    @property
    def dropped(self) -> int:
        """Finished spans that fell out of the ring."""
        return self.finished - len(self._ring)

    @property
    def sample_every(self) -> int:
        return self._sample_every

    def begin(self, name: str, now: float, category: str = "",
              parent: Any = None, host: Optional[str] = None):
        """Open a span; returns :data:`NULL_SPAN` when sampled out.

        ``parent`` is another :class:`Span` (or :data:`NULL_SPAN`, in which
        case the child is elided too, keeping whole trees atomic under
        sampling), ``None`` for a root span, or a :class:`RemoteSpanRef`
        for a parent in another live process — the span becomes a local
        root carrying the remote link in its attributes.

        Elided spans are still pushed onto the opening process's stack so
        that work done under them charges the unattributed bucket rather
        than leaking into an outer span's cost profile.
        """
        proc = self._sim._active_process if self._sim is not None else None
        stack = self._stacks.get(proc)
        remote = None
        if isinstance(parent, RemoteSpanRef):
            remote, parent = parent, None
        if parent is None:
            self._roots_seen += 1
            if self._sample_every > 1 and \
                    (self._roots_seen - 1) % self._sample_every:
                span = NULL_SPAN
            else:
                span = None
            parent_id = 0
        elif parent is NULL_SPAN:
            span = NULL_SPAN
            parent_id = 0
        else:
            span = None
            parent_id = parent.span_id
        if span is None:
            self._next_id += 1
            self.started += 1
            span = Span(self._next_id, parent_id, name, category, host, now)
            if stack:
                span.dyn_parent_id = stack[-1].span_id
            if remote is not None:
                span.annotate(remote_parent_proc=remote.proc,
                              remote_parent_span=remote.span_id)
            if self.keeper is not None:
                # Tree membership follows the opening process's stack: its
                # bottom span is this process's tree root (the op root for
                # client work, the fan-out wrapper for spawned legs).
                bottom = stack[0] if stack else None
                if bottom is not None and bottom is not NULL_SPAN:
                    self._root_of[span.span_id] = self._root_of.get(
                        bottom.span_id, bottom.span_id)
                else:
                    self._root_of[span.span_id] = span.span_id
        if stack is None:
            self._stacks[proc] = [span]
        else:
            stack.append(span)
        return span

    def current_span(self):
        """The innermost open span of the currently executing process, or
        ``None`` (``NULL_SPAN`` while an elided subtree is open)."""
        proc = self._sim._active_process if self._sim is not None else None
        stack = self._stacks.get(proc)
        return stack[-1] if stack else None

    def end(self, span, now: float, ok: bool = True) -> None:
        """Close a span and commit it to the ring."""
        proc = self._sim._active_process if self._sim is not None else None
        stack = self._stacks.get(proc)
        if stack:
            if stack[-1] is span:
                stack.pop()
            elif span is not NULL_SPAN:
                # A child leaked open (exception unwound past its end call):
                # truncate through it so the stack mirrors reality again.
                for i in range(len(stack) - 1, -1, -1):
                    if stack[i] is span:
                        del stack[i:]
                        break
            if not stack:
                del self._stacks[proc]
        if span is NULL_SPAN:
            return
        span.end_us = now
        span.ok = ok
        self.finished += 1
        self._ring.append(span)
        if self.keeper is not None:
            root_id = self._root_of.pop(span.span_id, span.span_id)
            tree = self._live_trees.get(root_id)
            if tree is None:
                tree = self._live_trees[root_id] = []
            tree.append(span)
            if span.span_id == root_id:
                del self._live_trees[root_id]
                if span.category == CAT_OP:
                    self.keeper.offer(span, tree)

    def charge(self, kind: str, us: float, host: Optional[str] = None,
               resource: Optional[str] = None,
               by: Optional[Tuple[str, Optional[str]]] = None) -> None:
        """Attribute ``us`` simulated microseconds of ``kind`` cost.

        The charge lands on the innermost open span of the currently
        executing process; with no (sampled) span open it accrues to the
        tracer-level :attr:`unattributed` bucket so totals still reconcile
        against telemetry busy counters.

        ``resource`` optionally names what a ``queue`` charge waited on
        (``"cpu"`` / ``"disk"`` / ``"latch"``); the refinement is stored
        alongside — never instead of — the plain ``queue`` cost, so the
        profiler's totals are unchanged while the critical-path analyzer
        can split queueing by its underlying bottleneck.

        ``by`` optionally names the occupant ``(op, tenant)`` whose
        departure admitted this process (stamped on the grant by
        :meth:`~repro.sim.resources.Resource.release`).  Every
        resource-tagged charge also lands a ``queue_by`` tag — ``by=None``
        falls back to ``("(unknown)", None)`` — so per (resource, host)
        the occupant tags decompose ``queue_res`` exactly.
        """
        if us <= 0.0:
            return
        proc = self._sim._active_process if self._sim is not None else None
        stack = self._stacks.get(proc)
        if stack:
            top = stack[-1]
            if top is not NULL_SPAN:
                top.add_cost(kind, host, us)
                if resource is not None:
                    top.add_queue_resource(resource, host, us)
                    if by is None:
                        top.add_queue_by("(unknown)", None, resource,
                                         host, us)
                    else:
                        top.add_queue_by(by[0], by[1], resource, host, us)
                return
        key = (host, kind)
        bucket = self.unattributed
        bucket[key] = bucket.get(key, 0.0) + us

    def charge_blocked(self, cause: str, kind: str, us: float,
                       host: Optional[str] = None,
                       resource: Optional[str] = None,
                       by: Optional[Tuple[str, Optional[str]]] = None
                       ) -> None:
        """Attribute ``us`` of blocked-on time to the innermost open span.

        Blocked-on edges decompose time a span spent waiting for *another
        process* (a Raft commit, typically) into the costs that gated it.
        They refine the span's idle residual rather than adding cost, so
        they are stored in ``Span.blocked`` — invisible to the profiler's
        conservation sums — and consumed only by
        :mod:`repro.sim.critpath`.  With no span open the charge is
        dropped: there is no waiting span to explain.

        ``resource`` / ``by`` additionally tag a queue-kind blocked edge
        with its occupant (the Raft batch-window wait passes
        ``resource="raft"`` and the label of the batch that was flushing),
        mirroring :meth:`charge`'s queue_by bookkeeping.
        """
        if us <= 0.0:
            return
        proc = self._sim._active_process if self._sim is not None else None
        stack = self._stacks.get(proc)
        if stack:
            top = stack[-1]
            if top is not NULL_SPAN:
                top.add_blocked(cause, kind, host, us)
                if resource is not None:
                    if by is None:
                        top.add_queue_by("(unknown)", None, resource,
                                         host, us)
                    else:
                        top.add_queue_by(by[0], by[1], resource, host, us)

    def current_op_label(self) -> Optional[Tuple[str, Optional[str]]]:
        """The ``(op, tenant)`` identity of the currently executing
        process, for occupant tagging.

        RPC handlers run inline in the calling client's process, so the
        *first* span on the active process's stack is the operation root
        for client-driven work (``category == "op"``, carrying the
        system's tenant annotation).  Spawned 2PC fan-out legs root at
        their wrapper span instead, which carries the owning op's
        identity as an ``op_label`` annotation (see
        ``TafDBClient._fanout_leg``).  Other non-client processes (the
        Raft event loop, background maintenance) report their root
        span's name with no tenant.  Returns ``None`` with no open span
        or under an elided (sampled-out) root — callers then tag
        ``"(unknown)"``.
        """
        proc = self._sim._active_process if self._sim is not None else None
        stack = self._stacks.get(proc)
        if not stack:
            return None
        root = stack[0]
        if root is NULL_SPAN:
            return None
        attrs = root.attrs
        if root.category == CAT_OP:
            return (root.name, attrs.get("tenant") if attrs else None)
        if attrs:
            label = attrs.get("op_label")
            if label is not None:
                return (label[0], label[1])
        return (root.name, None)

    def retained_spans(self) -> List[Span]:
        """Every span still held: the ring plus kept tail trees, deduped
        and ordered by span id (creation order, deterministic)."""
        if self.keeper is None:
            return list(self._ring)
        seen = set()
        out: List[Span] = []
        for span in self._ring:
            seen.add(span.span_id)
            out.append(span)
        for span in self.keeper.spans():
            if span.span_id not in seen:
                seen.add(span.span_id)
                out.append(span)
        out.sort(key=lambda s: s.span_id)
        return out

    def reset(self) -> None:
        """Drop every collected span (counters restart too)."""
        self._ring.clear()
        self._next_id = 0
        self._roots_seen = 0
        self.started = 0
        self.finished = 0
        self._stacks.clear()
        self.unattributed.clear()
        self._root_of.clear()
        self._live_trees.clear()
        if self.keeper is not None:
            self.keeper.reset()


def trace_stats(tracer) -> Dict[str, int]:
    """Sample/keep/drop accounting for one tracer, embedded in every trace
    export so consumers can tell how complete the span population is."""
    keeper = getattr(tracer, "keeper", None)
    return {
        "started": getattr(tracer, "started", 0),
        "finished": getattr(tracer, "finished", 0),
        "dropped": tracer.dropped,
        "sample_every": getattr(tracer, "sample_every", 1),
        "kept_roots": keeper.kept_roots if keeper is not None else 0,
        "kept_errors": keeper.kept_errors if keeper is not None else 0,
        "kept_spans": keeper.kept_spans if keeper is not None else 0,
        "kept_evicted_roots":
            keeper.evicted_roots if keeper is not None else 0,
    }


# ---------------------------------------------------------------------------
# Span <-> JSON (live snapshot collection crosses process boundaries).
# ---------------------------------------------------------------------------

def span_to_jsonable(span: Span) -> Dict[str, Any]:
    """Flatten one finished span into JSON-safe structures.

    Tuple-keyed cost maps become lists of ``[key..., us]`` rows; ``None``
    hosts stay ``None``.  The inverse is :func:`span_from_jsonable`.
    """
    out: Dict[str, Any] = {
        "id": span.span_id,
        "parent": span.parent_id,
        "dyn_parent": span.dyn_parent_id,
        "name": span.name,
        "cat": span.category,
        "host": span.host,
        "start_us": span.start_us,
        "end_us": span.end_us,
        "ok": span.ok,
    }
    if span.attrs:
        out["attrs"] = dict(span.attrs)
    if span.costs:
        out["costs"] = [[kind, host, us]
                        for (kind, host), us in span.costs.items()]
    if span.queue_res:
        out["queue_res"] = [[res, host, us]
                            for (res, host), us in span.queue_res.items()]
    if span.blocked:
        out["blocked"] = [[cause, kind, host, us]
                          for (cause, kind, host), us in span.blocked.items()]
    if span.queue_by:
        out["queue_by"] = [
            [op, tenant, res, host, us]
            for (op, tenant, res, host), us in span.queue_by.items()]
    return out


def span_from_jsonable(data: Dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` from :func:`span_to_jsonable` output."""
    span = Span(data["id"], data.get("parent", 0), data["name"],
                data.get("cat", ""), data.get("host"), data["start_us"])
    span.end_us = data.get("end_us")
    span.ok = bool(data.get("ok", True))
    span.dyn_parent_id = data.get("dyn_parent", 0)
    attrs = data.get("attrs")
    if attrs:
        span.attrs = dict(attrs)
    for kind, host, us in data.get("costs", ()):
        span.add_cost(kind, host, us)
    for res, host, us in data.get("queue_res", ()):
        span.add_queue_resource(res, host, us)
    for cause, kind, host, us in data.get("blocked", ()):
        span.add_blocked(cause, kind, host, us)
    for op, tenant, res, host, us in data.get("queue_by", ()):
        span.add_queue_by(op, tenant, res, host, us)
    return span


# ---------------------------------------------------------------------------
# Aggregation: spans -> the paper's per-phase / per-RPC tables.
# ---------------------------------------------------------------------------

class OpAggregate:
    """Per-operation rollup of root spans and their direct children.

    Mirrors :class:`~repro.sim.stats.MetricSet` semantics exactly: failed
    operations contribute to ``failures`` only, phase means average over the
    roots that recorded that phase, and ``rpcs`` counts one per ``rpc``-
    category child — which is also how ``OpContext.rpcs`` counts.
    """

    __slots__ = ("op", "count", "failures", "total_latency_us",
                 "rpcs_total", "phases")

    def __init__(self, op: str):
        self.op = op
        self.count = 0
        self.failures = 0
        self.total_latency_us = 0.0
        self.rpcs_total = 0
        #: phase -> (roots that recorded it, summed duration).
        self.phases: Dict[str, Tuple[int, float]] = {}

    @property
    def mean_latency_us(self) -> float:
        return self.total_latency_us / self.count if self.count else 0.0

    @property
    def mean_rpcs(self) -> float:
        return self.rpcs_total / self.count if self.count else 0.0

    def mean_phase_us(self, phase: str) -> float:
        entry = self.phases.get(phase)
        if not entry or not entry[0]:
            return 0.0
        return entry[1] / entry[0]


def aggregate_ops(spans: Iterable[Span]) -> Dict[str, OpAggregate]:
    """Fold a span stream into per-operation aggregates.

    Only ``op``-category roots and their *direct* children matter here;
    deeper descendants (handlers under RPCs, 2PC phases under transactions)
    are drill-down detail for the exported trace.
    """
    roots: Dict[int, Span] = {}
    children: Dict[int, List[Span]] = {}
    for span in spans:
        if span.category == CAT_OP:
            roots[span.span_id] = span
        elif span.parent_id:
            children.setdefault(span.parent_id, []).append(span)
    out: Dict[str, OpAggregate] = {}
    for span_id, root in roots.items():
        agg = out.get(root.name)
        if agg is None:
            agg = out[root.name] = OpAggregate(root.name)
        if not root.ok:
            agg.failures += 1
            continue
        agg.count += 1
        agg.total_latency_us += root.duration_us
        per_phase: Dict[str, float] = {}
        for child in children.get(span_id, ()):
            if child.category == CAT_PHASE:
                per_phase[child.name] = (
                    per_phase.get(child.name, 0.0) + child.duration_us)
            elif child.category == CAT_RPC:
                agg.rpcs_total += 1
        for phase, total in per_phase.items():
            seen, acc = agg.phases.get(phase, (0, 0.0))
            agg.phases[phase] = (seen + 1, acc + total)
    return out


def children_index(spans: Iterable[Span]) -> Dict[int, List[Span]]:
    """parent span_id -> list of direct children (test/debug helper)."""
    index: Dict[int, List[Span]] = {}
    for span in spans:
        if span.parent_id:
            index.setdefault(span.parent_id, []).append(span)
    return index


def category_summary(spans: Iterable[Span]) -> Dict[str, Tuple[int, float]]:
    """category -> (span count, summed duration); the coarse cost map."""
    out: Dict[str, Tuple[int, float]] = {}
    for span in spans:
        count, total = out.get(span.category, (0, 0.0))
        out[span.category] = (count + 1, total + span.duration_us)
    return out


# ---------------------------------------------------------------------------
# Chrome-trace (Perfetto) export.
# ---------------------------------------------------------------------------

def chrome_trace_events(spans: Iterable[Span], pid: int = 1,
                        process_name: Optional[str] = None,
                        ts_offset_us: float = 0.0) -> List[dict]:
    """Render spans as Chrome-trace complete events for one process track.

    Each distinct host becomes a thread (tid) inside the process; spans with
    no host attribution share a synthetic "orchestration" thread.  ``ts`` is
    simulated microseconds, which is exactly the unit the format wants.
    ``ts_offset_us`` shifts every timestamp — the live trace merge uses it
    to put per-process wallclocks (each with its own epoch) on one axis.
    """
    events: List[dict] = []
    if process_name:
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": process_name}})
    tids: Dict[str, int] = {}

    def tid_of(host: Optional[str]) -> int:
        label = host or "orchestration"
        tid = tids.get(label)
        if tid is None:
            tid = tids[label] = len(tids) + 1
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"name": label}})
        return tid

    for span in spans:
        if span.end_us is None:
            continue
        event = {
            "name": span.name,
            "cat": span.category or "span",
            "ph": "X",
            "ts": span.start_us + ts_offset_us,
            "dur": span.duration_us,
            "pid": pid,
            "tid": tid_of(span.host),
            "args": {"span_id": span.span_id,
                     "parent_id": span.parent_id,
                     "ok": span.ok},
        }
        if span.attrs:
            event["args"].update(span.attrs)
        events.append(event)
    return events


def export_chrome_trace(sections: Sequence[Tuple[str, Iterable[Span]]],
                        stats: Optional[Dict[str, Dict[str, int]]] = None,
                        ) -> dict:
    """Build one Chrome-trace payload; each section is its own pid track.

    ``stats`` (per-section :func:`trace_stats` dicts) rides along as a
    ``traceStats`` top-level key — Perfetto ignores unknown keys, and the
    sample/keep/drop accounting must survive into every export so nobody
    mistakes a ring-truncated trace for a complete one.
    """
    events: List[dict] = []
    for pid, (name, spans) in enumerate(sections, start=1):
        events.extend(chrome_trace_events(spans, pid=pid, process_name=name))
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if stats is not None:
        payload["traceStats"] = {name: dict(stats[name])
                                 for name in sorted(stats)}
    return payload


def write_chrome_trace(path: str,
                       sections: Sequence[Tuple[str, Iterable[Span]]],
                       stats: Optional[Dict[str, Dict[str, int]]] = None,
                       ) -> dict:
    """Export ``sections`` to ``path`` as Chrome-trace JSON; returns payload."""
    payload = export_chrome_trace(sections, stats=stats)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return payload


def validate_chrome_trace(payload: dict) -> List[str]:
    """Schema-check a Chrome-trace payload; returns a list of problems.

    Covers what ``chrome://tracing`` / Perfetto actually require: a
    ``traceEvents`` array of objects with ``name``/``ph``/``pid``/``tid``,
    numeric non-negative ``ts``+``dur`` on complete ("X") events, and
    ``args`` objects where present.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing name")
        ph = event.get("ph")
        if ph not in ("X", "M", "B", "E", "i"):
            problems.append(f"{where}: unsupported ph {ph!r}")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: {field} must be an int")
        if ph == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"{where}: bad {field} {value!r}")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems
