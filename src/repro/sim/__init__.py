"""From-scratch discrete-event simulation (DES) substrate.

The paper evaluates Mantle on a 53-server cluster; this package is the
laptop-scale substitute.  It provides a generator-coroutine event loop
(:mod:`repro.sim.core`), capacity resources and mailboxes
(:mod:`repro.sim.resources`), an RTT-charged network and CPU/disk host model
(:mod:`repro.sim.network`, :mod:`repro.sim.host`) and measurement helpers
(:mod:`repro.sim.stats`).  All simulated time is in microseconds.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import Resource, Store

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "Resource",
    "Store",
]
