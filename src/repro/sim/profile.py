"""Cost-center profiling: fold finished span trees into flame graphs.

The tracer (:mod:`repro.sim.trace`) answers *what happened when*; this
module answers *where every simulated microsecond went*.  A
:class:`CostProfile` folds a tracer's finished spans into

* **self-times** on the dynamic span tree — each span's duration minus its
  dynamic children's durations.  The dynamic tree (``Span.dyn_parent_id``,
  per-process nesting recorded by the tracer's span stacks) guarantees
  sibling intervals are disjoint, so self-time is non-negative and the sum
  of self-times over a tree equals the root's duration *exactly* (a
  telescoping identity; ``tests/sim/test_profile.py`` pins it down).
* **cost kinds** — the cpu / fsync / wire / queue charges the sim layer
  attributed to each span while it was innermost, plus a derived
  ``idle`` residual (self-time not explained by any charge: think blocked
  on a child process or a raft commit wait).
* **cost centers** — (host, frame, kind) aggregates, where the host is the
  one the charge named (the server doing the work, not the span's label).

Exports come in two interchange formats, each with a schema validator:

* collapsed-stack (``frame;frame;[kind] value`` — flamegraph.pl /
  ``inferno-flamegraph`` input), and
* speedscope JSON (https://www.speedscope.app "sampled" profiles).

:func:`diff_profiles` aligns two profiles by (frame, kind) — hosts are
dropped because they differ across systems — and normalises by completed
operations, so deltas read directly as "extra microseconds per op" and the
per-frame span counts as "extra RPCs per op".  That is what lets
``mantle-exp profile --diff mantle infinifs fig12`` name the mechanisms
behind the knee gap instead of just restating the throughput numbers.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sim.trace import CAT_OP, CAT_PHASE, Span

#: Every cost kind a charge can carry, plus the derived residual.
COST_KINDS = ("cpu", "fsync", "wire", "queue", "idle")

#: Synthetic root frame for charges that hit an empty span stack.
UNATTRIBUTED_FRAME = "(unattributed)"

#: speedscope's published schema URL (the ``$schema`` key it expects).
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def _frame(name: str) -> str:
    """Collapsed-stack frames may not contain separators; sanitise."""
    return name.replace(" ", "_").replace(";", ":")


class FrameCost:
    """Per-frame rollup: span count, inclusive time, per-kind self costs."""

    __slots__ = ("frame", "spans", "inclusive_us", "self_us", "kinds")

    def __init__(self, frame: str):
        self.frame = frame
        self.spans = 0
        self.inclusive_us = 0.0
        self.self_us = 0.0
        self.kinds: Dict[str, float] = {}

    def add_kind(self, kind: str, us: float) -> None:
        self.kinds[kind] = self.kinds.get(kind, 0.0) + us


class CostProfile:
    """A folded cost profile of one instrumented run.

    Attributes
    ----------
    centers:
        (host, frame, kind) -> self-attributed simulated microseconds.
    stacks:
        (frame tuple, kind) -> microseconds; the flame-graph input.
    frames:
        frame name -> :class:`FrameCost` rollup.
    ops / op_failures:
        completed / failed ``op``-category root spans (the per-op
        normaliser for diffs).
    total_root_us / total_self_us:
        summed dynamic-root durations and summed self-times; equal up to
        float addition order (the conservation invariant).
    unattributed:
        (host, kind) -> microseconds charged while no sampled span was
        open; folded into ``centers``/``stacks`` under
        :data:`UNATTRIBUTED_FRAME` but kept separately for reconciliation.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.ops = 0
        self.op_failures = 0
        self.span_count = 0
        self.total_root_us = 0.0
        self.total_self_us = 0.0
        self.centers: Dict[Tuple[Optional[str], str, str], float] = {}
        self.stacks: Dict[Tuple[Tuple[str, ...], str], float] = {}
        self.frames: Dict[str, FrameCost] = {}
        self.unattributed: Dict[Tuple[Optional[str], str], float] = {}

    # -- derived views -----------------------------------------------------

    def cost_by_kind(self) -> Dict[str, float]:
        """kind -> total microseconds (charges + idle + unattributed)."""
        out: Dict[str, float] = {}
        for (_host, _frame, kind), us in self.centers.items():
            out[kind] = out.get(kind, 0.0) + us
        return out

    def cpu_by_host(self) -> Dict[Optional[str], float]:
        """host -> cpu self-time, including the unattributed bucket.

        This is the series that must reconcile with telemetry's
        ``host.cpu_busy_us`` counters: both are incremented with the same
        ``us`` at the same :meth:`~repro.sim.host.Host.work` sites.
        """
        out: Dict[Optional[str], float] = {}
        for (host, _frame, kind), us in self.centers.items():
            if kind == "cpu":
                out[host] = out.get(host, 0.0) + us
        return out

    def frame_kind_totals(self) -> Dict[Tuple[str, str], float]:
        """(frame, kind) -> microseconds, hosts summed out (diff alignment)."""
        out: Dict[Tuple[str, str], float] = {}
        for (_host, frame, kind), us in self.centers.items():
            key = (frame, kind)
            out[key] = out.get(key, 0.0) + us
        return out

    def inclusive_by_frame(self) -> Dict[str, Tuple[int, float]]:
        """frame -> (span count, inclusive microseconds).

        Phase frames never nest under themselves, so dividing by root
        count re-derives fig13/fig15's per-phase means from the profiler.
        """
        return {frame: (fc.spans, fc.inclusive_us)
                for frame, fc in self.frames.items()}

    def top_self(self, n: int = 15) -> List[Tuple[str, str, float]]:
        """The ``n`` hottest (frame, kind, us) centers by self cost."""
        totals = self.frame_kind_totals()
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(frame, kind, us) for (frame, kind), us in ranked[:n]]

    def conservation_error(self) -> float:
        """Relative |sum(self) - sum(root durations)|; ~1e-16 in practice."""
        return (abs(self.total_self_us - self.total_root_us)
                / max(self.total_root_us, 1e-9))


def build_profile(spans: Iterable[Span],
                  unattributed: Optional[Dict[Tuple[Optional[str], str],
                                              float]] = None,
                  name: str = "") -> CostProfile:
    """Fold finished spans (plus the tracer's unattributed charges) into a
    :class:`CostProfile`.

    Spans whose dynamic parent is absent (true roots, spans begun in
    freshly spawned processes, or orphans whose parent fell out of the
    ring) become dynamic roots; conservation holds per present tree.
    """
    profile = CostProfile(name)
    finished = [s for s in spans if s.end_us is not None]
    by_id: Dict[int, Span] = {s.span_id: s for s in finished}
    child_us: Dict[int, float] = {}
    for span in finished:
        pid = span.dyn_parent_id
        if pid and pid in by_id:
            child_us[pid] = child_us.get(pid, 0.0) + span.duration_us

    paths: Dict[int, Tuple[str, ...]] = {}

    def path_of(span: Span) -> Tuple[str, ...]:
        cached = paths.get(span.span_id)
        if cached is not None:
            return cached
        pid = span.dyn_parent_id
        if pid and pid in by_id:
            result = path_of(by_id[pid]) + (_frame(span.name),)
        else:
            result = (_frame(span.name),)
        paths[span.span_id] = result
        return result

    centers = profile.centers
    stacks = profile.stacks
    for span in finished:
        profile.span_count += 1
        frame = _frame(span.name)
        dur = span.duration_us
        self_us = dur - child_us.get(span.span_id, 0.0)
        if self_us < 0.0:
            self_us = 0.0  # float dust only; nesting forbids real negatives
        stack = path_of(span)
        fc = profile.frames.get(frame)
        if fc is None:
            fc = profile.frames[frame] = FrameCost(frame)
        fc.spans += 1
        fc.inclusive_us += dur
        fc.self_us += self_us
        if span.category == CAT_OP:
            if span.ok:
                profile.ops += 1
            else:
                profile.op_failures += 1
        if not span.dyn_parent_id or span.dyn_parent_id not in by_id:
            profile.total_root_us += dur
        profile.total_self_us += self_us
        charged = 0.0
        if span.costs:
            for (kind, host), us in span.costs.items():
                charged += us
                key = (host, frame, kind)
                centers[key] = centers.get(key, 0.0) + us
                skey = (stack, kind)
                stacks[skey] = stacks.get(skey, 0.0) + us
                fc.add_kind(kind, us)
        idle = self_us - charged
        if idle > 0.0:
            key = (span.host, frame, "idle")
            centers[key] = centers.get(key, 0.0) + idle
            skey = (stack, "idle")
            stacks[skey] = stacks.get(skey, 0.0) + idle
            fc.add_kind("idle", idle)
    if unattributed:
        for (host, kind), us in unattributed.items():
            if us <= 0.0:
                continue
            profile.unattributed[(host, kind)] = us
            key = (host, UNATTRIBUTED_FRAME, kind)
            centers[key] = centers.get(key, 0.0) + us
            skey = ((UNATTRIBUTED_FRAME,), kind)
            stacks[skey] = stacks.get(skey, 0.0) + us
    return profile


def profile_from_tracer(tracer, name: str = "") -> CostProfile:
    """Fold one tracer's ring (and unattributed bucket) into a profile."""
    return build_profile(tracer.spans, dict(tracer.unattributed), name=name)


def dynamic_phase_breakdown(
        spans: Iterable[Span]) -> Dict[str, Dict[str, float]]:
    """op -> phase -> mean microseconds, derived from the dynamic tree.

    Groups ``phase``-category spans under their dynamic-parent ``op`` roots
    (phases open directly inside the client process, so the dynamic parent
    *is* the root), sums per root, and averages over the successful roots
    that recorded each phase — the same semantics as
    :meth:`repro.sim.stats.MetricSet.phase_breakdown`, which is what lets
    fig13/fig15's ``--check-profile`` assert the two derivations agree.
    """
    finished = {s.span_id: s for s in spans if s.end_us is not None}
    roots = {sid: s for sid, s in finished.items() if s.category == CAT_OP}
    per_root: Dict[int, Dict[str, float]] = {}
    for span in finished.values():
        if span.category != CAT_PHASE:
            continue
        # Phases normally open directly under their op root, but chase the
        # chain anyway so a phase nested inside another phase still lands
        # on the right op.
        anc = span.dyn_parent_id
        while anc and anc not in roots:
            parent = finished.get(anc)
            anc = parent.dyn_parent_id if parent is not None else 0
        if not anc:
            continue
        phases = per_root.setdefault(anc, {})
        phases[span.name] = phases.get(span.name, 0.0) + span.duration_us
    agg: Dict[str, Dict[str, Tuple[int, float]]] = {}
    for root_id, phases in per_root.items():
        root = roots[root_id]
        if not root.ok:
            continue
        op_phases = agg.setdefault(root.name, {})
        for phase, total in phases.items():
            count, acc = op_phases.get(phase, (0, 0.0))
            op_phases[phase] = (count + 1, acc + total)
    return {op: {phase: total / count
                 for phase, (count, total) in phases.items() if count}
            for op, phases in agg.items()}


# ---------------------------------------------------------------------------
# Collapsed-stack (flamegraph.pl) export.
# ---------------------------------------------------------------------------

def to_folded(profile: CostProfile) -> List[str]:
    """Render the profile as collapsed-stack lines.

    Each cost kind becomes a synthetic leaf frame (``[cpu]``, ``[wire]``,
    ...) under the span stack, so flamegraph.pl renders kinds as distinct
    cells and the diff aligns on them.  Values are integer microseconds
    rounded *after* aggregation; lines are sorted, which (together with
    simulated-time determinism) makes the output byte-identical across
    kernels and repeat runs.  Zero-rounded lines are dropped — the format
    requires positive integers.
    """
    merged: Dict[str, int] = {}
    for (stack, kind), us in profile.stacks.items():
        line = ";".join(stack + (f"[{kind}]",))
        merged[line] = merged.get(line, 0) + int(round(us))
    return [f"{line} {value}" for line, value in sorted(merged.items())
            if value > 0]


def write_folded(path: str, profile: CostProfile) -> List[str]:
    """Write collapsed-stack lines to ``path``; returns the lines."""
    lines = to_folded(profile)
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line + "\n")
    return lines


def validate_folded(lines: Iterable[str]) -> List[str]:
    """Schema-check collapsed-stack lines; returns a list of problems.

    flamegraph.pl's actual contract: one ``stack value`` pair per line,
    semicolon-separated non-empty frames with no embedded spaces, and a
    positive integer value.
    """
    problems: List[str] = []
    for i, line in enumerate(lines):
        where = f"line {i + 1}"
        if not isinstance(line, str) or not line.strip():
            problems.append(f"{where}: empty")
            continue
        parts = line.rsplit(" ", 1)
        if len(parts) != 2:
            problems.append(f"{where}: missing value field")
            continue
        stack, value = parts
        if not value.isdigit() or int(value) <= 0:
            problems.append(f"{where}: value {value!r} is not a positive "
                            "integer")
        if " " in stack:
            problems.append(f"{where}: stack contains a space")
        frames = stack.split(";")
        if not frames or any(not f for f in frames):
            problems.append(f"{where}: empty frame in stack {stack!r}")
    return problems


# ---------------------------------------------------------------------------
# speedscope export.
# ---------------------------------------------------------------------------

def to_speedscope(profile: CostProfile, name: str = "") -> dict:
    """Render the profile as a speedscope "sampled" profile.

    One sample per (stack, kind) with its microsecond total as the weight;
    frames are deduplicated into the shared frame table.  Deterministic for
    the same reasons as :func:`to_folded`.
    """
    samples_by_stack: Dict[Tuple[str, ...], int] = {}
    for (stack, kind), us in profile.stacks.items():
        full = stack + (f"[{kind}]",)
        samples_by_stack[full] = samples_by_stack.get(full, 0) + \
            int(round(us))
    ordered = sorted((stack, weight)
                     for stack, weight in samples_by_stack.items()
                     if weight > 0)
    frame_index: Dict[str, int] = {}
    frames: List[dict] = []
    samples: List[List[int]] = []
    weights: List[int] = []
    for stack, weight in ordered:
        indexed = []
        for frame in stack:
            idx = frame_index.get(frame)
            if idx is None:
                idx = frame_index[frame] = len(frames)
                frames.append({"name": frame})
            indexed.append(idx)
        samples.append(indexed)
        weights.append(weight)
    total = sum(weights)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "shared": {"frames": frames},
        "profiles": [{
            "type": "sampled",
            "name": name or profile.name or "simulated cost profile",
            "unit": "microseconds",
            "startValue": 0,
            "endValue": total,
            "samples": samples,
            "weights": weights,
        }],
        "exporter": "mantle-exp profile",
    }


def write_speedscope(path: str, profile: CostProfile,
                     name: str = "") -> dict:
    """Write the speedscope JSON to ``path``; returns the payload."""
    payload = to_speedscope(profile, name=name)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return payload


def validate_speedscope(payload: Any) -> List[str]:
    """Schema-check a speedscope payload; returns a list of problems.

    Covers what speedscope's importer actually requires of a "sampled"
    profile: the ``$schema`` marker, a shared frame table of named frames,
    and per-profile samples/weights of equal length whose frame indices
    stay in range.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    if payload.get("$schema") != SPEEDSCOPE_SCHEMA:
        problems.append("missing or wrong $schema")
    shared = payload.get("shared")
    frames = shared.get("frames") if isinstance(shared, dict) else None
    if not isinstance(frames, list):
        problems.append("missing shared.frames array")
        frames = []
    for i, frame in enumerate(frames):
        if not isinstance(frame, dict) or \
                not isinstance(frame.get("name"), str) or not frame["name"]:
            problems.append(f"shared.frames[{i}]: missing name")
    profiles = payload.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        problems.append("missing profiles array")
        profiles = []
    for p, prof in enumerate(profiles):
        where = f"profiles[{p}]"
        if not isinstance(prof, dict):
            problems.append(f"{where}: not an object")
            continue
        if prof.get("type") != "sampled":
            problems.append(f"{where}: type must be 'sampled'")
        if prof.get("unit") not in ("microseconds", "milliseconds",
                                    "seconds", "nanoseconds", "bytes",
                                    "none"):
            problems.append(f"{where}: bad unit {prof.get('unit')!r}")
        samples = prof.get("samples")
        weights = prof.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            problems.append(f"{where}: missing samples/weights")
            continue
        if len(samples) != len(weights):
            problems.append(f"{where}: {len(samples)} samples vs "
                            f"{len(weights)} weights")
        for s, sample in enumerate(samples):
            if not isinstance(sample, list) or not sample:
                problems.append(f"{where}.samples[{s}]: empty sample")
                continue
            for idx in sample:
                if not isinstance(idx, int) or idx < 0 or idx >= len(frames):
                    problems.append(
                        f"{where}.samples[{s}]: frame index {idx!r} out "
                        "of range")
                    break
        for w, weight in enumerate(weights):
            if not isinstance(weight, (int, float)) or weight < 0:
                problems.append(f"{where}.weights[{w}]: bad weight "
                                f"{weight!r}")
                break
    return problems


# ---------------------------------------------------------------------------
# Differential profiles.
# ---------------------------------------------------------------------------

class DiffRow:
    """One (frame, kind) alignment between two profiles, per-op normalised."""

    __slots__ = ("frame", "kind", "base_us_per_op", "other_us_per_op",
                 "base_spans_per_op", "other_spans_per_op")

    def __init__(self, frame: str, kind: str,
                 base_us_per_op: float, other_us_per_op: float,
                 base_spans_per_op: float, other_spans_per_op: float):
        self.frame = frame
        self.kind = kind
        self.base_us_per_op = base_us_per_op
        self.other_us_per_op = other_us_per_op
        self.base_spans_per_op = base_spans_per_op
        self.other_spans_per_op = other_spans_per_op

    @property
    def delta_us_per_op(self) -> float:
        """Signed cost gap: positive means ``other`` spends more here."""
        return self.other_us_per_op - self.base_us_per_op

    @property
    def delta_spans_per_op(self) -> float:
        return self.other_spans_per_op - self.base_spans_per_op


def diff_profiles(base: CostProfile, other: CostProfile) -> List[DiffRow]:
    """Align two profiles by (frame, kind) and return signed per-op deltas.

    Hosts are summed out before aligning (the two systems deploy different
    host sets), and every total is divided by the profile's completed-op
    count so a row reads as "microseconds of this cost per operation".
    Rows come back sorted by |delta|, largest first.
    """
    base_ops = max(base.ops, 1)
    other_ops = max(other.ops, 1)
    base_totals = base.frame_kind_totals()
    other_totals = other.frame_kind_totals()
    rows: List[DiffRow] = []
    for frame, kind in sorted(set(base_totals) | set(other_totals)):
        base_fc = base.frames.get(frame)
        other_fc = other.frames.get(frame)
        rows.append(DiffRow(
            frame, kind,
            base_totals.get((frame, kind), 0.0) / base_ops,
            other_totals.get((frame, kind), 0.0) / other_ops,
            (base_fc.spans / base_ops) if base_fc is not None else 0.0,
            (other_fc.spans / other_ops) if other_fc is not None else 0.0,
        ))
    rows.sort(key=lambda r: (-abs(r.delta_us_per_op), r.frame, r.kind))
    return rows
