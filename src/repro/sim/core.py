"""Generator-coroutine discrete-event simulation kernel.

A *process* is a Python generator that yields :class:`Event` objects; the
kernel resumes it with the event's value once the event triggers.  Composite
waits use :class:`AnyOf` / :class:`AllOf`.  The design follows the classic
SimPy execution model but is implemented from scratch (no third-party
dependency) and trimmed to what the Mantle reproduction needs: timeouts,
one-shot events, process join, interrupts for failure injection, and strict
determinism (FIFO tie-breaking on equal timestamps).

Time is a float in simulated microseconds.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

_PENDING = object()


class SimulationError(RuntimeError):
    """Raised when the simulation itself is misused (not a modelled failure)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Used for failure injection (killing a server loop) and for cancelling
    timers (Raft election timeouts).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called,
    and *processed* once the kernel has delivered it to all callbacks.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self)
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled so it won't crash the simulation."""
        self._defused = True
        return self


class Timeout(Event):
    """An event that triggers ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(self, delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("timeouts trigger themselves")


class Process(Event):
    """Wraps a generator and drives it; the process *is* an event that
    triggers with the generator's return value (so processes can be joined
    by yielding them)."""

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off at the current simulation time.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        ev = Event(self.sim)
        ev._ok = False
        ev._value = Interrupt(cause)
        ev._defused = True
        ev.callbacks.append(self._resume)
        self.sim._enqueue(ev)

    def _resume(self, trigger: Event) -> None:
        if self.triggered:
            return  # interrupted-and-finished race
        # Detach from whatever we were waiting on.
        waited = self._waiting_on
        self._waiting_on = None
        if waited is not None and waited is not trigger and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        self.sim._active_process = self
        try:
            if trigger._ok:
                target = self._generator.send(trigger._value)
            else:
                trigger._defused = True
                target = self._generator.throw(trigger._value)
        except StopIteration as stop:
            self._finish(True, stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - modelled failure path
            self._finish(False, exc)
            return
        finally:
            self.sim._active_process = None
        if not isinstance(target, Event):
            kind = type(target).__name__
            self._generator.close()
            self._finish(
                False,
                SimulationError(
                    f"process {self.name!r} yielded a {kind}; processes must "
                    "yield Event instances (use 'yield from' for sub-generators)"
                ),
            )
            return
        if target.sim is not self.sim:
            self._finish(False, SimulationError("yielded event from another simulator"))
            return
        self._waiting_on = target
        if target.callbacks is None:
            # Already processed: resume immediately (same timestamp).
            ev = Event(self.sim)
            ev._ok = target._ok
            ev._value = target._value
            if not target._ok:
                target._defused = True
                ev._defused = True
            ev.callbacks.append(self._resume)
            self.sim._enqueue(ev)
        else:
            target.callbacks.append(self._resume)

    def _finish(self, ok: bool, value: Any) -> None:
        self._ok = ok
        self._value = value
        self.sim._enqueue(self)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("mixing events from different simulators")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered; value is their values.

    Fails fast if any child fails (remaining children are abandoned).
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Triggers as soon as one child triggers; value is (index, value)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed((self.events.index(event), event._value))


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> def hello():
    ...     yield sim.timeout(5)
    ...     return sim.now
    >>> proc = sim.process(hello())
    >>> sim.run()
    >>> proc.value
    5.0
    """

    def __init__(self):
        self._now = 0.0
        self._queue: List = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        return self._now

    # -- event factories --------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    def _step(self) -> None:
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event._ok and not event._defused:
            # A failed event nobody handled: surface the error loudly
            # instead of silently dropping a crashed process.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue drains or ``until`` is reached."""
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = float(until)
                return
            self._step()
        if until is not None and until > self._now:
            self._now = float(until)

    def run_until(self, event: Event) -> None:
        """Process events until ``event`` triggers (or the queue drains).

        Unlike :meth:`run`, this lets callers wait for one process while
        perpetual background processes (compactors, Raft heartbeats) keep
        the queue non-empty.
        """
        while not event.triggered and self._queue:
            self._step()

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: spawn a process, run until it completes, return its
        value.

        Used by the synchronous facade (:class:`repro.core.api.MantleClient`)
        to hide the event loop from library users.
        """
        proc = self.process(generator, name)
        self.run_until(proc)
        if not proc.triggered:
            raise SimulationError(f"process {proc.name!r} deadlocked")
        if not proc.ok:
            # The caller is handling the failure; don't let the queued
            # process event crash a later run() pass.
            proc.defused()
            raise proc.value
        return proc.value
