"""Generator-coroutine discrete-event simulation kernel.

A *process* is a Python generator that yields :class:`Event` objects; the
kernel resumes it with the event's value once the event triggers.  Composite
waits use :class:`AnyOf` / :class:`AllOf`.  The design follows the classic
SimPy execution model but is implemented from scratch (no third-party
dependency) and trimmed to what the Mantle reproduction needs: timeouts,
one-shot events, process join, interrupts for failure injection, and strict
determinism (FIFO tie-breaking on equal timestamps).

Time is a float in simulated microseconds.

Scheduling uses two tiers.  Delayed events go through a binary heap keyed by
``(time, seq)``.  Zero-delay events — event triggers, process completions,
resource grants — go through a FIFO *microtask* deque instead, skipping the
heap entirely.  The total order is identical to running everything through
the heap: a heap entry at the current timestamp was necessarily pushed at an
earlier simulated time (a push at the current time lands in the deque), so
it carries a smaller sequence number than anything in the deque, and deque
entries preserve FIFO order among themselves.  The event loop therefore
drains heap entries at the current time first, then the deque, then advances
the clock.  ``Simulator(fast_paths=False)`` (or ``MANTLE_SIM_FAST=0`` in the
environment) disables the deque and the deferred-resume microtasks, pushing
every event through the heap as the original kernel did — the two modes must
produce bit-identical simulated results, which ``tests/experiments/
test_fastpath_determinism.py`` enforces.

The third mode is the *lane-sharded* kernel (``Simulator(lanes=...)`` /
``MANTLE_SIM_LANES``): every :class:`repro.sim.host.Host` gets its own lane —
a private future-event heap — while zero-delay work keeps flowing through
the one global microtask deque, byte-for-byte the fast-mode hot paths.
Delayed events land on the lane where they will fire: a host's CPU/fsync
completions and timers stay on that host's heap, and the only cross-lane
edges (``Network.transit`` / Raft ``_deliver``) target the destination
host's lane, arriving at least one one-way latency in the future — the
conservative lookahead that keeps each lane's heap small and self-contained.
The run loop executes due heap entries in the globally minimal ``(time,
seq)`` order (one shared counter, exactly the keys fast mode assigns), then
drains the deque, then advances the clock — the same total order as the
single-loop kernels, so every simulated result, RNG draw, span and metric
is bit-identical by construction.  What lanes buy is O(log local) instead
of O(log total) per heap operation, plus a sticky current-lane fast path
when consecutive events belong to one host; lane placement is purely a
performance heuristic, and a mis-routed event cannot change results.  See
docs/performance.md.
"""

from __future__ import annotations

import collections
import heapq
import os
from typing import Any, Callable, Generator, Iterable, List, Optional

from heapq import heappush as _heappush

import repro.sim.trace as trace_module
import repro.sim.telemetry as telemetry_module

_PENDING = object()


def _fast_paths_default() -> bool:
    """Fast paths are on unless ``MANTLE_SIM_FAST`` disables them."""
    return os.environ.get("MANTLE_SIM_FAST", "1").lower() not in (
        "0", "false", "off", "no")


def _lanes_default() -> int:
    """Lane count requested via ``MANTLE_SIM_LANES``.

    ``0`` (the default) keeps the single-loop kernels; ``1``/``true``/
    ``auto`` gives every host its own lane; an integer ``N >= 2`` caps host
    lanes at ``N`` (round-robin beyond that).  Returns ``-1`` for "per-host,
    uncapped".
    """
    raw = os.environ.get("MANTLE_SIM_LANES", "0").strip().lower()
    if raw in ("", "0", "false", "off", "no"):
        return 0
    if raw in ("1", "true", "on", "yes", "auto"):
        return -1
    try:
        value = int(raw)
    except ValueError:
        return -1
    return value if value > 1 else -1


def _tracing_default() -> bool:
    """Span tracing is off unless ``MANTLE_TRACE`` enables it."""
    return os.environ.get("MANTLE_TRACE", "0").lower() in (
        "1", "true", "on", "yes")


class SimulationError(RuntimeError):
    """Raised when the simulation itself is misused (not a modelled failure)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Used for failure injection (killing a server loop) and for cancelling
    timers (Raft election timeouts).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called,
    and *processed* once the kernel has delivered it to all callbacks.
    Callback lists may contain ``None`` tombstones left by O(1) detaches;
    the event loop skips them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Optional[Callable[["Event"], None]]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        if sim._fast:
            sim._micro.append(self)
        else:
            sim._seq += 1
            _heappush(sim._queue, (sim._now, sim._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        sim = self.sim
        if sim._fast:
            sim._micro.append(self)
        else:
            sim._seq += 1
            _heappush(sim._queue, (sim._now, sim._seq, self))
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled so it won't crash the simulation."""
        self._defused = True
        return self


class Timeout(Event):
    """An event that triggers ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Flat slot initialisation (no super() chain): this constructor is
        # the hottest allocation site in the kernel.
        self.sim = sim
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self.delay = delay
        when = sim._now + delay
        if when == sim._now and sim._fast:
            sim._micro.append(self)
        else:
            sim._seq += 1
            _heappush(sim._queue, (when, sim._seq, self))

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("timeouts trigger themselves")


class _Bootstrap:
    """Pseudo-trigger used to kick off a process without a heap round trip."""

    __slots__ = ()
    _ok = True
    _value = None
    callbacks = None
    _defused = True


_INIT = _Bootstrap()

#: Lane-index band split (lane kernel only).  A lane whose head is more than
#: this many microseconds in the future is indexed in the *cold* band —
#: standing watchdogs, op deadlines, heartbeat timers — which lane switches
#: never sift through.  The *active* band stays at roughly one entry per
#: lane with near-future work, so the per-switch heap ops are O(log active
#: lanes) instead of O(log all lanes).  The split is a placement heuristic
#: only: both bands are verified on pop and the run loop always takes the
#: minimum over both tops, so the value affects wall-clock, never results.
_COLD_US = 1000.0

_INF = float("inf")


class Process(Event):
    """Wraps a generator and drives it; the process *is* an event that
    triggers with the generator's return value (so processes can be joined
    by yielding them)."""

    __slots__ = ("_generator", "_send", "_throw", "_waiting_on",
                 "_waiting_index", "_cb", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        self._waiting_on: Optional[Event] = None
        self._waiting_index = -1
        # One bound method reused for every wait; also the identity token the
        # O(1) tombstone detach compares against.
        self._cb = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off at the current simulation time.
        if sim._fast:
            sim._micro.append((self._cb, _INIT))
        else:
            bootstrap = Event(sim)
            bootstrap.callbacks.append(self._cb)
            bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not _PENDING:
            return
        ev = Event(self.sim)
        ev._ok = False
        ev._value = Interrupt(cause)
        ev._defused = True
        ev.callbacks.append(self._cb)
        self.sim._enqueue(ev)

    def _lane_bootstrap(self, lane: int) -> None:
        """First resume of a lane-pinned process (lane kernel only).

        Placement-only: the bootstrap stays at its FIFO position in the
        global microtask deque, but runs with the hinted lane bound as
        current so the body's initial delayed pushes (its standing timers,
        its first think/poll timeout) land on its home lane instead of
        whichever lane happened to be executing.  The previous binding is
        restored before returning so the run loop's cached locals stay
        valid, and a changed lane head is surfaced to the lane index —
        plain ``timeout()`` pushes don't register there themselves.
        """
        sim = self.sim
        heap = sim._lheaps[lane]
        before = heap[0] if heap else None
        prev_lane = sim._current_lane
        prev_queue = sim._queue
        sim._current_lane = lane
        sim._queue = heap
        try:
            self._resume(_INIT)
        finally:
            sim._current_lane = prev_lane
            sim._queue = prev_queue
            # Register the changed head only for a *non-current* lane: the
            # run loop compares the current lane's head directly, and a
            # self-candidate would force it through the slow path on every
            # subsequent pop.
            if heap and lane != prev_lane:
                head = heap[0]
                if head is not before:
                    if head[0] > sim._now + _COLD_US:
                        _heappush(sim._rcold, (head[0], head[1], lane))
                    else:
                        _heappush(sim._runnable, (head[0], head[1], lane))
                    sim._rlive[lane] = head[1]
                    if head[0] < sim._rbound0:
                        sim._rbound0 = head[0]
                        sim._rbound1 = head[1]

    def _resume(self, trigger: Event) -> None:
        if self._value is not _PENDING:
            return  # interrupted-and-finished race
        # Publish which process is executing: the tracer's cost-attribution
        # stacks (repro.sim.profile) key on this to charge simulated work to
        # the innermost open span of the running process.  One attribute
        # store per resume; nothing in the kernel ever reads it.
        self.sim._active_process = self
        # Detach from whatever we were waiting on.
        waited = self._waiting_on
        if waited is not None:
            self._waiting_on = None
            if waited is not trigger and waited.callbacks is not None:
                # O(1) detach: we recorded where we appended our callback and
                # tombstone that slot instead of scanning the whole list.
                cbs = waited.callbacks
                idx = self._waiting_index
                if 0 <= idx < len(cbs) and cbs[idx] is self._cb:
                    cbs[idx] = None
                else:  # pragma: no cover - defensive fallback
                    try:
                        cbs.remove(self._cb)
                    except ValueError:
                        pass
        try:
            if trigger._ok:
                target = self._send(trigger._value)
            else:
                trigger._defused = True
                target = self._throw(trigger._value)
        except StopIteration as stop:
            self._finish(True, stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - modelled failure path
            self._finish(False, exc)
            return
        sim = self.sim
        if not isinstance(target, Event):
            kind = type(target).__name__
            self._generator.close()
            self._finish(
                False,
                SimulationError(
                    f"process {self.name!r} yielded a {kind}; processes must "
                    "yield Event instances (use 'yield from' for sub-generators)"
                ),
            )
            return
        if target.sim is not sim:
            self._finish(False, SimulationError("yielded event from another simulator"))
            return
        self._waiting_on = target
        cbs = target.callbacks
        if cbs is None:
            # Already processed: resume at the same timestamp.  The fast path
            # queues a deferred callback instead of allocating a fresh
            # wrapper Event and round-tripping it through the heap.
            if sim._fast:
                if not target._ok:
                    target._defused = True
                sim._micro.append((self._cb, target))
            else:
                ev = Event(sim)
                ev._ok = target._ok
                ev._value = target._value
                if not target._ok:
                    target._defused = True
                    ev._defused = True
                ev.callbacks.append(self._cb)
                sim._enqueue(ev)
            self._waiting_index = -1
        else:
            self._waiting_index = len(cbs)
            cbs.append(self._cb)

    def _finish(self, ok: bool, value: Any) -> None:
        self._ok = ok
        self._value = value
        sim = self.sim
        if sim._fast:
            sim._micro.append(self)
        else:
            sim._seq += 1
            _heappush(sim._queue, (sim._now, sim._seq, self))


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        evs = self.events = list(events)
        self._remaining = len(evs)
        if not evs:
            self.succeed([])
            return
        check = self._check
        for ev in evs:
            if ev.sim is not sim:
                raise SimulationError("mixing events from different simulators")
            cbs = ev.callbacks
            if cbs is None:
                check(ev)
            else:
                cbs.append(check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered; value is their values.

    Fails fast if any child fails (remaining children are abandoned).
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Triggers as soon as one child triggers; value is (index, value)."""

    __slots__ = ("_indices",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        events = list(events)
        # O(1) child -> index lookup.  Built back-to-front so the first
        # occurrence wins for duplicate children, matching ``list.index``.
        n = len(events)
        self._indices = {ev: n - 1 - i for i, ev in enumerate(reversed(events))}
        super().__init__(sim, events)

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed((self._indices[event], event._value))


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> def hello():
    ...     yield sim.timeout(5)
    ...     return sim.now
    >>> proc = sim.process(hello())
    >>> sim.run()
    >>> proc.value
    5.0

    ``fast_paths=False`` (or ``MANTLE_SIM_FAST=0``) routes every event
    through the legacy all-heap scheduler; simulated results are identical
    either way, only wall-clock differs.

    ``lanes`` selects the lane-sharded kernel (``MANTLE_SIM_LANES`` in the
    environment): ``True``/``"auto"``/``1`` gives every registered host its
    own scheduler lane, an integer ``N >= 2`` caps host lanes at ``N``, and
    ``0``/``False`` (default) keeps a single loop.  Lane mode implies the
    two-tier fast scheduler and is bit-identical to both single-loop modes.
    """

    def __init__(self, fast_paths: Optional[bool] = None, tracer=None,
                 telemetry=None, lanes: Optional[Any] = None):
        if lanes is None:
            lanes = _lanes_default()
        elif lanes is True or lanes == 1:
            lanes = -1
        elif lanes is False:
            lanes = 0
        else:
            lanes = int(lanes)
        self._lane_mode = lanes != 0
        self._lane_cap = lanes if lanes > 1 else None
        if fast_paths is None:
            fast_paths = _fast_paths_default()
        # Lanes are built on the two-tier scheduler; they override
        # fast_paths=False (the A/B axis for lanes is lanes on/off).
        self._fast = bool(fast_paths) or self._lane_mode
        self._now = 0.0
        self._seq = 0
        # ``_queue`` is where delayed pushes land and ``_micro`` is the
        # global zero-delay deque — in every mode.  Lane mode shards the
        # heap per host and re-aliases ``_queue`` to the currently executing
        # lane's heap, so every hot-path push site runs unchanged.
        self._queue: List = []
        self._micro: collections.deque = collections.deque()
        if self._lane_mode:
            # Lane 0 is the driver lane: workload generators, bare
            # Simulator scripts and anything not pinned to a host run here.
            self._lheaps: List[List] = [self._queue]
            self._host_lanes: dict = {}
            self._lane_rr = 0
            self._current_lane = 0
            # Lane index, two bands: near-future lane heads (``_runnable``)
            # and far-future ones (``_rcold``); see ``_COLD_US``.
            self._runnable: List = []
            self._rcold: List = []
            # Per-lane seq of the lane's *live* band candidate (0 = none).
            # Registrations supersede rather than remove: a band entry
            # whose seq no longer matches is garbage and is dropped on
            # sight by the run loop, so each lane keeps at most one live
            # candidate no matter how often its head improves.
            self._rlive: List[int] = [0]
            # Cached index minimum (time, seq) as two scalars, so the run
            # loop's sticky path costs one float compare instead of a
            # band-top scan.  Registrations only ever lower it; the run
            # loop recomputes it exactly whenever it touches the bands.
            self._rbound0 = _INF
            self._rbound1 = 0
            #: Number of lane switches the run loop performed; the
            #: events-per-switch ratio is the lane kernel's health metric.
            self.lane_switches = 0
        self._active_process: Optional[Process] = None
        if tracer is None:
            tracer = (trace_module.Tracer() if _tracing_default()
                      else trace_module.NULL_TRACER)
        #: Span collector consulted by instrumented layers; the default is
        #: the shared no-op singleton, so untraced runs pay only an
        #: ``enabled`` check per instrumentation site.  Assign a
        #: :class:`repro.sim.trace.Tracer` to turn tracing on; the tracer
        #: never creates simulator events, so simulated results are
        #: identical either way.
        self.tracer = tracer
        # Cost attribution (repro.sim.profile) keys span stacks by the
        # currently executing process; give the tracer access to it.
        tracer.bind(self)
        if telemetry is None:
            telemetry = (telemetry_module.Telemetry()
                         if telemetry_module._telemetry_default()
                         else telemetry_module.NULL_TELEMETRY)
        #: Windowed time-series registry consulted by instrumented layers;
        #: same on/off contract as the tracer — the default is the no-op
        #: singleton, sites guard on ``telemetry.enabled``, and enabling it
        #: cannot change simulated results.  Assign a
        #: :class:`repro.sim.telemetry.Telemetry` (before or during a run)
        #: to start collecting.
        self.telemetry = telemetry
        self._runtime = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def runtime(self):
        """This simulator's :class:`~repro.runtime.base.SimRuntime`.

        Server-side code (RPC handlers charging work/fsync) resolves its
        runtime through ``host.sim.runtime``; the live facade objects
        expose an :class:`~repro.runtime.aio.AsyncioRuntime` under the
        same attribute, which is how one handler body serves both worlds.
        The cached instance carries no network — client-side code gets a
        transport-capable runtime from its system instead.
        """
        runtime = self._runtime
        if runtime is None:
            from repro.runtime.base import SimRuntime
            runtime = self._runtime = SimRuntime(self)
        return runtime

    # -- lanes -------------------------------------------------------------

    @property
    def lane_count(self) -> int:
        """Number of scheduler lanes (1 when lane mode is off)."""
        return len(self._lheaps) if self._lane_mode else 1

    def host_lane(self, name: str) -> int:
        """Scheduler lane for host ``name`` (0 when lane mode is off).

        Each new host name gets a fresh lane; past the configured cap, hosts
        round-robin over the existing host lanes.  Lane 0 is reserved for
        the driver (unpinned processes).
        """
        if not self._lane_mode:
            return 0
        lane = self._host_lanes.get(name)
        if lane is None:
            cap = self._lane_cap
            if cap is not None and len(self._lheaps) > cap:
                lane = 1 + self._lane_rr % cap
                self._lane_rr += 1
            else:
                lane = len(self._lheaps)
                self._lheaps.append([])
                self._rlive.append(0)
            self._host_lanes[name] = lane
        return lane

    def timeout_into(self, lane: int, delay: float,
                     value: Any = None) -> Timeout:
        """Like :meth:`timeout`, but the event fires in ``lane``.

        This is the cross-lane edge: network flights and Raft deliveries
        land on the destination host's lane, so the arrival — and the whole
        zero-delay chain it kicks off — executes as that host's work.  The
        entry is keyed by the shared ``(time, seq)`` counter like any other
        push, so routing never changes the execution order, only which heap
        the event waits in.  A zero-delay (or fully rounded-away) flight is
        lane-agnostic and goes through the global microtask deque exactly
        as :meth:`timeout` would.  Falls back to :meth:`timeout` for the
        current lane and in single-loop modes.
        """
        if not self._lane_mode or lane == self._current_lane:
            return self.timeout(delay, value)
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        t = Timeout.__new__(Timeout)
        t.sim = self
        t.callbacks = []
        t._ok = True
        t._value = value
        t._defused = False
        t.delay = delay
        now = self._now
        when = now + delay
        if when == now:
            self._micro.append(t)
            return t
        heap = self._lheaps[lane]
        # A push that becomes the target lane's new head must be surfaced to
        # the run loop's lane index.  ``seq`` is the largest key component,
        # so that can only happen on strictly earlier time.  Near-future
        # heads (in-flight traffic) go to the active band; far-future ones
        # (armed watchdogs, deadlines) to the cold band switches never sift.
        improved = not heap or when < heap[0][0]
        self._seq = seq = self._seq + 1
        _heappush(heap, (when, seq, t))
        if improved:
            if when > now + _COLD_US:
                _heappush(self._rcold, (when, seq, lane))
            else:
                _heappush(self._runnable, (when, seq, lane))
            # This candidate supersedes any previous one for the lane (the
            # old band entry becomes garbage the run loop drops on sight).
            self._rlive[lane] = seq
            # ``seq`` is globally monotonic, so a new candidate beats the
            # cached index bound only on strictly earlier time.
            if when < self._rbound0:
                self._rbound0 = when
                self._rbound1 = seq
        return t

    # -- event factories --------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # Inlined Timeout construction (mirrors Timeout.__init__): this is
        # the single hottest allocation site in every experiment, so it's
        # worth skipping the constructor-call indirection.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        t = Timeout.__new__(Timeout)
        t.sim = self
        t.callbacks = []
        t._ok = True
        t._value = value
        t._defused = False
        t.delay = delay
        now = self._now
        when = now + delay
        if when == now and self._fast:
            self._micro.append(t)
        else:
            self._seq += 1
            _heappush(self._queue, (when, self._seq, t))
        return t

    def process(self, generator: Generator, name: str = "",
                lane: Optional[int] = None) -> Process:
        """Spawn ``generator`` as a :class:`Process`.

        ``lane`` is a placement hint, accepted (and ignored) in every mode.
        Under the lane kernel it decides where the process *starts*: the
        bootstrap resume runs with that lane current, so the body's first
        delayed pushes — a control loop's standing timer, a client's think
        sleep — land on its home lane rather than whichever lane spawned
        it.  After that, affinity follows the event flow on its own: a
        process resumed by a heap event executes on that event's lane, so
        an RPC handler's work follows the request from client lane to
        server lane and back without any hints.  Placement never affects
        ordering — the bootstrap keeps its FIFO slot in the global
        microtask deque either way.
        """
        proc = Process(self, generator, name)
        if (lane is not None and self._lane_mode
                and lane != self._current_lane
                and 0 <= lane < len(self._lheaps)):
            # Swap the just-appended plain bootstrap for the lane-binding
            # one.  Same deque position, same dispatch shape (callable,
            # arg): ordering is untouched.
            self._micro[-1] = (proc._lane_bootstrap, lane)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        when = self._now + delay
        if when == self._now and self._fast:
            self._micro.append(event)
        else:
            self._seq += 1
            _heappush(self._queue, (when, self._seq, event))

    def _dispatch(self, event: Event) -> None:
        """Deliver one processed event to its callbacks.

        A failed event nobody handled (no live callbacks — tombstones don't
        count) surfaces its error loudly instead of silently dropping a
        crashed process.
        """
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                if callback is not None:
                    callback(event)
        if not event._ok and not event._defused:
            if not callbacks or all(cb is None for cb in callbacks):
                raise event._value

    def _step(self) -> None:
        """Process exactly one queue entry (tests and tools; the run loops
        inline this logic)."""
        if self._lane_mode:
            self._lane_step()
            return
        queue = self._queue
        micro = self._micro
        if queue and queue[0][0] <= self._now:
            self._dispatch(heapq.heappop(queue)[2])
        elif micro:
            entry = micro.popleft()
            if type(entry) is tuple:
                entry[0](entry[1])
            else:
                self._dispatch(entry)
        elif queue:
            when, _seq, event = heapq.heappop(queue)
            self._now = when
            self._dispatch(event)

    def _lane_step(self) -> None:
        """Lane-mode single step: same semantics as :meth:`_step` with the
        heap tier sharded — due heap entries across all lanes in ``(time,
        seq)`` order, then the microtask deque, then advance the clock."""
        best = None
        best_lane = -1
        for lane, heap in enumerate(self._lheaps):
            if heap and (best is None or heap[0] < best):
                best = heap[0]
                best_lane = lane
        if best is not None and best[0] <= self._now:
            self._current_lane = best_lane
            self._queue = self._lheaps[best_lane]
            self._dispatch(heapq.heappop(self._queue)[2])
            return
        micro = self._micro
        if micro:
            entry = micro.popleft()
            if type(entry) is tuple:
                entry[0](entry[1])
            else:
                self._dispatch(entry)
            return
        if best is not None:
            self._now = best[0]
            self._current_lane = best_lane
            self._queue = self._lheaps[best_lane]
            self._dispatch(heapq.heappop(self._queue)[2])

    def _lane_run(self, limit: Optional[float],
                  stop_event: Optional[Event]) -> None:
        """Lane-mode event loop behind :meth:`run` and :meth:`run_until`.

        The loop order is exactly the single-loop fast kernel's — due heap
        entries first (globally minimal ``(time, seq)`` across all lanes),
        then the microtask deque, then advance the clock — with the one big
        heap replaced by per-lane heaps plus a *lane index* of ``(time,
        seq, lane)`` head candidates, split into two bands: near-future
        heads in ``_runnable``, far-future heads (armed watchdogs, op
        deadlines — the standing population) in ``_rcold``.  The current
        lane's head is kept out of the index and compared directly, so
        consecutive events on one host cost only O(log local-heap) with no
        index traffic; a lane switch sifts only the small active band, and
        the cold band is consulted through its top alone until a standing
        timer actually comes due.  Index candidates may be stale —
        verify-on-pop replaces them with the lane's true head.  An entry is
        only executed once its key is proven globally minimal, so results
        are bit-identical to the single-loop kernels.
        """
        lheaps = self._lheaps
        micro = self._micro
        runnable = self._runnable
        rcold = self._rcold
        del runnable[:]
        del rcold[:]
        cur = self._current_lane
        cold_after = self._now + _COLD_US
        rlive = self._rlive = [0] * len(lheaps)
        for lane, heap in enumerate(lheaps):
            if heap and lane != cur:
                h = heap[0]
                if h[0] > cold_after:
                    rcold.append((h[0], h[1], lane))
                else:
                    runnable.append((h[0], h[1], lane))
                rlive[lane] = h[1]
        heapq.heapify(runnable)
        heapq.heapify(rcold)
        # Prime the cached index bound (== min candidate key over both
        # bands, +inf when empty).  Registrations keep it exact by only
        # ever lowering it in lockstep with a band push; the loop restores
        # exactness whenever it pops or re-files a candidate.
        if runnable:
            rb = runnable[0]
            if rcold and rcold[0] < rb:
                rb = rcold[0]
        elif rcold:
            rb = rcold[0]
        else:
            rb = None
        if rb is None:
            self._rbound0 = _INF
        else:
            self._rbound0 = rb[0]
            self._rbound1 = rb[1]
        heappop = heapq.heappop
        heappush = _heappush
        heapreplace = heapq.heapreplace
        pending = _PENDING
        now = self._now
        cheap = lheaps[cur]
        self._queue = cheap

        def drain_micro() -> bool:
            """Run every queued microtask; True means the stop event fired.

            Safe to drain without rechecking the heaps: while the clock is
            parked, nothing can push a heap entry at the current time (a
            push at ``now`` lands in this very deque), so no heap entry can
            become due mid-drain.
            """
            while micro:
                entry = micro.popleft()
                if type(entry) is tuple:
                    entry[0](entry[1])
                else:
                    callbacks = entry.callbacks
                    entry.callbacks = None
                    if callbacks:
                        for callback in callbacks:
                            if callback is not None:
                                callback(entry)
                    if not entry._ok and not entry._defused:
                        if not callbacks or all(
                                cb is None for cb in callbacks):
                            raise entry._value
                if stop_event is not None and stop_event._value is not pending:
                    return True
            return False

        while True:
            if stop_event is not None and stop_event._value is not pending:
                return
            # -- pick the next heap entry in global (time, seq) order ------
            # Sticky fast path: one scalar compare against the cached index
            # bound.  The bound equals the minimum candidate key over both
            # bands, and a candidate can only under-estimate another lane's
            # true head, so "current head < bound" is a safe proof that the
            # current lane holds the global min.
            use_cur = False
            if cheap:
                h = cheap[0]
                h0 = h[0]
                b0 = self._rbound0
                use_cur = h0 < b0 or (h0 == b0 and h[1] < self._rbound1)
            if use_cur:
                if h0 > now:
                    if micro:
                        if drain_micro():
                            return
                        continue
                    if limit is not None and h0 > limit:
                        self._now = limit
                        return
                    now = self._now = h0
                event = heappop(cheap)[2]
            else:
                # Slow path: consult the bands.  The candidate is the
                # smaller of the two band tops.
                if runnable:
                    r = runnable[0]
                    if rcold and rcold[0] < r:
                        r = rcold[0]
                        rq = rcold
                    else:
                        rq = runnable
                elif rcold:
                    r = rcold[0]
                    rq = rcold
                else:
                    r = None
                if r is None:
                    # Empty bands mean an infinite bound, so the current
                    # lane must be empty too: drain microtasks or stop.
                    if micro:
                        if drain_micro():
                            return
                        continue
                    break
                r0, r1, rl = r
                if rlive[rl] != r1:
                    # Superseded candidate: a newer registration for this
                    # lane took over (an improving cross-lane push, or the
                    # filing on a later switch).  Garbage — drop it; the
                    # live candidate is elsewhere in the bands.
                    heappop(rq)
                    if runnable:
                        rb = runnable[0]
                        if rcold and rcold[0] < rb:
                            rb = rcold[0]
                    elif rcold:
                        rb = rcold[0]
                    else:
                        rb = None
                    if rb is None:
                        self._rbound0 = _INF
                    else:
                        self._rbound0 = rb[0]
                        self._rbound1 = rb[1]
                    continue
                rheap = lheaps[rl]
                if rheap:
                    rh = rheap[0]
                    stale = rh[0] != r0 or rh[1] != r1
                else:
                    rh = None
                    stale = True
                if stale:
                    # Stale *live* candidate (defensive — registrations
                    # keep the live candidate equal to the lane's true
                    # head, but a duplicate-seq refile can leave one
                    # behind).  Re-file the true head into its band.
                    if rh is None:
                        heappop(rq)
                        rlive[rl] = 0
                    else:
                        target = (rcold if rh[0] > now + _COLD_US
                                  else runnable)
                        if target is rq:
                            heapreplace(rq, (rh[0], rh[1], rl))
                        else:
                            heappop(rq)
                            heappush(target, (rh[0], rh[1], rl))
                        rlive[rl] = rh[1]
                    if runnable:
                        rb = runnable[0]
                        if rcold and rcold[0] < rb:
                            rb = rcold[0]
                    elif rcold:
                        rb = rcold[0]
                    else:
                        rb = None
                    if rb is None:
                        self._rbound0 = _INF
                    else:
                        self._rbound0 = rb[0]
                        self._rbound1 = rb[1]
                    continue
                # Verified: lane ``rl`` holds the globally minimal entry.
                if r0 > now:
                    if micro:
                        if drain_micro():
                            return
                        continue
                    if limit is not None and r0 > limit:
                        self._now = limit
                        return
                    now = self._now = r0
                # Switch lanes: file the old head into its band (usually a
                # single-sift swap into the slot the new lane vacates),
                # adopt the lane, pop its head.
                rlive[rl] = 0
                if cheap:
                    ch = cheap[0]
                    target = rcold if ch[0] > now + _COLD_US else runnable
                    if target is rq:
                        heapreplace(rq, (ch[0], ch[1], cur))
                    else:
                        heappop(rq)
                        heappush(target, (ch[0], ch[1], cur))
                    rlive[cur] = ch[1]
                else:
                    heappop(rq)
                if runnable:
                    rb = runnable[0]
                    if rcold and rcold[0] < rb:
                        rb = rcold[0]
                elif rcold:
                    rb = rcold[0]
                else:
                    rb = None
                if rb is None:
                    self._rbound0 = _INF
                else:
                    self._rbound0 = rb[0]
                    self._rbound1 = rb[1]
                cur = rl
                cheap = rheap
                self._current_lane = cur
                self._queue = cheap
                self.lane_switches += 1
                event = heappop(cheap)[2]
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                for callback in callbacks:
                    if callback is not None:
                        callback(event)
            if not event._ok and not event._defused:
                if not callbacks or all(cb is None for cb in callbacks):
                    raise event._value
        if limit is not None and limit > now:
            self._now = limit

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue drains or ``until`` is reached."""
        if self._lane_mode:
            self._lane_run(None if until is None else float(until), None)
            return
        queue = self._queue
        micro = self._micro
        heappop = heapq.heappop
        limit = None if until is None else float(until)
        now = self._now
        while True:
            # Heap entries at the current time predate (carry smaller seq
            # than) anything in the microtask deque, so they go first.
            if queue and queue[0][0] <= now:
                event = heappop(queue)[2]
            elif micro:
                entry = micro.popleft()
                if type(entry) is tuple:
                    entry[0](entry[1])
                    continue
                event = entry
            elif queue:
                when = queue[0][0]
                if limit is not None and when > limit:
                    self._now = limit
                    return
                now = self._now = when
                event = heappop(queue)[2]
            else:
                break
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                for callback in callbacks:
                    if callback is not None:
                        callback(event)
            if not event._ok and not event._defused:
                # Failed event: loud-crash unless someone actually handled
                # it (tombstoned slots don't count as handlers).
                if not callbacks or all(cb is None for cb in callbacks):
                    raise event._value
        if limit is not None and limit > now:
            self._now = limit

    def run_until(self, event: Event) -> None:
        """Process events until ``event`` triggers (or the queue drains).

        Unlike :meth:`run`, this lets callers wait for one process while
        perpetual background processes (compactors, Raft heartbeats) keep
        the queue non-empty.
        """
        if self._lane_mode:
            self._lane_run(None, event)
            return
        queue = self._queue
        micro = self._micro
        heappop = heapq.heappop
        now = self._now
        while event._value is _PENDING:
            if queue and queue[0][0] <= now:
                current = heappop(queue)[2]
            elif micro:
                entry = micro.popleft()
                if type(entry) is tuple:
                    entry[0](entry[1])
                    continue
                current = entry
            elif queue:
                when, _seq, current = heappop(queue)
                now = self._now = when
            else:
                break
            callbacks = current.callbacks
            current.callbacks = None
            if callbacks:
                for callback in callbacks:
                    if callback is not None:
                        callback(current)
            if not current._ok and not current._defused:
                if not callbacks or all(cb is None for cb in callbacks):
                    raise current._value

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: spawn a process, run until it completes, return its
        value.

        Used by the synchronous facade (:class:`repro.core.api.MantleClient`)
        to hide the event loop from library users.
        """
        proc = self.process(generator, name)
        self.run_until(proc)
        if not proc.triggered:
            raise SimulationError(f"process {proc.name!r} deadlocked")
        if not proc.ok:
            # The caller is handling the failure; don't let the queued
            # process event crash a later run() pass.
            proc.defused()
            raise proc.value
        return proc.value
