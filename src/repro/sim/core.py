"""Generator-coroutine discrete-event simulation kernel.

A *process* is a Python generator that yields :class:`Event` objects; the
kernel resumes it with the event's value once the event triggers.  Composite
waits use :class:`AnyOf` / :class:`AllOf`.  The design follows the classic
SimPy execution model but is implemented from scratch (no third-party
dependency) and trimmed to what the Mantle reproduction needs: timeouts,
one-shot events, process join, interrupts for failure injection, and strict
determinism (FIFO tie-breaking on equal timestamps).

Time is a float in simulated microseconds.

Scheduling uses two tiers.  Delayed events go through a binary heap keyed by
``(time, seq)``.  Zero-delay events — event triggers, process completions,
resource grants — go through a FIFO *microtask* deque instead, skipping the
heap entirely.  The total order is identical to running everything through
the heap: a heap entry at the current timestamp was necessarily pushed at an
earlier simulated time (a push at the current time lands in the deque), so
it carries a smaller sequence number than anything in the deque, and deque
entries preserve FIFO order among themselves.  The event loop therefore
drains heap entries at the current time first, then the deque, then advances
the clock.  ``Simulator(fast_paths=False)`` (or ``MANTLE_SIM_FAST=0`` in the
environment) disables the deque and the deferred-resume microtasks, pushing
every event through the heap as the original kernel did — the two modes must
produce bit-identical simulated results, which ``tests/experiments/
test_fastpath_determinism.py`` enforces.
"""

from __future__ import annotations

import collections
import heapq
import os
from typing import Any, Callable, Generator, Iterable, List, Optional

from heapq import heappush as _heappush

import repro.sim.trace as trace_module
import repro.sim.telemetry as telemetry_module

_PENDING = object()


def _fast_paths_default() -> bool:
    """Fast paths are on unless ``MANTLE_SIM_FAST`` disables them."""
    return os.environ.get("MANTLE_SIM_FAST", "1").lower() not in (
        "0", "false", "off", "no")


def _tracing_default() -> bool:
    """Span tracing is off unless ``MANTLE_TRACE`` enables it."""
    return os.environ.get("MANTLE_TRACE", "0").lower() in (
        "1", "true", "on", "yes")


class SimulationError(RuntimeError):
    """Raised when the simulation itself is misused (not a modelled failure)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Used for failure injection (killing a server loop) and for cancelling
    timers (Raft election timeouts).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called,
    and *processed* once the kernel has delivered it to all callbacks.
    Callback lists may contain ``None`` tombstones left by O(1) detaches;
    the event loop skips them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Optional[Callable[["Event"], None]]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        if sim._fast:
            sim._micro.append(self)
        else:
            sim._seq += 1
            _heappush(sim._queue, (sim._now, sim._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        sim = self.sim
        if sim._fast:
            sim._micro.append(self)
        else:
            sim._seq += 1
            _heappush(sim._queue, (sim._now, sim._seq, self))
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled so it won't crash the simulation."""
        self._defused = True
        return self


class Timeout(Event):
    """An event that triggers ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Flat slot initialisation (no super() chain): this constructor is
        # the hottest allocation site in the kernel.
        self.sim = sim
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self.delay = delay
        when = sim._now + delay
        if when == sim._now and sim._fast:
            sim._micro.append(self)
        else:
            sim._seq += 1
            _heappush(sim._queue, (when, sim._seq, self))

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("timeouts trigger themselves")


class _Bootstrap:
    """Pseudo-trigger used to kick off a process without a heap round trip."""

    __slots__ = ()
    _ok = True
    _value = None
    callbacks = None
    _defused = True


_INIT = _Bootstrap()


class Process(Event):
    """Wraps a generator and drives it; the process *is* an event that
    triggers with the generator's return value (so processes can be joined
    by yielding them)."""

    __slots__ = ("_generator", "_send", "_throw", "_waiting_on",
                 "_waiting_index", "_cb", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        self._waiting_on: Optional[Event] = None
        self._waiting_index = -1
        # One bound method reused for every wait; also the identity token the
        # O(1) tombstone detach compares against.
        self._cb = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off at the current simulation time.
        if sim._fast:
            sim._micro.append((self._cb, _INIT))
        else:
            bootstrap = Event(sim)
            bootstrap.callbacks.append(self._cb)
            bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not _PENDING:
            return
        ev = Event(self.sim)
        ev._ok = False
        ev._value = Interrupt(cause)
        ev._defused = True
        ev.callbacks.append(self._cb)
        self.sim._enqueue(ev)

    def _resume(self, trigger: Event) -> None:
        if self._value is not _PENDING:
            return  # interrupted-and-finished race
        # Publish which process is executing: the tracer's cost-attribution
        # stacks (repro.sim.profile) key on this to charge simulated work to
        # the innermost open span of the running process.  One attribute
        # store per resume; nothing in the kernel ever reads it.
        self.sim._active_process = self
        # Detach from whatever we were waiting on.
        waited = self._waiting_on
        if waited is not None:
            self._waiting_on = None
            if waited is not trigger and waited.callbacks is not None:
                # O(1) detach: we recorded where we appended our callback and
                # tombstone that slot instead of scanning the whole list.
                cbs = waited.callbacks
                idx = self._waiting_index
                if 0 <= idx < len(cbs) and cbs[idx] is self._cb:
                    cbs[idx] = None
                else:  # pragma: no cover - defensive fallback
                    try:
                        cbs.remove(self._cb)
                    except ValueError:
                        pass
        try:
            if trigger._ok:
                target = self._send(trigger._value)
            else:
                trigger._defused = True
                target = self._throw(trigger._value)
        except StopIteration as stop:
            self._finish(True, stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - modelled failure path
            self._finish(False, exc)
            return
        sim = self.sim
        if not isinstance(target, Event):
            kind = type(target).__name__
            self._generator.close()
            self._finish(
                False,
                SimulationError(
                    f"process {self.name!r} yielded a {kind}; processes must "
                    "yield Event instances (use 'yield from' for sub-generators)"
                ),
            )
            return
        if target.sim is not sim:
            self._finish(False, SimulationError("yielded event from another simulator"))
            return
        self._waiting_on = target
        cbs = target.callbacks
        if cbs is None:
            # Already processed: resume at the same timestamp.  The fast path
            # queues a deferred callback instead of allocating a fresh
            # wrapper Event and round-tripping it through the heap.
            if sim._fast:
                if not target._ok:
                    target._defused = True
                sim._micro.append((self._cb, target))
            else:
                ev = Event(sim)
                ev._ok = target._ok
                ev._value = target._value
                if not target._ok:
                    target._defused = True
                    ev._defused = True
                ev.callbacks.append(self._cb)
                sim._enqueue(ev)
            self._waiting_index = -1
        else:
            self._waiting_index = len(cbs)
            cbs.append(self._cb)

    def _finish(self, ok: bool, value: Any) -> None:
        self._ok = ok
        self._value = value
        sim = self.sim
        if sim._fast:
            sim._micro.append(self)
        else:
            sim._seq += 1
            _heappush(sim._queue, (sim._now, sim._seq, self))


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        evs = self.events = list(events)
        self._remaining = len(evs)
        if not evs:
            self.succeed([])
            return
        check = self._check
        for ev in evs:
            if ev.sim is not sim:
                raise SimulationError("mixing events from different simulators")
            cbs = ev.callbacks
            if cbs is None:
                check(ev)
            else:
                cbs.append(check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered; value is their values.

    Fails fast if any child fails (remaining children are abandoned).
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Triggers as soon as one child triggers; value is (index, value)."""

    __slots__ = ("_indices",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        events = list(events)
        # O(1) child -> index lookup.  Built back-to-front so the first
        # occurrence wins for duplicate children, matching ``list.index``.
        n = len(events)
        self._indices = {ev: n - 1 - i for i, ev in enumerate(reversed(events))}
        super().__init__(sim, events)

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed((self._indices[event], event._value))


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> def hello():
    ...     yield sim.timeout(5)
    ...     return sim.now
    >>> proc = sim.process(hello())
    >>> sim.run()
    >>> proc.value
    5.0

    ``fast_paths=False`` (or ``MANTLE_SIM_FAST=0``) routes every event
    through the legacy all-heap scheduler; simulated results are identical
    either way, only wall-clock differs.
    """

    def __init__(self, fast_paths: Optional[bool] = None, tracer=None,
                 telemetry=None):
        if fast_paths is None:
            fast_paths = _fast_paths_default()
        self._fast = bool(fast_paths)
        self._now = 0.0
        self._queue: List = []
        self._micro: collections.deque = collections.deque()
        self._seq = 0
        self._active_process: Optional[Process] = None
        if tracer is None:
            tracer = (trace_module.Tracer() if _tracing_default()
                      else trace_module.NULL_TRACER)
        #: Span collector consulted by instrumented layers; the default is
        #: the shared no-op singleton, so untraced runs pay only an
        #: ``enabled`` check per instrumentation site.  Assign a
        #: :class:`repro.sim.trace.Tracer` to turn tracing on; the tracer
        #: never creates simulator events, so simulated results are
        #: identical either way.
        self.tracer = tracer
        # Cost attribution (repro.sim.profile) keys span stacks by the
        # currently executing process; give the tracer access to it.
        tracer.bind(self)
        if telemetry is None:
            telemetry = (telemetry_module.Telemetry()
                         if telemetry_module._telemetry_default()
                         else telemetry_module.NULL_TELEMETRY)
        #: Windowed time-series registry consulted by instrumented layers;
        #: same on/off contract as the tracer — the default is the no-op
        #: singleton, sites guard on ``telemetry.enabled``, and enabling it
        #: cannot change simulated results.  Assign a
        #: :class:`repro.sim.telemetry.Telemetry` (before or during a run)
        #: to start collecting.
        self.telemetry = telemetry

    @property
    def now(self) -> float:
        return self._now

    # -- event factories --------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # Inlined Timeout construction (mirrors Timeout.__init__): this is
        # the single hottest allocation site in every experiment, so it's
        # worth skipping the constructor-call indirection.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        t = Timeout.__new__(Timeout)
        t.sim = self
        t.callbacks = []
        t._ok = True
        t._value = value
        t._defused = False
        t.delay = delay
        now = self._now
        when = now + delay
        if when == now and self._fast:
            self._micro.append(t)
        else:
            self._seq += 1
            _heappush(self._queue, (when, self._seq, t))
        return t

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        when = self._now + delay
        if when == self._now and self._fast:
            self._micro.append(event)
        else:
            self._seq += 1
            _heappush(self._queue, (when, self._seq, event))

    def _dispatch(self, event: Event) -> None:
        """Deliver one processed event to its callbacks.

        A failed event nobody handled (no live callbacks — tombstones don't
        count) surfaces its error loudly instead of silently dropping a
        crashed process.
        """
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                if callback is not None:
                    callback(event)
        if not event._ok and not event._defused:
            if not callbacks or all(cb is None for cb in callbacks):
                raise event._value

    def _step(self) -> None:
        """Process exactly one queue entry (tests and tools; the run loops
        inline this logic)."""
        queue = self._queue
        micro = self._micro
        if queue and queue[0][0] <= self._now:
            self._dispatch(heapq.heappop(queue)[2])
        elif micro:
            entry = micro.popleft()
            if type(entry) is tuple:
                entry[0](entry[1])
            else:
                self._dispatch(entry)
        elif queue:
            when, _seq, event = heapq.heappop(queue)
            self._now = when
            self._dispatch(event)

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue drains or ``until`` is reached."""
        queue = self._queue
        micro = self._micro
        heappop = heapq.heappop
        limit = None if until is None else float(until)
        now = self._now
        while True:
            # Heap entries at the current time predate (carry smaller seq
            # than) anything in the microtask deque, so they go first.
            if queue and queue[0][0] <= now:
                event = heappop(queue)[2]
            elif micro:
                entry = micro.popleft()
                if type(entry) is tuple:
                    entry[0](entry[1])
                    continue
                event = entry
            elif queue:
                when = queue[0][0]
                if limit is not None and when > limit:
                    self._now = limit
                    return
                now = self._now = when
                event = heappop(queue)[2]
            else:
                break
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                for callback in callbacks:
                    if callback is not None:
                        callback(event)
            if not event._ok and not event._defused:
                # Failed event: loud-crash unless someone actually handled
                # it (tombstoned slots don't count as handlers).
                if not callbacks or all(cb is None for cb in callbacks):
                    raise event._value
        if limit is not None and limit > now:
            self._now = limit

    def run_until(self, event: Event) -> None:
        """Process events until ``event`` triggers (or the queue drains).

        Unlike :meth:`run`, this lets callers wait for one process while
        perpetual background processes (compactors, Raft heartbeats) keep
        the queue non-empty.
        """
        queue = self._queue
        micro = self._micro
        heappop = heapq.heappop
        now = self._now
        while event._value is _PENDING:
            if queue and queue[0][0] <= now:
                current = heappop(queue)[2]
            elif micro:
                entry = micro.popleft()
                if type(entry) is tuple:
                    entry[0](entry[1])
                    continue
                current = entry
            elif queue:
                when, _seq, current = heappop(queue)
                now = self._now = when
            else:
                break
            callbacks = current.callbacks
            current.callbacks = None
            if callbacks:
                for callback in callbacks:
                    if callback is not None:
                        callback(current)
            if not current._ok and not current._defused:
                if not callbacks or all(cb is None for cb in callbacks):
                    raise current._value

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: spawn a process, run until it completes, return its
        value.

        Used by the synchronous facade (:class:`repro.core.api.MantleClient`)
        to hide the event loop from library users.
        """
        proc = self.process(generator, name)
        self.run_until(proc)
        if not proc.triggered:
            raise SimulationError(f"process {proc.name!r} deadlocked")
        if not proc.ok:
            # The caller is handling the failure; don't let the queued
            # process event crash a later run() pass.
            proc.defused()
            raise proc.value
        return proc.value
