"""Windowed time-series telemetry sampled in *simulated* time.

Where :mod:`repro.sim.trace` answers "where did this one operation's time
go?", this module answers "what was the whole cluster doing over the run?"
A :class:`Telemetry` registry holds four instrument kinds, all bucketed
into fixed windows of simulated microseconds (default 10 ms sim):

* :class:`Counter` — monotonic per-window sums (`fsync` count, cache hits,
  transaction aborts by cause).  :meth:`Counter.add_interval` spreads a
  busy interval across the windows it overlaps, which is how per-host CPU
  busy-fraction is accumulated without sampling error.
* :class:`Gauge` — a time-weighted level (RPCs in flight, resource queue
  depth, invalidator backlog).  Each window records the time integral of
  the value, the observed time, and the max, so the per-window mean is
  exact regardless of how irregularly the value changes.
* :class:`Histogram` — per-window count/sum/max of point samples (Raft
  batch sizes, apply lag, RPC latency, resource queue waits).
* :class:`Digest` — a per-window mergeable quantile sketch (log-spaced
  buckets, DDSketch layout) of point samples, used for per-op-type
  completion latencies: p50/p99/p999 are recoverable per window, over
  any window range, or across processes after :meth:`Digest.merge`,
  with relative error bounded by :data:`DIGEST_ALPHA`.

Mirroring the tracer's on/off design, the disabled registry is a shared
no-op singleton (:data:`NULL_TELEMETRY`); every instrumentation site
guards on ``telemetry.enabled``, so a run with telemetry off pays one
attribute load and a boolean test per site.  The registry never creates
simulator events, never advances time and never touches an RNG —
enabling it cannot change any simulated result (pinned by
``tests/experiments/test_fastpath_determinism.py``).

Enable per deployment with ``MantleConfig(telemetry=True)``, process-wide
with ``MANTLE_TELEMETRY=1``, or attach to a live simulator::

    from repro.sim.telemetry import Telemetry
    system.sim.telemetry = Telemetry(window_us=10_000.0)
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Default sampling window: 10 ms of simulated time.
DEFAULT_WINDOW_US = 10_000.0

#: Digest relative-error bound: any quantile estimate ``q̂`` of a true
#: value ``q`` above :data:`DIGEST_MIN_VALUE_US` satisfies
#: ``|q̂ - q| <= DIGEST_ALPHA * q`` (the DDSketch guarantee).
DIGEST_ALPHA = 0.01

#: Values at or below this land in bucket 0 and report exactly this value
#: (absolute error <= 1 us — under every cost in the model).
DIGEST_MIN_VALUE_US = 1.0

#: Bucket indices clamp here, so a digest is fixed-size regardless of the
#: value range: 2047 buckets at alpha=1% span [1us, ~1.5e17us].
DIGEST_MAX_BUCKET = 2047

_DIGEST_GAMMA = (1.0 + DIGEST_ALPHA) / (1.0 - DIGEST_ALPHA)
_DIGEST_LOG_GAMMA = math.log(_DIGEST_GAMMA)

#: Per-op-type completion-latency digests are named ``<prefix><op name>``
#: (``op.latency_us.mkdir``, ...); recorded by ``MetadataSystem.perform``
#: whenever telemetry is enabled, simulated and live alike.
OP_LATENCY_DIGEST_PREFIX = "op.latency_us."

#: Column order of every exported row (CSV header / JSON keys).
EXPORT_COLUMNS = ("metric", "kind", "host", "window_start_us", "value",
                  "count", "max", "capacity")


def _telemetry_default() -> bool:
    """Telemetry is off unless ``MANTLE_TELEMETRY`` enables it."""
    return os.environ.get("MANTLE_TELEMETRY", "0").lower() in (
        "1", "true", "on", "yes")


class Counter:
    """Per-window monotonic sums."""

    kind = "counter"

    __slots__ = ("name", "host", "capacity", "window_us", "windows", "total")

    def __init__(self, name: str, host: Optional[str], window_us: float,
                 capacity: float = 0.0):
        self.name = name
        self.host = host
        self.capacity = capacity
        self.window_us = window_us
        #: window index -> sum of increments landing in that window.
        self.windows: Dict[int, float] = {}
        self.total = 0.0

    def add(self, now: float, amount: float = 1.0) -> None:
        idx = int(now // self.window_us)
        windows = self.windows
        windows[idx] = windows.get(idx, 0.0) + amount
        self.total += amount

    def add_interval(self, start: float, end: float,
                     amount: Optional[float] = None) -> None:
        """Spread ``amount`` (default: the interval length) over
        ``[start, end)`` proportionally to each window's overlap."""
        if amount is None:
            amount = end - start
        if end <= start:
            self.add(start, amount)
            return
        w = self.window_us
        first = int(start // w)
        last = int(end // w)
        windows = self.windows
        if first == last:
            windows[first] = windows.get(first, 0.0) + amount
        else:
            scale = amount / (end - start)
            for idx in range(first, last + 1):
                lo = start if idx == first else idx * w
                hi = end if idx == last else (idx + 1) * w
                if hi > lo:
                    windows[idx] = windows.get(idx, 0.0) + (hi - lo) * scale
        self.total += amount

    def series(self) -> List[Tuple[float, float]]:
        """``[(window_start_us, sum)]`` sorted by window."""
        w = self.window_us
        return [(idx * w, self.windows[idx]) for idx in sorted(self.windows)]

    def sum_over(self, lo: Optional[float] = None,
                 hi: Optional[float] = None) -> float:
        """Total over windows intersecting ``[lo, hi)`` (whole run if None)."""
        if lo is None and hi is None:
            return self.total
        w = self.window_us
        total = 0.0
        for idx, val in self.windows.items():
            start = idx * w
            if (lo is None or start + w > lo) and (hi is None or start < hi):
                total += val
        return total

    def sum_clipped(self, lo: float, hi: float) -> float:
        """Total over ``[lo, hi)``, prorating windows that only partially
        overlap (assumes increments are uniform within a window)."""
        w = self.window_us
        total = 0.0
        for idx, val in self.windows.items():
            start = idx * w
            overlap = min(start + w, hi) - max(start, lo)
            if overlap > 0:
                total += val * (overlap / w)
        return total


class Gauge:
    """Time-weighted level.  Per window we keep the integral of the value
    over time, the observed duration and the max, so ``mean = integral /
    observed`` is exact for arbitrarily irregular updates."""

    kind = "gauge"

    __slots__ = ("name", "host", "capacity", "window_us", "windows",
                 "value", "peak", "_last_us")

    def __init__(self, name: str, host: Optional[str], window_us: float,
                 capacity: float = 0.0):
        self.name = name
        self.host = host
        self.capacity = capacity
        self.window_us = window_us
        #: window index -> [value*dt integral, observed dt, max value].
        self.windows: Dict[int, List[float]] = {}
        self.value = 0.0
        self.peak = 0.0
        self._last_us: Optional[float] = None

    def _observe(self, idx: int, vdt: float, dt: float, level: float) -> None:
        cell = self.windows.get(idx)
        if cell is None:
            self.windows[idx] = [vdt, dt, level]
        else:
            cell[0] += vdt
            cell[1] += dt
            if level > cell[2]:
                cell[2] = level
        if level > self.peak:
            self.peak = level

    def _advance(self, now: float) -> None:
        last = self._last_us
        if last is None or now <= last:
            self._last_us = now if (last is None or now > last) else last
            return
        w = self.window_us
        level = self.value
        first = int(last // w)
        end_idx = int(now // w)
        if first == end_idx:
            self._observe(first, level * (now - last), now - last, level)
        else:
            for idx in range(first, end_idx + 1):
                lo = last if idx == first else idx * w
                hi = now if idx == end_idx else (idx + 1) * w
                if hi > lo:
                    self._observe(idx, level * (hi - lo), hi - lo, level)
        self._last_us = now

    def set(self, now: float, value: float) -> None:
        self._advance(now)
        self.value = value
        # Make a zero-duration spike visible in the window max.
        self._observe(int(now // self.window_us), 0.0, 0.0, value)

    def adjust(self, now: float, delta: float) -> None:
        self.set(now, self.value + delta)

    def finalize(self, now: float) -> None:
        """Account the held value up to ``now`` (end of run)."""
        self._advance(now)

    def series(self) -> List[Tuple[float, float, float]]:
        """``[(window_start_us, time-weighted mean, observed_us)]``."""
        w = self.window_us
        out = []
        for idx in sorted(self.windows):
            vdt, dt, _mx = self.windows[idx]
            out.append((idx * w, (vdt / dt) if dt > 0 else 0.0, dt))
        return out

    def mean_over(self, lo: Optional[float] = None,
                  hi: Optional[float] = None) -> float:
        """Time-weighted mean over windows intersecting ``[lo, hi)``."""
        w = self.window_us
        vdt_sum = 0.0
        dt_sum = 0.0
        for idx, (vdt, dt, _mx) in self.windows.items():
            start = idx * w
            if (lo is None or start + w > lo) and (hi is None or start < hi):
                vdt_sum += vdt
                dt_sum += dt
        return (vdt_sum / dt_sum) if dt_sum > 0 else 0.0


class Histogram:
    """Per-window count/sum/max of point samples."""

    kind = "histogram"

    __slots__ = ("name", "host", "capacity", "window_us", "windows",
                 "total_count", "total_sum", "max_value")

    def __init__(self, name: str, host: Optional[str], window_us: float,
                 capacity: float = 0.0):
        self.name = name
        self.host = host
        self.capacity = capacity
        self.window_us = window_us
        #: window index -> [count, sum, max].
        self.windows: Dict[int, List[float]] = {}
        self.total_count = 0
        self.total_sum = 0.0
        self.max_value = 0.0

    def record(self, now: float, value: float) -> None:
        idx = int(now // self.window_us)
        cell = self.windows.get(idx)
        if cell is None:
            self.windows[idx] = [1, value, value]
        else:
            cell[0] += 1
            cell[1] += value
            if value > cell[2]:
                cell[2] = value
        self.total_count += 1
        self.total_sum += value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total_sum / self.total_count if self.total_count else 0.0

    def series(self) -> List[Tuple[float, float, int]]:
        """``[(window_start_us, per-window mean, count)]``."""
        w = self.window_us
        out = []
        for idx in sorted(self.windows):
            count, total, _mx = self.windows[idx]
            out.append((idx * w, total / count if count else 0.0, int(count)))
        return out

    def stats_over(self, lo: Optional[float] = None,
                   hi: Optional[float] = None) -> Tuple[int, float, float]:
        """``(count, sum, max)`` over windows intersecting ``[lo, hi)``."""
        w = self.window_us
        count, total, mx = 0, 0.0, 0.0
        for idx, (c, s, m) in self.windows.items():
            start = idx * w
            if (lo is None or start + w > lo) and (hi is None or start < hi):
                count += int(c)
                total += s
                if m > mx:
                    mx = m
        return count, total, mx


def digest_bucket(value: float) -> int:
    """Log-spaced bucket index of ``value`` (DDSketch layout).

    Bucket ``i >= 1`` covers ``(gamma^(i-1), gamma^i] * MIN``; bucket 0
    holds everything at or below :data:`DIGEST_MIN_VALUE_US`.  Pure
    arithmetic on the recorded float, so bit-identical inputs bucket
    identically on every kernel.
    """
    if value <= DIGEST_MIN_VALUE_US:
        return 0
    idx = int(math.ceil(
        math.log(value / DIGEST_MIN_VALUE_US) / _DIGEST_LOG_GAMMA))
    return min(max(idx, 1), DIGEST_MAX_BUCKET)


def digest_bucket_value(index: int) -> float:
    """The representative value reported for a bucket.

    ``2 * gamma^i / (gamma + 1)`` is the estimate that makes the relative
    error symmetric: at most :data:`DIGEST_ALPHA` anywhere in the bucket.
    """
    if index <= 0:
        return DIGEST_MIN_VALUE_US
    return DIGEST_MIN_VALUE_US * 2.0 * (_DIGEST_GAMMA ** index) \
        / (_DIGEST_GAMMA + 1.0)


def _bucket_quantile(buckets: Dict[int, int], q: float) -> float:
    """Quantile over one bucket->count map (integer-rank walk)."""
    n = sum(buckets.values())
    if n == 0:
        return 0.0
    rank = max(0, int(math.ceil(q * n)) - 1)
    cum = 0
    for idx in sorted(buckets):
        cum += buckets[idx]
        if cum > rank:
            return digest_bucket_value(idx)
    return digest_bucket_value(max(buckets))


class Digest:
    """Per-window mergeable quantile sketch of point samples.

    Samples land in log-spaced buckets (:func:`digest_bucket`), so any
    quantile is recoverable per window — or over any union of windows,
    or across digests merged from other processes — with relative error
    at most :data:`DIGEST_ALPHA`.  Merging is bucket-count addition:
    associative, commutative, and exactly order-independent, which is
    what makes p50/p99/p999 timelines export byte-identically however
    the windows were accumulated.
    """

    kind = "digest"

    __slots__ = ("name", "host", "capacity", "window_us", "windows",
                 "total_count", "total_sum", "max_value")

    def __init__(self, name: str, host: Optional[str], window_us: float,
                 capacity: float = 0.0):
        self.name = name
        self.host = host
        self.capacity = capacity
        self.window_us = window_us
        #: window index -> [bucket->count map, count, sum, max].
        self.windows: Dict[int, List[Any]] = {}
        self.total_count = 0
        self.total_sum = 0.0
        self.max_value = 0.0

    def record(self, now: float, value: float) -> None:
        idx = int(now // self.window_us)
        cell = self.windows.get(idx)
        if cell is None:
            cell = self.windows[idx] = [{}, 0, 0.0, 0.0]
        buckets = cell[0]
        b = digest_bucket(value)
        buckets[b] = buckets.get(b, 0) + 1
        cell[1] += 1
        cell[2] += value
        if value > cell[3]:
            cell[3] = value
        self.total_count += 1
        self.total_sum += value
        if value > self.max_value:
            self.max_value = value

    def merge(self, other: "Digest") -> None:
        """Fold another digest's windows into this one (bucket addition)."""
        for idx, (buckets, count, total, mx) in other.windows.items():
            cell = self.windows.get(idx)
            if cell is None:
                cell = self.windows[idx] = [{}, 0, 0.0, 0.0]
            mine = cell[0]
            for b, c in buckets.items():
                mine[b] = mine.get(b, 0) + c
            cell[1] += count
            cell[2] += total
            if mx > cell[3]:
                cell[3] = mx
        self.total_count += other.total_count
        self.total_sum += other.total_sum
        if other.max_value > self.max_value:
            self.max_value = other.max_value

    def quantile(self, q: float, lo: Optional[float] = None,
                 hi: Optional[float] = None) -> float:
        """Quantile over windows intersecting ``[lo, hi)`` (whole run if
        None), within :data:`DIGEST_ALPHA` of the true sample quantile."""
        w = self.window_us
        merged: Dict[int, int] = {}
        for idx, (buckets, _c, _s, _m) in self.windows.items():
            start = idx * w
            if (lo is None or start + w > lo) and (hi is None or start < hi):
                for b, c in buckets.items():
                    merged[b] = merged.get(b, 0) + c
        return _bucket_quantile(merged, q)

    def count_over(self, lo: Optional[float] = None,
                   hi: Optional[float] = None) -> int:
        """Sample count over windows intersecting ``[lo, hi)``."""
        if lo is None and hi is None:
            return self.total_count
        w = self.window_us
        count = 0
        for idx, (_b, c, _s, _m) in self.windows.items():
            start = idx * w
            if (lo is None or start + w > lo) and (hi is None or start < hi):
                count += c
        return count

    def series(self, q: float = 0.99) -> List[Tuple[float, float, int]]:
        """``[(window_start_us, per-window quantile, count)]``."""
        w = self.window_us
        return [(idx * w, _bucket_quantile(self.windows[idx][0], q),
                 int(self.windows[idx][1]))
                for idx in sorted(self.windows)]

    def to_jsonable(self) -> Dict[str, Any]:
        """Wire form for cross-process aggregation (obs snapshots)."""
        return {
            "metric": self.name,
            "host": self.host or "",
            "window_us": self.window_us,
            "alpha": DIGEST_ALPHA,
            "min_value_us": DIGEST_MIN_VALUE_US,
            "windows": [
                {"window_start_us": idx * self.window_us,
                 "count": int(cell[1]), "sum": cell[2], "max": cell[3],
                 "buckets": [[b, cell[0][b]] for b in sorted(cell[0])]}
                for idx, cell in sorted(self.windows.items())],
        }


def digest_from_jsonable(data: Dict[str, Any]) -> Digest:
    """Rebuild a :class:`Digest` from :meth:`Digest.to_jsonable` output."""
    digest = Digest(data["metric"], data.get("host") or None,
                    float(data["window_us"]))
    for window in data.get("windows", ()):
        idx = int(float(window["window_start_us"]) // digest.window_us)
        buckets = {int(b): int(c) for b, c in window.get("buckets", ())}
        count = int(window.get("count", 0))
        total = float(window.get("sum", 0.0))
        mx = float(window.get("max", 0.0))
        digest.windows[idx] = [buckets, count, total, mx]
        digest.total_count += count
        digest.total_sum += total
        if mx > digest.max_value:
            digest.max_value = mx
    return digest


def latency_digests(telemetry) -> List[Tuple[str, Digest]]:
    """``[(op name, digest)]`` for every per-op completion-latency digest
    in the registry, sorted by op name (works on any registry object)."""
    prefix = OP_LATENCY_DIGEST_PREFIX
    return [(inst.name[len(prefix):], inst)
            for inst in telemetry.instruments()
            if inst.kind == "digest" and inst.name.startswith(prefix)]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram,
          "digest": Digest}


class Telemetry:
    """Registry of instruments keyed by ``(kind, name, host)``.

    Instruments are created on first use (``counter()`` / ``gauge()`` /
    ``histogram()`` are get-or-create), so instrumentation sites don't
    need registration ceremony and a registry attached to a *live*
    simulator picks up every subsequent event.
    """

    enabled = True

    def __init__(self, window_us: float = DEFAULT_WINDOW_US):
        if window_us <= 0:
            raise ValueError(f"telemetry window must be positive: {window_us}")
        self.window_us = float(window_us)
        self._instruments: Dict[Tuple[str, str, Optional[str]], Any] = {}

    def _get(self, kind: str, name: str, host: Optional[str],
             capacity: float):
        key = (kind, name, host)
        inst = self._instruments.get(key)
        if inst is None:
            inst = _KINDS[kind](name, host, self.window_us, capacity)
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, host: Optional[str] = None,
                capacity: float = 0.0) -> Counter:
        return self._get("counter", name, host, capacity)

    def gauge(self, name: str, host: Optional[str] = None,
              capacity: float = 0.0) -> Gauge:
        return self._get("gauge", name, host, capacity)

    def histogram(self, name: str, host: Optional[str] = None,
                  capacity: float = 0.0) -> Histogram:
        return self._get("histogram", name, host, capacity)

    def digest(self, name: str, host: Optional[str] = None,
               capacity: float = 0.0) -> Digest:
        return self._get("digest", name, host, capacity)

    # -- read side ---------------------------------------------------------

    def instruments(self) -> List[Any]:
        """All instruments, sorted by (name, host, kind) for determinism."""
        return [self._instruments[k] for k in
                sorted(self._instruments,
                       key=lambda k: (k[1], k[2] or "", k[0]))]

    def find(self, name: str, host: Optional[str] = None):
        """The instrument with this name/host, any kind, or ``None``."""
        for kind in _KINDS:
            inst = self._instruments.get((kind, name, host))
            if inst is not None:
                return inst
        return None

    def hosts(self, name: str) -> List[str]:
        """Sorted hosts that have an instrument called ``name``."""
        out = {key[2] for key in self._instruments
               if key[1] == name and key[2] is not None}
        return sorted(out)

    def finalize(self, now: float) -> None:
        """Close out gauge integrals at end of run (idempotent)."""
        for inst in self._instruments.values():
            if inst.kind == "gauge":
                inst.finalize(now)

    # -- export ------------------------------------------------------------

    def export_rows(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """One dict per (instrument, window), columns :data:`EXPORT_COLUMNS`.

        ``value`` is the window sum (counter), time-weighted mean (gauge)
        or sample mean (histogram); ``count`` is the observed microseconds
        (gauge) or sample count (histogram); ``capacity`` is the
        normalisation constant (cores for CPU busy counters) or 0.
        """
        if now is not None:
            self.finalize(now)
        rows: List[Dict[str, Any]] = []
        for inst in self.instruments():
            if inst.kind == "counter":
                triples = [(start, val, 0.0, 0.0)
                           for start, val in inst.series()]
            elif inst.kind == "gauge":
                w = inst.window_us
                triples = [(idx * w, (c[0] / c[1]) if c[1] > 0 else 0.0,
                            c[1], c[2])
                           for idx, c in sorted(inst.windows.items())]
            elif inst.kind == "digest":
                w = inst.window_us
                triples = [(idx * w, _bucket_quantile(c[0], 0.99),
                            float(c[1]), c[3])
                           for idx, c in sorted(inst.windows.items())]
            else:
                w = inst.window_us
                triples = [(idx * w, (c[1] / c[0]) if c[0] else 0.0,
                            float(c[0]), c[2])
                           for idx, c in sorted(inst.windows.items())]
            for start, value, count, mx in triples:
                rows.append({
                    "metric": inst.name,
                    "kind": inst.kind,
                    "host": inst.host or "",
                    "window_start_us": start,
                    "value": value,
                    "count": count,
                    "max": mx,
                    "capacity": inst.capacity,
                })
        return rows

    def write_csv(self, path: str, now: Optional[float] = None) -> int:
        """Write :meth:`export_rows` as CSV; returns the row count."""
        rows = self.export_rows(now)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(",".join(EXPORT_COLUMNS) + "\n")
            for row in rows:
                fh.write(",".join(_csv_cell(row[col])
                                  for col in EXPORT_COLUMNS) + "\n")
        return len(rows)

    def export_payload(self, now: Optional[float] = None,
                       extra: Optional[Dict[str, Any]] = None
                       ) -> Dict[str, Any]:
        """Build the ``{"window_us", "rows", **extra}`` export payload.

        This is the JSON document ``write_json`` persists and the live
        metrics endpoint (``mantle-serve --metrics-port``) serves.
        """
        payload: Dict[str, Any] = {"window_us": self.window_us,
                                   "rows": self.export_rows(now)}
        digests = [inst.to_jsonable() for inst in self.instruments()
                   if inst.kind == "digest"]
        if digests:
            payload["digests"] = digests
        if extra:
            payload.update(extra)
        return payload

    def write_json(self, path: str, now: Optional[float] = None,
                   extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Write ``{"window_us", "rows", **extra}`` as JSON."""
        payload = self.export_payload(now, extra)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
        return payload


def _csv_cell(value: Any) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def validate_rows(rows: Iterable[Dict[str, Any]]) -> List[str]:
    """Schema check for exported rows; returns a list of problems."""
    problems: List[str] = []
    for i, row in enumerate(rows):
        missing = [col for col in EXPORT_COLUMNS if col not in row]
        if missing:
            problems.append(f"row {i}: missing columns {missing}")
            continue
        if row["kind"] not in _KINDS:
            problems.append(f"row {i}: unknown kind {row['kind']!r}")
        for col in ("window_start_us", "value", "count", "max", "capacity"):
            if not isinstance(row[col], (int, float)):
                problems.append(f"row {i}: {col} not numeric")
        if isinstance(row["window_start_us"], (int, float)) \
                and row["window_start_us"] < 0:
            problems.append(f"row {i}: negative window start")
    return problems


_SPARK_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: List[float], lo: float = 0.0,
              hi: Optional[float] = None, width: int = 60) -> str:
    """Render a timeline as terminal block characters.

    Values are averaged into ``width`` columns and mapped onto eight
    block heights between ``lo`` and ``hi`` (default: the observed max).
    """
    if not values:
        return ""
    if len(values) > width:
        # Average runs of consecutive values into one column each.
        per = len(values) / width
        cols = []
        for i in range(width):
            chunk = values[int(i * per):max(int((i + 1) * per),
                                            int(i * per) + 1)]
            cols.append(sum(chunk) / len(chunk))
    else:
        cols = list(values)
    top = hi if hi is not None else max(cols)
    span = top - lo
    if span <= 0:
        return _SPARK_BLOCKS[1] * len(cols)
    out = []
    for v in cols:
        frac = (v - lo) / span
        idx = int(frac * 8)
        out.append(_SPARK_BLOCKS[min(max(idx, 0) + 1, 8)])
    return "".join(out)


class _NullInstrument:
    """Shared no-op instrument returned by the disabled registry."""

    __slots__ = ()

    def add(self, now: float, amount: float = 1.0) -> None:
        pass

    def add_interval(self, start: float, end: float,
                     amount: Optional[float] = None) -> None:
        pass

    def set(self, now: float, value: float) -> None:
        pass

    def adjust(self, now: float, delta: float) -> None:
        pass

    def record(self, now: float, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class NullTelemetry:
    """Disabled registry: ``enabled`` is False and every accessor returns
    the shared no-op instrument.  Instrumentation sites guard on
    ``enabled``, so this exists only as a safe default."""

    __slots__ = ()

    enabled = False
    window_us = DEFAULT_WINDOW_US

    def counter(self, name, host=None, capacity=0.0):
        return NULL_INSTRUMENT

    def gauge(self, name, host=None, capacity=0.0):
        return NULL_INSTRUMENT

    def histogram(self, name, host=None, capacity=0.0):
        return NULL_INSTRUMENT

    def digest(self, name, host=None, capacity=0.0):
        return NULL_INSTRUMENT

    def instruments(self):
        return []

    def find(self, name, host=None):
        return None

    def hosts(self, name):
        return []

    def finalize(self, now: float) -> None:
        pass

    def export_rows(self, now=None):
        return []

    def export_payload(self, now=None, extra=None):
        payload = {"window_us": self.window_us, "rows": []}
        if extra:
            payload.update(extra)
        return payload


NULL_TELEMETRY = NullTelemetry()
