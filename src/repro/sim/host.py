"""Simulated servers: CPU cores and fsync-charged disks.

Each metadata server in the paper's Table 2 deployment becomes a
:class:`Host` with a finite core count.  Service logic charges CPU through
:meth:`Host.work`, which occupies one core for the given number of simulated
microseconds — this is what makes a single IndexNode saturate (Figure 19b)
and what makes LocoFS's central directory server the bottleneck the paper
describes.

The :class:`CostModel` gathers every constant in one place so experiments
(and tests) can build deliberately skewed models.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Tuple

from repro.errors import ServiceUnavailableError
from repro.sim.core import Simulator, Timeout
from repro.sim.resources import Resource


@dataclasses.dataclass
class CostModel:
    """All simulated costs, in microseconds.

    The defaults are loosely calibrated to a 25 Gbps datacenter network and
    NVMe-backed servers, matching the ratios (not the absolutes) that drive
    the paper's results: an RPC round trip is ~2 orders of magnitude more
    expensive than a local hash probe, and an fsync is comparable to an RTT.
    """

    #: One-way network latency (RTT = 2x).
    net_one_way_us: float = 50.0
    #: Read one row from a TafDB shard (request handling + B-tree probe).
    db_row_read_us: float = 25.0
    #: Write one row (index update + WAL append, group-committed).
    db_row_write_us: float = 50.0
    #: Fixed per-transaction bookkeeping on a shard.
    db_txn_overhead_us: float = 20.0
    #: Effective durable-commit cost per TafDB commit (group-committed WAL).
    db_commit_sync_us: float = 40.0
    #: One level of IndexTable probing on the IndexNode.
    index_probe_us: float = 8.0
    #: One TopDirPathCache hit (single hash probe).
    cache_hit_us: float = 2.0
    #: Fixed request handling (parse/dispatch/marshal) per IndexNode RPC —
    #: the dominant CPU term that makes a single IndexNode saturate (§7
    #: measures ~500K ops/s/node, i.e. ~100us of CPU per op on 64 cores).
    index_rpc_overhead_us: float = 30.0
    #: Durable fsync of a Raft log segment.
    fsync_us: float = 120.0
    #: Applying one committed Raft entry to the state machine.
    raft_apply_us: float = 1.0
    #: Raft replication message handling (append-entries processing).
    raft_msg_us: float = 2.0
    #: Proxy request parsing/marshalling per client request.
    proxy_overhead_us: float = 2.0
    #: Per-level permission intersection.
    permission_check_us: float = 0.3
    #: Base/ceiling for exponential backoff after a transaction abort.
    backoff_base_us: float = 200.0
    backoff_max_us: float = 20000.0
    #: Data-service access for one small object (§3: single RPC + tens of us
    #: of SSD device time).
    data_io_small_us: float = 80.0

    def copy(self, **overrides) -> "CostModel":
        return dataclasses.replace(self, **overrides)


#: What-if override components -> the CostModel fields they scale.  A
#: component names one mechanically-improvable piece of the deployment
#: (faster NVMe under the Raft log, kernel-bypass networking, a leaner
#: request parser...), which usually covers several cost constants at once.
COMPONENT_FIELDS = {
    "proxy.cpu": ("proxy_overhead_us",),
    "index.cpu": ("index_probe_us", "index_rpc_overhead_us",
                  "cache_hit_us", "permission_check_us"),
    "raft.cpu": ("raft_apply_us", "raft_msg_us"),
    "raft.fsync": ("fsync_us",),
    "tafdb.cpu": ("db_row_read_us", "db_row_write_us",
                  "db_txn_overhead_us"),
    "tafdb.fsync": ("db_commit_sync_us",),
    "net.rtt": ("net_one_way_us",),
    "data.io": ("data_io_small_us",),
}


@dataclasses.dataclass(frozen=True)
class CostOverrides:
    """A declarative "virtual speedup": per-component cost scale factors.

    ``speedups`` maps a :data:`COMPONENT_FIELDS` component to a factor
    ``f``; applying the overrides divides each of the component's cost
    constants by ``f`` (``f=2.0`` halves the cost, ``f=0.5`` doubles it).
    The scaled :class:`CostModel` then threads through the whole
    deployment — hosts, network, Raft group, TafDB servers — exactly like
    a hand-edited cost model would, so a what-if rerun measures the real
    (queueing included) effect of the hypothesised change.
    """

    speedups: Tuple[Tuple[str, float], ...] = ()

    @classmethod
    def of(cls, **speedups: float) -> "CostOverrides":
        return cls.parse(speedups)

    @classmethod
    def parse(cls, speedups: Dict[str, float]) -> "CostOverrides":
        """Validate a {component: factor} mapping into overrides."""
        items = []
        for component, factor in sorted(speedups.items()):
            if component not in COMPONENT_FIELDS:
                known = ", ".join(sorted(COMPONENT_FIELDS))
                raise ValueError(f"unknown override component "
                                 f"{component!r}; known: {known}")
            factor = float(factor)
            if factor <= 0.0:
                raise ValueError(f"{component}: speedup factor must be "
                                 f"positive, got {factor}")
            items.append((component, factor))
        return cls(tuple(items))

    def as_dict(self) -> Dict[str, float]:
        return dict(self.speedups)

    def __bool__(self) -> bool:
        return bool(self.speedups)

    def apply(self, costs: "CostModel") -> "CostModel":
        """Return a copy of ``costs`` with every override applied."""
        scaled = {}
        for component, factor in self.speedups:
            for field in COMPONENT_FIELDS[component]:
                base = scaled.get(field, getattr(costs, field))
                scaled[field] = base / factor
        return costs.copy(**scaled) if scaled else costs


def parse_speedup_args(args: "Iterable[str]") -> CostOverrides:
    """Parse CLI ``component=FACTORx`` fragments into overrides.

    Accepts ``raft.fsync=2x``, ``net.rtt=2``, ``tafdb.cpu=1.5x``; the
    trailing ``x`` is optional.  Repeated components multiply.
    """
    speedups: Dict[str, float] = {}
    for arg in args:
        component, sep, factor_text = arg.partition("=")
        if not sep or not component or not factor_text:
            raise ValueError(f"bad speedup {arg!r}; expected "
                             "component=FACTOR[x], e.g. raft.fsync=2x")
        factor_text = factor_text.rstrip("xX")
        try:
            factor = float(factor_text)
        except ValueError:
            raise ValueError(f"bad speedup factor in {arg!r}") from None
        speedups[component] = speedups.get(component, 1.0) * factor
    return CostOverrides.parse(speedups)


class Host:
    """A simulated server with ``cores`` CPU cores and one durable disk."""

    def __init__(self, sim: Simulator, name: str, cores: int = 32,
                 fsync_us: float = 120.0):
        self.sim = sim
        self.name = name
        # Scheduler lane for the lane-sharded kernel (0 in single-loop
        # modes): host-local events — CPU, fsync, grants, timers — batch on
        # this lane; only network flights cross lanes.
        self.lane = sim.host_lane(name)
        self.cores = cores
        self.cpu = Resource(sim, cores, label="cpu", host=name)
        self.disk = Resource(sim, 1, label="disk", host=name)
        self.fsync_us = fsync_us
        self.fsync_count = 0
        self.cpu_busy_us = 0.0
        self.crashed = False

    def __repr__(self):
        return f"<Host {self.name} cores={self.cores}>"

    def work(self, us: float):
        """Occupy one CPU core for ``us`` simulated microseconds.

        Raises :class:`ServiceUnavailableError` if the host has been crashed
        by failure injection.
        """
        if self.crashed:
            raise ServiceUnavailableError(self.name)
        cpu = self.cpu
        req = cpu.request()
        yield req
        tracer = self.sim.tracer
        if tracer.enabled:
            wait = self.sim._now - req._enqueue_time
            if wait > 0.0:
                tracer.charge("queue", wait, self.name, resource="cpu",
                              by=getattr(req, "_blame", None))
        try:
            yield Timeout(self.sim, us)
            self.cpu_busy_us += us
            if tracer.enabled:
                tracer.charge("cpu", us, self.name)
            telemetry = self.sim.telemetry
            if telemetry.enabled:
                now = self.sim._now
                telemetry.counter("host.cpu_busy_us", self.name,
                                  capacity=self.cores).add_interval(
                    now - us, now, us)
        finally:
            cpu.release(req)
        if self.crashed:
            raise ServiceUnavailableError(self.name)

    def fsync(self, amortized_over: int = 1):
        """Charge one durable flush, optionally amortised across a batch.

        Raft log batching submits many entries under a single fsync; the
        caller passes the batch size so per-entry accounting stays honest.
        """
        if self.crashed:
            raise ServiceUnavailableError(self.name)
        req = self.disk.request()
        yield req
        self._charge_disk_wait(req)
        try:
            yield self.sim.timeout(self.fsync_us)
            self.fsync_count += 1
            self._record_fsync(self.fsync_us)
        finally:
            self.disk.release(req)

    def _charge_disk_wait(self, req) -> None:
        tracer = self.sim.tracer
        if tracer.enabled:
            wait = self.sim._now - req._enqueue_time
            if wait > 0.0:
                tracer.charge("queue", wait, self.name, resource="disk",
                              by=getattr(req, "_blame", None))

    def _record_fsync(self, us: float) -> None:
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.charge("fsync", us, self.name)
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            now = self.sim._now
            telemetry.counter("host.fsync", self.name).add(now)
            telemetry.counter("host.disk_busy_us", self.name,
                              capacity=1.0).add_interval(now - us, now, us)

    def fsync_cost(self, us: float):
        """Charge a caller-specified durable-write cost on the disk.

        TafDB's group-committed WAL writes are cheaper than a full Raft log
        segment fsync, so callers pass their own duration here; plain
        :meth:`fsync` uses the host default.
        """
        if self.crashed:
            raise ServiceUnavailableError(self.name)
        req = self.disk.request()
        yield req
        self._charge_disk_wait(req)
        try:
            yield self.sim.timeout(us)
            self.fsync_count += 1
            self._record_fsync(us)
        finally:
            self.disk.release(req)

    def crash(self) -> None:
        """Failure injection: subsequent work on this host fails."""
        self.crashed = True

    def recover(self) -> None:
        self.crashed = False

    def utilization(self, elapsed_us: float) -> float:
        """Fraction of total core-time spent busy over ``elapsed_us``."""
        if elapsed_us <= 0:
            return 0.0
        return self.cpu_busy_us / (elapsed_us * self.cores)
