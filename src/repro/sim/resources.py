"""Capacity resources and mailboxes for the DES kernel.

:class:`Resource` models a pool of identical servers' CPU cores, a disk's
single write head, or a latch: ``capacity`` concurrent holders, FIFO queueing.
:class:`Store` is an unbounded FIFO mailbox used for asynchronous message
passing (Raft RPCs, background compaction queues).
"""

from __future__ import annotations

import collections
from typing import Any, Deque, List

from repro.sim.core import Event, SimulationError, Simulator


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource", "_enqueue_time")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        self._enqueue_time = resource.sim.now

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request (e.g. on interrupt)."""
        if not self.triggered:
            try:
                self.resource._waiting.remove(self)
            except ValueError:
                pass


class Resource:
    """FIFO capacity resource.

    Usage from a process::

        req = cpu.request()
        yield req
        try:
            yield sim.timeout(cost)
        finally:
            cpu.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Request] = collections.deque()
        # Observability: peak concurrent holders and total waits, used by the
        # bench harness to report CPU saturation.
        self.peak_in_use = 0
        self.total_grants = 0
        self.total_wait_time = 0.0
        self._grant_times = {}

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        req = Request(self)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        if not request.triggered:
            # Never granted: just withdraw it.
            request.cancel()
            return
        if request not in self._grant_times:
            raise SimulationError("release of a request that is not held")
        del self._grant_times[request]
        self._in_use -= 1
        while self._waiting and self._in_use < self.capacity:
            nxt = self._waiting.popleft()
            waited = self.sim.now - getattr(nxt, "_enqueue_time", self.sim.now)
            self.total_wait_time += waited
            self._grant(nxt)

    def _grant(self, req: Request) -> None:
        self._in_use += 1
        self.total_grants += 1
        self.peak_in_use = max(self.peak_in_use, self._in_use)
        self._grant_times[req] = self.sim.now
        req.succeed()


class Store:
    """Unbounded FIFO mailbox.

    ``put`` never blocks; ``get`` returns an event that triggers with the
    oldest item (immediately if one is queued).
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = collections.deque()
        self._getters: Deque[Event] = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def drain(self) -> List[Any]:
        """Take every queued item without waiting (used by batch consumers)."""
        items = list(self._items)
        self._items.clear()
        return items
