"""Capacity resources and mailboxes for the DES kernel.

:class:`Resource` models a pool of identical servers' CPU cores, a disk's
single write head, or a latch: ``capacity`` concurrent holders, FIFO queueing.
:class:`Store` is an unbounded FIFO mailbox used for asynchronous message
passing (Raft RPCs, background compaction queues).

Under the lane-sharded kernel (``MANTLE_SIM_LANES``) nothing here changes:
grants and mailbox wakeups are zero-delay pushes through ``sim._micro``,
which stays the one global FIFO deque in every mode — same-timestamp work
is lane-agnostic.  Only *delayed* events (the holder's ``Host.work`` /
``fsync`` timeouts) live on a lane heap, and those land on the owning
host's lane because the resume that schedules them runs as that host's
heap event.
"""

from __future__ import annotations

import collections
from heapq import heappush as _heappush
from typing import Any, Deque, List

# _PENDING is the kernel's internal "not yet triggered" sentinel; the flat
# constructors below mirror Event.__init__ without the call indirection.
from repro.sim.core import _PENDING, Event, SimulationError, Simulator


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    ``_blame`` is the occupant label ``(op, tenant)`` stamped by the
    contended grant path when tracing is on — who held the slot this
    request waited for.  Deliberately *not* initialised in ``__init__``
    (the uncontended fast path never touches it); readers use
    ``getattr(req, "_blame", None)``, and only under ``tracer.enabled``.
    """

    __slots__ = ("resource", "_enqueue_time", "_granted", "_blame")

    def __init__(self, resource: "Resource"):
        sim = resource.sim
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.resource = resource
        self._enqueue_time = sim._now
        self._granted = False

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request (e.g. on interrupt)."""
        if self._granted or self.triggered:
            return
        resource = self.resource
        try:
            resource._waiting.remove(self)
        except ValueError:
            return
        if resource.label is not None:
            resource._sample_queue()


class Resource:
    """FIFO capacity resource.

    Usage from a process::

        req = cpu.request()
        yield req
        try:
            yield sim.timeout(cost)
        finally:
            cpu.release(req)

    Grant/release bookkeeping is counters-only on the hot path: holding is a
    flag on the :class:`Request` itself rather than a per-grant dict entry.
    """

    def __init__(self, sim: Simulator, capacity: int,
                 label: str = None, host: str = None):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Request] = collections.deque()
        # Observability: peak concurrent holders and total waits, used by the
        # bench harness to report CPU saturation.
        self.peak_in_use = 0
        self.total_grants = 0
        self.total_wait_time = 0.0
        # Telemetry identity.  Labelled resources (a host's "cpu"/"disk")
        # report queue depth and queue waits to ``sim.telemetry`` on the
        # *contended* paths only; unlabelled resources and the uncontended
        # grant fast path pay nothing beyond a None check.
        self.label = label
        self.host = host

    def _sample_queue(self) -> None:
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            telemetry.gauge("resource.queued." + self.label, self.host,
                            capacity=self.capacity).set(
                self.sim._now, len(self._waiting))

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        req = Request(self)
        if self._in_use < self.capacity:
            # Uncontended fast path: grant inline (counters only, and the
            # trigger is enqueued directly — the request is fresh, so the
            # already-triggered guard in Event.succeed cannot fire).
            in_use = self._in_use + 1
            self._in_use = in_use
            self.total_grants += 1
            if in_use > self.peak_in_use:
                self.peak_in_use = in_use
            req._granted = True
            req._value = None
            sim = self.sim
            if sim._fast:
                sim._micro.append(req)
            else:
                sim._seq += 1
                _heappush(sim._queue, (sim._now, sim._seq, req))
        else:
            self._waiting.append(req)
            if self.label is not None:
                self._sample_queue()
        return req

    def release(self, request: Request) -> None:
        if not request._granted:
            if not request.triggered:
                # Never granted: just withdraw it.
                request.cancel()
                return
            raise SimulationError("release of a request that is not held")
        request._granted = False
        self._in_use -= 1
        if self._waiting and self._in_use < self.capacity:
            now = self.sim._now
            wait_hist = None
            if self.label is not None:
                telemetry = self.sim.telemetry
                if telemetry.enabled:
                    wait_hist = telemetry.histogram(
                        "resource.wait_us." + self.label, self.host)
            # Occupant tracking: the releaser *is* the departing occupant
            # (release runs in the holder's own process), so its op label
            # is who the granted waiters queued behind.  Pure bookkeeping,
            # tracer-gated — a disabled run pays one attribute load.
            tracer = self.sim.tracer
            blame = tracer.current_op_label() if tracer.enabled else None
            while self._waiting and self._in_use < self.capacity:
                nxt = self._waiting.popleft()
                wait = now - nxt._enqueue_time
                self.total_wait_time += wait
                if wait_hist is not None:
                    wait_hist.record(now, wait)
                if blame is not None:
                    nxt._blame = blame
                self._grant(nxt)
            if wait_hist is not None:
                self._sample_queue()

    def _grant(self, req: Request) -> None:
        in_use = self._in_use + 1
        self._in_use = in_use
        self.total_grants += 1
        if in_use > self.peak_in_use:
            self.peak_in_use = in_use
        req._granted = True
        req.succeed()


class Store:
    """Unbounded FIFO mailbox.

    ``put`` never blocks; ``get`` returns an event that triggers with the
    oldest item (immediately if one is queued).
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = collections.deque()
        self._getters: Deque[Event] = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        getters = self._getters
        while getters:
            getter = getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        sim = self.sim
        ev = Event(sim)
        if self._items:
            # Non-empty fast path: trigger inline (fresh event, _ok is
            # already True).
            ev._value = self._items.popleft()
            if sim._fast:
                sim._micro.append(ev)
            else:
                sim._seq += 1
                _heappush(sim._queue, (sim._now, sim._seq, ev))
        else:
            self._getters.append(ev)
        return ev

    def drain(self) -> List[Any]:
        """Take every queued item without waiting (used by batch consumers)."""
        items = list(self._items)
        self._items.clear()
        return items
