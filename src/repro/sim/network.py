"""RTT-charged request/response RPC and the server dispatch base class.

An RPC charges one-way latency each direction; the handler body runs inline
in the calling process (request/response semantics) but charges the *target
host's* CPU via ``host.work``, so server-side queueing delays are modelled
faithfully.  Asynchronous messaging (Raft) uses :class:`repro.sim.resources.Store`
mailboxes instead.
"""

from __future__ import annotations

import random
from typing import Any, Optional

from repro.errors import ServiceUnavailableError
from repro.sim.core import Simulator, Timeout
from repro.sim.host import Host
from repro.sim.stats import OpContext


class Network:
    """Shared cluster fabric with a fixed one-way latency (optional jitter)."""

    def __init__(self, sim: Simulator, one_way_us: float = 50.0,
                 jitter_frac: float = 0.0, seed: int = 7):
        self.sim = sim
        self.one_way_us = one_way_us
        self.jitter_frac = jitter_frac
        self._rng = random.Random(seed)
        self.rpc_count = 0
        self.message_count = 0

    def _sample_one_way(self) -> float:
        if self.jitter_frac <= 0:
            return self.one_way_us
        spread = self.one_way_us * self.jitter_frac
        return max(1.0, self.one_way_us + self._rng.uniform(-spread, spread))

    def transit(self, lane: int = None):
        """One-way message flight.

        ``lane`` lands the arrival on the given scheduler lane (the
        destination host's, under the lane-sharded kernel).  The flight is
        the only point where an event crosses hosts, and its latency — at
        least 1us even under jitter — is the lane kernel's lookahead: a
        lane can safely batch that far ahead of its peers.
        """
        self.message_count += 1
        if self.jitter_frac <= 0:
            # Jitter-free fast path: fixed latency, no RNG draw.
            delay = self.one_way_us
        else:
            delay = self._sample_one_way()
        sim = self.sim
        if lane is not None and sim._lane_mode:
            yield sim.timeout_into(lane, delay)
        else:
            yield Timeout(sim, delay)

    def rpc(self, server: "Server", method: str, *args,
            ctx: Optional[OpContext] = None, **kwargs):
        """Request/response round trip to ``server``.

        Counts one RPC round on the network and on ``ctx`` when provided —
        the counter behind the Table 1 RTT comparison.  Under an enabled
        tracer each round trip opens an ``rpc``-category span (parented to
        the operation's root span when ``ctx`` carries one) covering both
        flights, and the handler body nests inside it.
        """
        self.rpc_count += 1
        if ctx is not None:
            ctx.rpcs += 1
        # Lane handoff: the request flight lands on the server's lane (the
        # handler then batches with the server host's CPU/disk events) and
        # the response flight returns to the caller's.
        if self.sim._lane_mode:
            origin_lane = self.sim._current_lane
            target_lane = server.host.lane
        else:
            origin_lane = target_lane = None
        tracer = self.sim.tracer
        if tracer.enabled:
            span = tracer.begin(
                "rpc:" + method, self.sim.now, category="rpc",
                parent=ctx.trace if ctx is not None else None,
                host=server.host.name)
        else:
            span = None
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            started_us = self.sim._now
            telemetry.counter("rpc.count", server.host.name).add(started_us)
            telemetry.gauge("rpc.in_flight").adjust(started_us, 1.0)
        else:
            started_us = None
        if tracer.enabled:
            sent_us = self.sim._now
            yield from self.transit(target_lane)
            tracer.charge("wire", self.sim._now - sent_us,
                          server.host.name)
        else:
            yield from self.transit(target_lane)
        ok = True
        try:
            result = yield from server.dispatch(method, args, kwargs, span)
        except BaseException:
            ok = False
            raise
        finally:
            # The response (or error) still has to fly back.
            if tracer.enabled:
                sent_us = self.sim._now
                yield from self.transit(origin_lane)
                tracer.charge("wire", self.sim._now - sent_us,
                              server.host.name)
            else:
                yield from self.transit(origin_lane)
            if span is not None:
                tracer.end(span, self.sim.now, ok=ok)
            if started_us is not None and telemetry.enabled:
                now = self.sim._now
                telemetry.gauge("rpc.in_flight").adjust(now, -1.0)
                telemetry.histogram("rpc.latency_us",
                                    server.host.name).record(
                    now, now - started_us)
        return result


class Server:
    """Base class for services addressed by RPC.

    Subclasses implement handler generators named ``rpc_<method>``.  Handlers
    charge CPU on ``self.host`` explicitly — through ``self.runtime`` — at
    the points where real work happens.

    The runtime is resolved from the host's ``sim`` object: a simulated
    :class:`~repro.sim.host.Host` answers with the kernel-backed
    :class:`~repro.runtime.base.SimRuntime`, while the live facade behind
    ``mantle-serve`` hands back the process's ``AsyncioRuntime`` — the same
    handler generators serve both worlds (see ``docs/runtime.md``).
    """

    def __init__(self, host: Host):
        self.host = host
        self.runtime = host.sim.runtime

    @property
    def sim(self) -> Simulator:
        return self.host.sim

    def dispatch(self, method: str, args: tuple, kwargs: dict, span=None):
        if self.host.crashed:
            raise ServiceUnavailableError(self.host.name)
        handler = getattr(self, "rpc_" + method, None)
        if handler is None:
            raise AttributeError(f"{type(self).__name__} has no RPC {method!r}")
        tracer = self.sim.tracer
        if tracer.enabled:
            hspan = tracer.begin("rpc_" + method, self.sim.now,
                                 category="handler", parent=span,
                                 host=self.host.name)
            ok = True
            try:
                result = yield from handler(*args, **kwargs)
            except BaseException:
                ok = False
                raise
            finally:
                tracer.end(hspan, self.sim.now, ok=ok)
        else:
            result = yield from handler(*args, **kwargs)
        return result


class LoadBalancer:
    """Round-robin picker over a set of peer servers (the stateless proxy
    fleet, or DB shard replicas)."""

    def __init__(self, servers):
        self._servers = list(servers)
        if not self._servers:
            raise ValueError("load balancer needs at least one server")
        self._next = 0

    def pick(self) -> Any:
        server = self._servers[self._next % len(self._servers)]
        self._next += 1
        return server

    def all(self):
        return list(self._servers)
