"""Reproduction of Mantle (SOSP 2025).

Mantle is a hierarchical metadata service for cloud object storage services
(COSSs).  This package implements the full system described in the paper —
the sharded TafDB metadata database, the Raft-replicated per-namespace
IndexNode with its TopDirPathCache and Invalidator, the proxy orchestration
layer — together with the three baselines the paper compares against
(Tectonic, InfiniFS and LocoFS), all running over a from-scratch
discrete-event cluster simulator.

Quickstart::

    from repro import MantleClient, MantleConfig

    with MantleClient(MantleConfig.small()) as client:
        client.mkdir("/datasets/audio/raw", parents=True)
        client.create("/datasets/audio/raw/seg-000.bin")
        print(client.objstat("/datasets/audio/raw/seg-000.bin"))

Operations dispatch through the typed registry in :mod:`repro.ops`; mutating
calls return :class:`~repro.types.OpResult` and span tracing
(:mod:`repro.sim.trace`, ``MantleConfig(tracing=True)`` or ``MANTLE_TRACE=1``)
records a hierarchical trace of everything the cluster did.

See ``DESIGN.md`` for the system inventory, ``EXPERIMENTS.md`` for the
paper-versus-measured record of every reproduced table and figure, and
``docs/observability.md`` for the tracing layer.
"""

from repro.core.api import BatchResult, MantleClient
from repro.core.config import MantleConfig
from repro.errors import (
    AlreadyExistsError,
    MetadataError,
    NoSuchPathError,
    NotADirectoryError,
    NotEmptyError,
    PermissionDeniedError,
    RenameLoopError,
    TransactionAbort,
)
from repro.ops import OP_NAMES, Op, make_op
from repro.types import OpResult, StatResult

__version__ = "1.1.0"

__all__ = [
    "MantleClient",
    "MantleConfig",
    "BatchResult",
    "Op",
    "OP_NAMES",
    "make_op",
    "OpResult",
    "StatResult",
    "MetadataError",
    "NoSuchPathError",
    "AlreadyExistsError",
    "NotADirectoryError",
    "NotEmptyError",
    "PermissionDeniedError",
    "RenameLoopError",
    "TransactionAbort",
    "__version__",
]
