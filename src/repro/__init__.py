"""Reproduction of Mantle (SOSP 2025).

Mantle is a hierarchical metadata service for cloud object storage services
(COSSs).  This package implements the full system described in the paper —
the sharded TafDB metadata database, the Raft-replicated per-namespace
IndexNode with its TopDirPathCache and Invalidator, the proxy orchestration
layer — together with the three baselines the paper compares against
(Tectonic, InfiniFS and LocoFS), all running over a from-scratch
discrete-event cluster simulator.

Quickstart::

    from repro import MantleClient

    client = MantleClient()
    client.mkdir("/datasets/audio/raw")
    client.create("/datasets/audio/raw/seg-000.bin")
    print(client.objstat("/datasets/audio/raw/seg-000.bin"))

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every reproduced table and figure.
"""

from repro.core.api import MantleClient
from repro.core.config import MantleConfig
from repro.errors import (
    AlreadyExistsError,
    MetadataError,
    NoSuchPathError,
    NotADirectoryError,
    NotEmptyError,
    PermissionDeniedError,
    RenameLoopError,
    TransactionAbort,
)

__version__ = "1.0.0"

__all__ = [
    "MantleClient",
    "MantleConfig",
    "MetadataError",
    "NoSuchPathError",
    "AlreadyExistsError",
    "NotADirectoryError",
    "NotEmptyError",
    "PermissionDeniedError",
    "RenameLoopError",
    "TransactionAbort",
    "__version__",
]
