"""Interactive Spark analytics workload (§3.2, §6.2: 'Analytics').

The production pattern: each ad-hoc query spawns hundreds of subtasks; each
subtask writes results into a private temporary directory and then
*atomically renames* it into a single shared output directory during the
commit phase.  All directory modifications therefore target the same parent
attribute — the contention that collapses DBtable-based services and that
Mantle's delta records absorb.

One simulated client = one subtask:

1. ``mkdir``   <staging>/task<cid>           (shared staging parent)
2. ``create``  result part files inside it   (private, no conflicts)
3. ``dirstat`` the task directory            (commit-protocol check)
4. ``dirrename`` <staging>/task<cid> -> <output>/task<cid>
                                            (shared output parent)
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.workloads.namespace import ensure_chain


class SparkAnalyticsWorkload:
    """Ad-hoc query commit phase: temp-dir rename into a shared output."""

    def __init__(self, num_clients: int = 16, parts_per_task: int = 4,
                 rounds: int = 3, depth: int = 8, root: str = "/warehouse"):
        if rounds < 1 or parts_per_task < 0:
            raise ValueError("rounds >= 1 and parts_per_task >= 0 required")
        self.num_clients = num_clients
        self.parts_per_task = parts_per_task
        self.rounds = rounds
        self.depth = depth
        self.root = root
        self.staging = ""
        self.output = ""

    def setup(self, system) -> None:
        base = ensure_chain(system, f"{self.root}/query",
                            max(1, self.depth - 3), prefix="q")
        self.staging = f"{base}/_staging"
        self.output = f"{base}/output"
        system.bulk_mkdir(self.staging)
        system.bulk_mkdir(self.output)

    def client_ops(self, cid: int) -> Iterator[Tuple[str, tuple]]:
        if not self.staging:
            raise RuntimeError("setup() must run before client_ops()")
        for round_no in range(self.rounds):
            task_dir = f"{self.staging}/task{cid}_{round_no}"
            yield ("mkdir", (task_dir,))
            for part in range(self.parts_per_task):
                yield ("create", (f"{task_dir}/part-{part:05d}",))
            yield ("dirstat", (task_dir,))
            yield ("dirrename",
                   (task_dir, f"{self.output}/task{cid}_{round_no}"))

    def describe(self) -> str:
        return (f"spark-analytics clients={self.num_clients} "
                f"rounds={self.rounds} parts={self.parts_per_task}")

    @property
    def ops_per_client(self) -> int:
        return self.rounds * (3 + self.parts_per_task)
