"""Operation trace recording and replay.

Production studies (§3) start from traces; this module lets any workload be
captured to a portable JSONL trace and replayed later — against a different
system, a different configuration, or a scaled cluster — with the same
per-client ordering.

Format: one JSON object per line, ``{"client": int, "op": str,
"args": [...]}``.  Replay preserves per-client order; cross-client
interleaving is up to the simulator (as in any real system).
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, TextIO, Tuple

from repro.baselines.base import OPS


class TraceRecorder:
    """Wraps a workload, recording every (client, op, args) it emits."""

    def __init__(self, workload):
        self.workload = workload
        self.num_clients = workload.num_clients
        self.records: List[Tuple[int, str, tuple]] = []

    def setup(self, system) -> None:
        self.workload.setup(system)

    def client_ops(self, cid: int) -> Iterator[Tuple[str, tuple]]:
        for op, args in self.workload.client_ops(cid):
            self.records.append((cid, op, args))
            yield (op, args)

    def dump(self, handle: TextIO) -> int:
        """Write the captured trace as JSONL; returns the line count."""
        count = 0
        for cid, op, args in self.records:
            handle.write(json.dumps(
                {"client": cid, "op": op, "args": list(args)}) + "\n")
            count += 1
        return count


class TraceWorkload:
    """Replays a JSONL trace as a workload."""

    def __init__(self, lines: List[str]):
        self._per_client: Dict[int, List[Tuple[str, tuple]]] = {}
        for line_no, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                cid = int(record["client"])
                op = record["op"]
                args = tuple(record["args"])
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(f"bad trace line {line_no}: {exc}") from exc
            if op not in OPS:
                raise ValueError(f"bad trace line {line_no}: unknown op {op!r}")
            self._per_client.setdefault(cid, []).append((op, args))
        if not self._per_client:
            raise ValueError("empty trace")
        self.num_clients = max(self._per_client) + 1

    @classmethod
    def load(cls, handle: TextIO) -> "TraceWorkload":
        return cls(handle.readlines())

    def setup(self, system) -> None:
        """Replay assumes the namespace is pre-populated by the caller (the
        trace contains only operations, like a production audit log)."""

    def client_ops(self, cid: int) -> Iterator[Tuple[str, tuple]]:
        yield from self._per_client.get(cid, [])

    @property
    def total_ops(self) -> int:
        return sum(len(ops) for ops in self._per_client.values())

    def describe(self) -> str:
        return (f"trace clients={len(self._per_client)} "
                f"ops={self.total_ops}")
