"""Operation trace recording and replay.

Production studies (§3) start from traces; this module lets any workload be
captured to a portable JSONL trace and replayed later — against a different
system, a different configuration, or a scaled cluster — with the same
per-client ordering.

Format: one JSON object per line, ``{"client": int, "op": str,
"args": [...]}``.  Replay preserves per-client order; cross-client
interleaving is up to the simulator (as in any real system).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, TextIO, Tuple

from repro.baselines.base import OPS


class TraceRecorder:
    """Wraps a workload, recording every (client, op, args) it emits."""

    def __init__(self, workload):
        self.workload = workload
        self.num_clients = workload.num_clients
        self.records: List[Tuple[int, str, tuple]] = []

    def setup(self, system) -> None:
        self.workload.setup(system)

    def client_ops(self, cid: int) -> Iterator[Tuple[str, tuple]]:
        for op, args in self.workload.client_ops(cid):
            self.records.append((cid, op, args))
            yield (op, args)

    def dump(self, handle: TextIO) -> int:
        """Write the captured trace as JSONL; returns the line count."""
        count = 0
        for cid, op, args in self.records:
            handle.write(json.dumps(
                {"client": cid, "op": op, "args": list(args)}) + "\n")
            count += 1
        return count


class TraceWorkload:
    """Replays a JSONL trace as a workload."""

    def __init__(self, lines: List[str]):
        self._per_client: Dict[int, List[Tuple[str, tuple]]] = {}
        for line_no, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                cid = int(record["client"])
                op = record["op"]
                args = tuple(record["args"])
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(f"bad trace line {line_no}: {exc}") from exc
            if op not in OPS:
                raise ValueError(f"bad trace line {line_no}: unknown op {op!r}")
            self._per_client.setdefault(cid, []).append((op, args))
        if not self._per_client:
            raise ValueError("empty trace")
        self.num_clients = max(self._per_client) + 1

    @classmethod
    def load(cls, handle: TextIO) -> "TraceWorkload":
        return cls(handle.readlines())

    def setup(self, system) -> None:
        """Replay assumes the namespace is pre-populated by the caller (the
        trace contains only operations, like a production audit log)."""

    def client_ops(self, cid: int) -> Iterator[Tuple[str, tuple]]:
        yield from self._per_client.get(cid, [])

    @property
    def total_ops(self) -> int:
        return sum(len(ops) for ops in self._per_client.values())

    def describe(self) -> str:
        return (f"trace clients={len(self._per_client)} "
                f"ops={self.total_ops}")


# -- typed replay (the sim-vs-live agreement harness) ------------------------
#
# A trace replayed *sequentially* through two deployments of the same system
# must agree op by op: same successes, same error types, same allocated ids.
# These helpers run one (op, args) list through anything with the
# MantleClient surface — the simulated client or the live TCP client — and
# normalise each outcome so the two transcripts are directly comparable
# (wallclock timestamps and latencies are excluded; they legitimately
# differ between a simulated clock and a real one).

def typed_ops(records: List[Tuple[str, tuple]]):
    """Convert ``(op_name, args)`` trace records into typed Ops."""
    from repro.ops import make_op

    return [make_op(name, *args) for name, args in records]


def normalize_outcome(value: Any) -> Any:
    """Reduce an op result to its time-independent observable content."""
    from repro.types import OpResult, StatResult

    if isinstance(value, OpResult):
        return {"inode_id": value.inode_id}
    if isinstance(value, StatResult):
        return {"path": value.path, "id": value.id,
                "kind": value.kind.value, "size": value.size,
                "link_count": value.link_count,
                "entry_count": value.entry_count,
                "permission": int(value.permission)}
    if isinstance(value, list):
        return [normalize_outcome(v) for v in value]
    if isinstance(value, int) and not isinstance(value, bool):
        return {"inode_id": value}
    return value


def replay_typed(client, ops) -> List[Dict[str, Any]]:
    """Run typed ops sequentially through a client; never raises.

    Returns one record per op: ``{"op", "ok", "result"}`` on success or
    ``{"op", "ok": False, "error": <exception class name>}`` on failure.
    """
    from repro.errors import MetadataError

    transcript: List[Dict[str, Any]] = []
    for op in ops:
        try:
            result = client.perform(op)
        except MetadataError as exc:
            transcript.append({"op": op.name, "ok": False,
                               "error": type(exc).__name__})
        else:
            transcript.append({"op": op.name, "ok": True,
                               "result": normalize_outcome(result)})
    return transcript


def snapshot_namespace(client, root: str = "/") -> Dict[str, Any]:
    """Walk the namespace through the client API into a comparable map.

    Keys are absolute paths; values are the normalised stat of each entry.
    Two deployments that processed the same trace must produce identical
    snapshots (ids included — both allocate sequentially from the root id).
    """
    from repro.errors import MetadataError

    snapshot: Dict[str, Any] = {}
    stack = [root]
    while stack:
        directory = stack.pop()
        for name in sorted(client.listdir(directory)):
            path = directory.rstrip("/") + "/" + name
            try:
                stat = client.stat(path)
            except MetadataError as exc:
                snapshot[path] = {"error": type(exc).__name__}
                continue
            snapshot[path] = normalize_outcome(stat)
            if stat.kind.value == "dir":
                stack.append(path)
    return snapshot
