"""mdtest-style per-operation workloads (§6.3).

One workload = one operation exercised by N clients at a fixed path depth
(the paper uses an average depth of 10).  Conflict modes:

* ``exclusive`` ('-e'): every client works in its own directory;
* ``shared`` ('-s'): every client targets the same shared directory —
  distinct entry names, but one contended parent attribute row (the Spark
  commit pattern of §3.2).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.workloads.namespace import ensure_chain

_MODES = ("exclusive", "shared")
_OPS = ("create", "delete", "objstat", "dirstat", "readdir",
        "mkdir", "rmdir", "dirrename")


class MdtestWorkload:
    """Generator of per-client operation streams for one mdtest op.

    Parameters mirror mdtest: ``depth`` is the path depth of the working
    directories, ``items`` the number of operations per client.
    """

    def __init__(self, op: str, mode: str = "exclusive", depth: int = 10,
                 items: int = 50, num_clients: int = 8, root: str = "/mdtest"):
        if op not in _OPS:
            raise ValueError(f"unsupported mdtest op {op!r}")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        if depth < 2:
            raise ValueError("depth must be >= 2")
        self.op = op
        self.mode = mode
        self.depth = depth
        self.items = items
        self.num_clients = num_clients
        self.root = root
        self._client_dirs: List[str] = []
        self._shared_dir = ""

    # -- setup ------------------------------------------------------------------

    def setup(self, system) -> None:
        """Pre-populate working directories (and victims for read/delete
        ops), mirroring the paper's mdtest pre-fill."""
        self._client_dirs = []
        # Working dirs sit at depth-1 so entries inside them are at `depth`.
        for cid in range(self.num_clients):
            base = ensure_chain(system, f"{self.root}/c{cid}",
                                self.depth - 3, prefix="l")
            self._client_dirs.append(base)
        self._shared_dir = ensure_chain(system, f"{self.root}/shared",
                                        self.depth - 3, prefix="l")
        for cid in range(self.num_clients):
            target = self._target_dir(cid)
            if self.op in ("objstat", "delete", "readdir"):
                for i in range(self.items):
                    system.bulk_create(self._obj_path(cid, i))
            if self.op == "dirstat":
                for i in range(self.items):
                    system.bulk_mkdir(f"{target}/st{cid}_{i}")
            if self.op == "rmdir":
                for i in range(self.items):
                    system.bulk_mkdir(f"{target}/rm{cid}_{i}")
            if self.op == "dirrename":
                src_base = f"{self._client_dirs[cid]}/src"
                system.bulk_mkdir(src_base)
                if self.mode == "exclusive":
                    system.bulk_mkdir(f"{self._client_dirs[cid]}/dst")
                for i in range(self.items):
                    system.bulk_mkdir(f"{src_base}/mv{cid}_{i}")

    def _target_dir(self, cid: int) -> str:
        return (self._shared_dir if self.mode == "shared"
                else self._client_dirs[cid])

    def _obj_path(self, cid: int, i: int) -> str:
        return f"{self._target_dir(cid)}/o{cid}_{i}.bin"

    # -- op streams ------------------------------------------------------------------

    def client_ops(self, cid: int) -> Iterator[Tuple[str, tuple]]:
        """Yield (op, args) pairs for client ``cid``."""
        if not self._client_dirs:
            raise RuntimeError("setup() must run before client_ops()")
        target = self._target_dir(cid)
        if self.op == "create":
            for i in range(self.items):
                yield ("create", (f"{target}/n{cid}_{i}.bin",))
        elif self.op == "delete":
            for i in range(self.items):
                yield ("delete", (self._obj_path(cid, i),))
        elif self.op == "objstat":
            for i in range(self.items):
                yield ("objstat", (self._obj_path(cid, i),))
        elif self.op == "dirstat":
            for i in range(self.items):
                yield ("dirstat", (f"{target}/st{cid}_{i}",))
        elif self.op == "readdir":
            for _ in range(self.items):
                yield ("readdir", (target,))
        elif self.op == "mkdir":
            for i in range(self.items):
                yield ("mkdir", (f"{target}/mk{cid}_{i}",))
        elif self.op == "rmdir":
            for i in range(self.items):
                yield ("rmdir", (f"{target}/rm{cid}_{i}",))
        elif self.op == "dirrename":
            src_base = f"{self._client_dirs[cid]}/src"
            dst_base = (self._shared_dir if self.mode == "shared"
                        else f"{self._client_dirs[cid]}/dst")
            for i in range(self.items):
                yield ("dirrename",
                       (f"{src_base}/mv{cid}_{i}", f"{dst_base}/mv{cid}_{i}"))
        else:  # pragma: no cover
            raise AssertionError(self.op)

    def describe(self) -> str:
        suffix = "-s" if self.mode == "shared" else "-e"
        return f"mdtest {self.op}{suffix} depth={self.depth} items={self.items}"


def lookup_only_workload(depth: int, items: int, num_clients: int,
                         root: str = "/lk"):
    """objstat at an exact path depth — the Figure 17/18 lookup probe."""
    return MdtestWorkload("objstat", mode="exclusive", depth=depth,
                          items=items, num_clients=num_clients, root=root)
