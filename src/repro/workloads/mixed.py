"""Mixed production-style workload: configurable op ratios + Zipf skew.

The paper's production namespaces serve mixed traffic — lookup-dominated
(peak lookup:mkdir ratios of 16-24:1 in Table 3) with access heavily
skewed toward a hot subset of deep paths (§3).  This workload generates
that mix: each client draws operations from a weighted distribution and
draws target objects from a Zipf-like popularity ranking.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Dict, Iterator, List, Tuple

from repro.workloads.namespace import NamespaceSpec, populate

#: Default production-like mix (Table 3's lookup-heavy profile).
DEFAULT_MIX: Dict[str, float] = {
    "objstat": 0.62,
    "readdir": 0.08,
    "dirstat": 0.06,
    "create": 0.14,
    "delete": 0.04,
    "mkdir": 0.05,
    "rmdir": 0.01,
}

_SUPPORTED = set(DEFAULT_MIX)


class ZipfPicker:
    """Draws items with a Zipf(s) popularity distribution."""

    def __init__(self, items: List, s: float = 1.1, seed: int = 0):
        if not items:
            raise ValueError("need at least one item")
        if s < 0:
            raise ValueError("zipf exponent must be >= 0")
        self._items = list(items)
        self._rng = random.Random(seed)
        weights = [1.0 / ((rank + 1) ** s) for rank in range(len(items))]
        self._cumulative = list(itertools.accumulate(weights))

    def pick(self):
        point = self._rng.uniform(0.0, self._cumulative[-1])
        return self._items[bisect.bisect_left(self._cumulative, point)]


class MixedWorkload:
    """Weighted-mix operation streams over a synthetic namespace."""

    def __init__(self, spec: NamespaceSpec, num_clients: int = 16,
                 ops_per_client: int = 50,
                 mix: Dict[str, float] = None,
                 zipf_s: float = 1.1, seed: int = 17):
        self.spec = spec
        self.num_clients = num_clients
        self.ops_per_client = ops_per_client
        self.mix = dict(mix) if mix else dict(DEFAULT_MIX)
        unknown = set(self.mix) - _SUPPORTED
        if unknown:
            raise ValueError(f"unsupported ops in mix: {sorted(unknown)}")
        total = sum(self.mix.values())
        if total <= 0:
            raise ValueError("mix weights must sum to a positive value")
        self.mix = {op: weight / total for op, weight in self.mix.items()}
        self.zipf_s = zipf_s
        self.seed = seed
        self._dirs: List[str] = []
        self._objects: List[str] = []

    def setup(self, system) -> None:
        populate(system, self.spec)
        self._dirs = [d for d in self.spec.directories if d.count("/") > 1]
        self._objects = list(self.spec.objects)
        if not self._objects or not self._dirs:
            raise ValueError("namespace too small for a mixed workload")

    def client_ops(self, cid: int) -> Iterator[Tuple[str, tuple]]:
        if not self._objects:
            raise RuntimeError("setup() must run before client_ops()")
        rng = random.Random((self.seed << 20) ^ cid)
        obj_picker = ZipfPicker(self._objects, self.zipf_s,
                                seed=(self.seed << 8) ^ cid)
        dir_picker = ZipfPicker(self._dirs, self.zipf_s,
                                seed=(self.seed << 8) ^ cid ^ 0x5A5A)
        ops = list(self.mix)
        weights = [self.mix[op] for op in ops]
        created: List[str] = []
        made_dirs: List[str] = []
        counter = 0
        for _ in range(self.ops_per_client):
            op = rng.choices(ops, weights)[0]
            counter += 1
            if op == "objstat":
                yield (op, (obj_picker.pick(),))
            elif op in ("readdir", "dirstat"):
                yield (op, (dir_picker.pick(),))
            elif op == "create":
                path = f"{dir_picker.pick()}/mx_{cid}_{counter}.bin"
                created.append(path)
                yield (op, (path,))
            elif op == "delete":
                if created:
                    yield (op, (created.pop(),))
                else:
                    yield ("objstat", (obj_picker.pick(),))
            elif op == "mkdir":
                path = f"{dir_picker.pick()}/mxd_{cid}_{counter}"
                made_dirs.append(path)
                yield (op, (path,))
            elif op == "rmdir":
                if made_dirs:
                    yield (op, (made_dirs.pop(),))
                else:
                    yield ("dirstat", (dir_picker.pick(),))

    def describe(self) -> str:
        mix = ", ".join(f"{op}:{w:.2f}" for op, w in sorted(self.mix.items()))
        return (f"mixed clients={self.num_clients} "
                f"ops={self.ops_per_client} zipf={self.zipf_s} [{mix}]")
