"""Production namespace profiles: Figure 3 (ns1–ns5) and Table 3 (C1–C5).

The paper publishes aggregate statistics of real Baidu namespaces; we carry
them as data and synthesise scaled namespaces matching each profile's
object ratio and depth distribution (DESIGN.md's substitution table:
production traces → synthetic equivalents preserving the published
statistics).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.workloads.namespace import NamespaceSpec, build_namespace


@dataclasses.dataclass(frozen=True)
class NamespaceProfile:
    """Published statistics of one production namespace."""

    name: str
    total_entries: float          # entries in the real namespace
    object_fraction: float        # objects / total entries
    mean_depth: float             # average access/path depth
    max_depth: int
    peak_lookup_kops: float = 0.0
    peak_mkdir_kops: float = 0.0
    small_object_fraction: float = 0.0

    def synthesize(self, scale_entries: int = 2000,
                   seed: Optional[int] = None) -> NamespaceSpec:
        """Build a scaled namespace matching this profile's shape.

        ``scale_entries`` is the approximate number of entries to generate;
        the object fraction and mean depth follow the profile.
        """
        objects_per_dir = max(
            1, round(self.object_fraction / (1.0 - self.object_fraction)))
        num_dirs = max(1, int(scale_entries / (1 + objects_per_dir)))
        return build_namespace(
            num_dirs=num_dirs,
            objects_per_dir=objects_per_dir,
            mean_depth=self.mean_depth,
            max_depth=min(self.max_depth, 30),  # laptop-scale clip
            seed=seed if seed is not None else hash(self.name) & 0xFFFF,
            root=f"/{self.name}")


#: Figure 3: five analysed namespaces.  All have > 2 B entries; objects are
#: 82.0–91.7 %; average access depths 11.6/11.5/10.8/10.6/11.9; max 95.
FIGURE3_PROFILES: Tuple[NamespaceProfile, ...] = (
    NamespaceProfile("ns1", 3.4e9, 0.917, 11.6, 95),
    NamespaceProfile("ns2", 2.9e9, 0.896, 11.5, 88),
    NamespaceProfile("ns3", 2.6e9, 0.860, 10.8, 71),
    NamespaceProfile("ns4", 4.1e9, 0.820, 10.6, 95),
    NamespaceProfile("ns5", 2.2e9, 0.884, 11.9, 64),
)

#: Table 3: Cluster-C namespaces with peak production throughput.
TABLE3_PROFILES: Tuple[NamespaceProfile, ...] = (
    NamespaceProfile("C1", 3.2e9 + 27e6, 3.2e9 / (3.2e9 + 27e6), 11.0, 60,
                     peak_lookup_kops=400, peak_mkdir_kops=24,
                     small_object_fraction=0.620),
    NamespaceProfile("C2", 2.1e9 + 194e6, 2.1e9 / (2.1e9 + 194e6), 11.0, 60,
                     peak_lookup_kops=300, peak_mkdir_kops=12,
                     small_object_fraction=0.292),
    NamespaceProfile("C3", 1.2e9 + 145e6, 1.2e9 / (1.2e9 + 145e6), 11.0, 60,
                     peak_lookup_kops=350, peak_mkdir_kops=18,
                     small_object_fraction=0.337),
    NamespaceProfile("C4", 0.8e9 + 88e6, 0.8e9 / (0.8e9 + 88e6), 11.0, 60,
                     peak_lookup_kops=175, peak_mkdir_kops=11,
                     small_object_fraction=0.288),
    NamespaceProfile("C5", 75e6 + 9e6, 75e6 / (75e6 + 9e6), 11.0, 60,
                     peak_lookup_kops=215, peak_mkdir_kops=9,
                     small_object_fraction=0.281),
)


def profile_by_name(name: str) -> NamespaceProfile:
    for profile in FIGURE3_PROFILES + TABLE3_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown namespace profile {name!r}")


def depth_cdf(spec: NamespaceSpec) -> Dict[int, float]:
    """Cumulative fraction of entries at or below each depth (Figure 3b)."""
    histogram = spec.depth_histogram()
    total = sum(histogram.values())
    out: Dict[int, float] = {}
    running = 0
    for depth in sorted(histogram):
        running += histogram[depth]
        out[depth] = running / total
    return out
