"""Synthetic namespace generation with the paper's §3 shape.

Real BOS namespaces are billion-scale with an *average* directory depth
around 11 and maxima up to 95.  The generator reproduces the shape at an
adjustable scale: directory chains whose depths follow a clipped lognormal
distribution, leaf directories holding most of the objects (10:1
object-to-directory ratio by default, §6.1).
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, List, Sequence


@dataclasses.dataclass
class NamespaceSpec:
    """A generated namespace: every directory and object path."""

    directories: List[str]
    objects: List[str]
    seed: int

    @property
    def total_entries(self) -> int:
        return len(self.directories) + len(self.objects)

    @property
    def object_ratio(self) -> float:
        if not self.total_entries:
            return 0.0
        return len(self.objects) / self.total_entries

    def depth_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for path in self.directories + self.objects:
            depth = path.count("/")
            histogram[depth] = histogram.get(depth, 0) + 1
        return dict(sorted(histogram.items()))

    def average_depth(self) -> float:
        if not self.total_entries:
            return 0.0
        total = sum(p.count("/") for p in self.directories + self.objects)
        return total / self.total_entries

    def max_depth(self) -> int:
        if not self.total_entries:
            return 0
        return max(p.count("/") for p in self.directories + self.objects)

    def leaf_directories(self) -> List[str]:
        """Directories that have objects directly under them."""
        parents = {p.rsplit("/", 1)[0] for p in self.objects}
        return sorted(parents)


def _sample_depth(rng: random.Random, mean_depth: float, max_depth: int) -> int:
    """Clipped lognormal depth sample centred on ``mean_depth``."""
    sigma = 0.35
    mu = math.log(mean_depth) - sigma * sigma / 2.0
    depth = int(round(rng.lognormvariate(mu, sigma)))
    return max(2, min(depth, max_depth))


def build_namespace(num_dirs: int = 200, objects_per_dir: int = 10,
                    mean_depth: float = 11.0, max_depth: int = 24,
                    branching: int = 4, seed: int = 1234,
                    root: str = "/ns") -> NamespaceSpec:
    """Generate a namespace with roughly ``num_dirs`` directories.

    The tree is grown as a set of trunks: each trunk is a chain of
    directories to a sampled depth, re-using existing prefixes (``branching``
    controls how many names exist per level, so trunks overlap and form a
    tree rather than disjoint chains).  Objects are placed in the deepest
    (leaf) directory of each trunk, matching the paper's observation that
    access is skewed toward deep levels.
    """
    if num_dirs < 1:
        raise ValueError("need at least one directory")
    rng = random.Random(seed)
    directories: List[str] = []
    seen = set()

    def add_dir(path: str) -> None:
        if path not in seen:
            seen.add(path)
            directories.append(path)

    add_dir(root)
    # Phase 1: grow the directory tree as overlapping trunks.
    leaves: List[str] = []
    trunk = 0
    while len(directories) < num_dirs:
        trunk += 1
        depth = _sample_depth(rng, mean_depth, max_depth)
        path = root
        for level in range(depth - 1):  # root already contributes one level
            name = f"d{rng.randrange(branching)}_{level}"
            path = f"{path}/{name}"
            add_dir(path)
            if len(directories) >= num_dirs:
                break
        leaves.append(path)
    if not leaves:
        leaves.append(root)  # num_dirs == 1: objects go in the root
    # Phase 2: distribute objects across trunk leaves to hit the target
    # object-to-directory ratio (objects live deep, §3).
    objects: List[str] = []
    total_objects = num_dirs * objects_per_dir
    for i in range(total_objects):
        leaf = leaves[i % len(leaves)]
        objects.append(f"{leaf}/obj_{i}.bin")
    return NamespaceSpec(directories=directories, objects=objects, seed=seed)


def populate(system, spec: NamespaceSpec) -> None:
    """Bulk-load a generated namespace into any MetadataSystem.

    Mirrors the paper's mdtest pre-fill ("we use mdtest to populate each
    system with data... prior to running experiments"), but without
    simulated cost so benchmark setup stays cheap.
    """
    for directory in sorted(spec.directories, key=lambda p: p.count("/")):
        if directory != "/":
            system.bulk_mkdir(directory)
    for obj in spec.objects:
        system.bulk_create(obj)


def deep_chain(root: str, depth: int, prefix: str = "l") -> List[str]:
    """A single directory chain ``root/l1/l2/.../l<depth>`` (all paths)."""
    paths = []
    path = root
    for level in range(1, depth + 1):
        path = f"{path}/{prefix}{level}"
        paths.append(path)
    return paths


def ensure_chain(system, root: str, depth: int, prefix: str = "l") -> str:
    """Bulk-create a chain below ``root``; returns the deepest directory."""
    if root != "/":
        parts = root.strip("/").split("/")
        for i in range(1, len(parts) + 1):
            system.bulk_mkdir("/" + "/".join(parts[:i]))
    deepest = root if root != "/" else ""
    for path in deep_chain(root if root != "/" else "", depth, prefix):
        system.bulk_mkdir(path)
        deepest = path
    return deepest if deepest else "/"


def client_paths(spec: NamespaceSpec, num_clients: int,
                 per_client: int, seed: int = 99) -> List[Sequence[str]]:
    """Deterministically assign object paths to clients (round-robin over a
    shuffled list), for read-heavy workloads."""
    rng = random.Random(seed)
    objects = list(spec.objects)
    rng.shuffle(objects)
    if not objects:
        raise ValueError("namespace has no objects")
    out = []
    for cid in range(num_clients):
        picks = [objects[(cid * per_client + i) % len(objects)]
                 for i in range(per_client)]
        out.append(picks)
    return out
