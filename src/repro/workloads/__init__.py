"""Workload generators for the paper's evaluation (§6).

* :mod:`~repro.workloads.namespace` — synthetic namespace trees with the
  depth distribution of §3 (average ≈ 11, skewed access to deep levels);
* :mod:`~repro.workloads.mdtest` — the mdtest-style per-operation loads of
  §6.3, including the conflicting ('-s') and non-conflicting ('-e') modes;
* :mod:`~repro.workloads.spark` — interactive Spark analytics: subtasks
  renaming temporary directories into one shared output directory (§3.2);
* :mod:`~repro.workloads.audio` — AI audio preprocessing: deep-path scans
  plus segment-object creation without shared-directory conflicts (§6.2);
* :mod:`~repro.workloads.profiles` — the production namespace profiles of
  Figure 3 (ns1–ns5) and Table 3 (C1–C5).
"""

from repro.workloads.namespace import NamespaceSpec, build_namespace, populate
from repro.workloads.mdtest import MdtestWorkload
from repro.workloads.mixed import MixedWorkload, ZipfPicker
from repro.workloads.spark import SparkAnalyticsWorkload
from repro.workloads.audio import AudioPreprocessWorkload
from repro.workloads.trace import TraceRecorder, TraceWorkload
from repro.workloads.profiles import (
    FIGURE3_PROFILES,
    TABLE3_PROFILES,
    NamespaceProfile,
)

__all__ = [
    "NamespaceSpec",
    "build_namespace",
    "populate",
    "MdtestWorkload",
    "MixedWorkload",
    "ZipfPicker",
    "SparkAnalyticsWorkload",
    "AudioPreprocessWorkload",
    "TraceRecorder",
    "TraceWorkload",
    "NamespaceProfile",
    "FIGURE3_PROFILES",
    "TABLE3_PROFILES",
]
