"""AI audio preprocessing workload (§6.2: 'Audio').

Long audio inputs are split into seconds-long segments; preprocessing tasks
scan existing input objects along deep paths and create output segment
objects in per-task directories.  All operations are conflict-free — the
workload isolates *path-resolution* performance, which is why it is the
figure of merit for TopDirPathCache and follower reads.

One simulated client = one preprocessing task:

1. ``readdir`` its input shard directory,
2. ``objstat`` each input segment (deep paths),
3. ``create`` the processed output segments in its own output directory.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.workloads.namespace import ensure_chain


class AudioPreprocessWorkload:
    """Deep-path scan + segment creation, no shared-directory conflicts."""

    def __init__(self, num_clients: int = 16, segments: int = 12,
                 depth: int = 11, root: str = "/audio"):
        if segments < 1:
            raise ValueError("segments >= 1 required")
        self.num_clients = num_clients
        self.segments = segments
        self.depth = depth
        self.root = root
        self._input_dirs = []
        self._output_dirs = []

    def setup(self, system) -> None:
        self._input_dirs = []
        self._output_dirs = []
        for cid in range(self.num_clients):
            input_dir = ensure_chain(system, f"{self.root}/in/shard{cid}",
                                     max(1, self.depth - 4), prefix="seg")
            for i in range(self.segments):
                system.bulk_create(f"{input_dir}/raw_{cid}_{i}.wav",
                                   size=256 * 1024)
            output_dir = ensure_chain(system, f"{self.root}/out/task{cid}",
                                      max(1, self.depth - 4), prefix="seg")
            self._input_dirs.append(input_dir)
            self._output_dirs.append(output_dir)

    def client_ops(self, cid: int) -> Iterator[Tuple[str, tuple]]:
        if not self._input_dirs:
            raise RuntimeError("setup() must run before client_ops()")
        input_dir = self._input_dirs[cid % len(self._input_dirs)]
        output_dir = self._output_dirs[cid % len(self._output_dirs)]
        yield ("readdir", (input_dir,))
        for i in range(self.segments):
            yield ("objstat", (f"{input_dir}/raw_{cid}_{i}.wav",))
        for i in range(self.segments):
            yield ("create", (f"{output_dir}/proc_{cid}_{i}.flac",))

    def describe(self) -> str:
        return (f"audio-preprocess clients={self.num_clients} "
                f"segments={self.segments} depth={self.depth}")

    @property
    def ops_per_client(self) -> int:
        return 1 + 2 * self.segments
