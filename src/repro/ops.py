"""Typed metadata operations — the registry behind ``perform()``.

Historically every operation travelled through the stringly-typed
``MetadataSystem.submit(op, *args)`` entry point.  The typed surface keeps
the same nine mdtest operations (§6.3) but represents each as a small frozen
dataclass, so call sites get named fields, ``isinstance`` dispatch and IDE
help instead of positional-tuple conventions::

    from repro.ops import Mkdir, Rename

    yield from system.perform(Mkdir("/a/b"), ctx=ctx)
    yield from system.perform(Rename("/a/b", "/c/b"), ctx=ctx)

``submit`` remains as a deprecation shim that builds the typed op via
:func:`make_op` and forwards to ``perform``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, ClassVar, Dict, Tuple, Type

from repro.types import Permission


@dataclasses.dataclass(frozen=True)
class Op:
    """Base class for one metadata operation request.

    ``name`` is the registry key (and the ``op_<name>`` handler suffix);
    :meth:`handler_args` yields the positional arguments the handler takes,
    in field-declaration order.
    """

    name: ClassVar[str] = ""

    def handler_args(self) -> Tuple[Any, ...]:
        return tuple(getattr(self, field.name)
                     for field in dataclasses.fields(self))

    def to_wire(self) -> Dict[str, Any]:
        """JSON-safe encoding for the live wire protocol.

        ``{"op": <registry name>, "args": {<field>: <value>, ...}}`` with
        :class:`~repro.types.Permission` masks flattened to ints.  The
        format is pinned by the golden-file test in
        ``tests/runtime/test_wire.py`` — changing it is a wire-protocol
        break, not a refactor.
        """
        args: Dict[str, Any] = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, Permission):
                value = int(value)
            args[field.name] = value
        return {"op": self.name, "args": args}

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "Op":
        """Rebuild the typed op :meth:`to_wire` encoded (inverse of it)."""
        op_type = OP_TYPES.get(payload.get("op", ""))
        if op_type is None:
            raise ValueError(f"unknown operation {payload.get('op')!r}")
        args = dict(payload.get("args", {}))
        for field in dataclasses.fields(op_type):
            if field.name in args and field.type == "Permission":
                args[field.name] = Permission(args[field.name])
        return op_type(**args)


#: Operation name -> dataclass, in the canonical mdtest order.
OP_TYPES: Dict[str, Type[Op]] = {}


def _register(cls: Type[Op]) -> Type[Op]:
    if not cls.name or cls.name in OP_TYPES:
        raise ValueError(f"bad or duplicate op registration: {cls!r}")
    OP_TYPES[cls.name] = cls
    return cls


@_register
@dataclasses.dataclass(frozen=True)
class Create(Op):
    """Create an object (PUT without a data body in this model)."""

    path: str
    name: ClassVar[str] = "create"


@_register
@dataclasses.dataclass(frozen=True)
class Delete(Op):
    """Delete an object."""

    path: str
    name: ClassVar[str] = "delete"


@_register
@dataclasses.dataclass(frozen=True)
class ObjStat(Op):
    """Stat an object; resolves the full path."""

    path: str
    name: ClassVar[str] = "objstat"


@_register
@dataclasses.dataclass(frozen=True)
class DirStat(Op):
    """Stat a directory, folding pending attribute deltas (§5.2.1)."""

    path: str
    name: ClassVar[str] = "dirstat"


@_register
@dataclasses.dataclass(frozen=True)
class ReadDir(Op):
    """List a directory's entries."""

    path: str
    name: ClassVar[str] = "readdir"


@_register
@dataclasses.dataclass(frozen=True)
class Mkdir(Op):
    """Create one directory (parent must already exist)."""

    path: str
    name: ClassVar[str] = "mkdir"


@_register
@dataclasses.dataclass(frozen=True)
class Rmdir(Op):
    """Remove an empty directory."""

    path: str
    name: ClassVar[str] = "rmdir"


@_register
@dataclasses.dataclass(frozen=True)
class Rename(Op):
    """Atomic cross-directory rename with loop detection (§5.2.2)."""

    src: str
    dst: str
    name: ClassVar[str] = "dirrename"


@_register
@dataclasses.dataclass(frozen=True)
class SetAttr(Op):
    """Update an entry's permission mask."""

    path: str
    permission: Permission = Permission.ALL
    name: ClassVar[str] = "setattr"


#: Canonical operation-name tuple (kept identical to the legacy
#: ``repro.baselines.base.OPS`` constant, which now aliases this).
OP_NAMES: Tuple[str, ...] = tuple(OP_TYPES)


def make_op(name: str, *args) -> Op:
    """Build the typed op for a legacy ``(name, *args)`` call.

    Raises ``ValueError`` for unknown operation names — the same contract
    the stringly ``submit`` entry point always had.
    """
    op_type = OP_TYPES.get(name)
    if op_type is None:
        raise ValueError(f"unknown operation {name!r}")
    return op_type(*args)
