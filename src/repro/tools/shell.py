"""``mantle-shell`` — an interactive shell over a simulated Mantle cluster.

A small exploration REPL for the namespace API::

    $ mantle-shell
    mantle:/> mkdir -p /datasets/audio
    mantle:/> put /datasets/audio/seg-000.wav
    mantle:/> cd /datasets
    mantle:/datasets> ls
    audio/
    mantle:/datasets> stat audio
    ...
    mantle:/datasets> stats
    ...

Every command drives the discrete-event simulation underneath; ``stats``
shows simulated-time latency percentiles collected so far.
"""

from __future__ import annotations

import shlex
import sys
from typing import Callable, Dict, List, Optional

from repro.core.api import MantleClient
from repro.errors import MetadataError
from repro.paths import normalize, parent_and_name
from repro.types import Permission


class ShellError(Exception):
    """User-facing command error (bad arguments, unknown command)."""


class MantleShell:
    """Stateful command interpreter over one MantleClient."""

    def __init__(self, client: Optional[MantleClient] = None):
        self.client = client or MantleClient()
        self.cwd = "/"
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "ls": self.cmd_ls,
            "mkdir": self.cmd_mkdir,
            "rmdir": self.cmd_rmdir,
            "put": self.cmd_put,
            "rm": self.cmd_rm,
            "stat": self.cmd_stat,
            "mv": self.cmd_mv,
            "cd": self.cmd_cd,
            "pwd": self.cmd_pwd,
            "chmod": self.cmd_chmod,
            "tree": self.cmd_tree,
            "stats": self.cmd_stats,
            "help": self.cmd_help,
        }

    # -- plumbing ----------------------------------------------------------

    def resolve(self, path: str) -> str:
        """Resolve a possibly-relative path against the shell's cwd."""
        if not path or path == ".":
            return self.cwd
        if path == "..":
            return parent_and_name(self.cwd)[0] if self.cwd != "/" else "/"
        if path.startswith("/"):
            return normalize(path)
        base = self.cwd.rstrip("/")
        return normalize(f"{base}/{path}")

    def execute(self, line: str) -> str:
        """Run one command line; returns the output text.

        Raises :class:`ShellError` for usage problems and lets
        :class:`MetadataError` bubble for namespace errors (the REPL prints
        both without exiting).
        """
        parts = shlex.split(line)
        if not parts:
            return ""
        command, args = parts[0], parts[1:]
        handler = self._commands.get(command)
        if handler is None:
            raise ShellError(f"unknown command {command!r} (try 'help')")
        return handler(args)

    # -- commands -------------------------------------------------------------

    def cmd_help(self, _args: List[str]) -> str:
        return "\n".join([
            "ls [path]             list a directory",
            "mkdir [-p] <path>     create a directory",
            "rmdir <path>          remove an empty directory",
            "put <path>            create an object",
            "rm <path>             delete an object",
            "stat <path>           show entry metadata",
            "mv <src> <dst>        rename (atomic, loop-checked)",
            "cd <path> / pwd       navigate",
            "chmod <rwx|r-x|...> <path>  set directory permissions",
            "tree [path]           recursive listing",
            "stats                 latency stats of this session",
        ])

    def cmd_ls(self, args: List[str]) -> str:
        path = self.resolve(args[0] if args else ".")
        names = self.client.listdir(path)
        decorated = []
        for name in names:
            child = path.rstrip("/") + "/" + name
            try:
                is_dir = self.client.dirstat(child).is_dir
            except MetadataError:
                is_dir = False
            decorated.append(name + ("/" if is_dir else ""))
        return "\n".join(decorated)

    def cmd_mkdir(self, args: List[str]) -> str:
        parents = "-p" in args
        targets = [a for a in args if a != "-p"]
        if not targets:
            raise ShellError("usage: mkdir [-p] <path>")
        for target in targets:
            self.client.mkdir(self.resolve(target), parents=parents)
        return ""

    def cmd_rmdir(self, args: List[str]) -> str:
        if not args:
            raise ShellError("usage: rmdir <path>")
        self.client.rmdir(self.resolve(args[0]))
        return ""

    def cmd_put(self, args: List[str]) -> str:
        if not args:
            raise ShellError("usage: put <path>")
        obj_id = self.client.create(self.resolve(args[0]))
        return f"created object id={obj_id}"

    def cmd_rm(self, args: List[str]) -> str:
        if not args:
            raise ShellError("usage: rm <path>")
        self.client.delete(self.resolve(args[0]))
        return ""

    def cmd_stat(self, args: List[str]) -> str:
        if not args:
            raise ShellError("usage: stat <path>")
        stat = self.client.stat(self.resolve(args[0]))
        kind = "directory" if stat.is_dir else "object"
        lines = [f"path:        {stat.path}",
                 f"kind:        {kind}",
                 f"id:          {stat.id}",
                 f"entries:     {stat.entry_count}",
                 f"permission:  {stat.permission!r}"]
        return "\n".join(lines)

    def cmd_mv(self, args: List[str]) -> str:
        if len(args) != 2:
            raise ShellError("usage: mv <src> <dst>")
        self.client.rename(self.resolve(args[0]), self.resolve(args[1]))
        return ""

    def cmd_cd(self, args: List[str]) -> str:
        target = self.resolve(args[0] if args else "/")
        if target != "/" and not self.client.dirstat(target).is_dir:
            raise ShellError(f"not a directory: {target}")
        self.cwd = target
        return ""

    def cmd_pwd(self, _args: List[str]) -> str:
        return self.cwd

    def cmd_chmod(self, args: List[str]) -> str:
        if len(args) != 2:
            raise ShellError("usage: chmod <rwx|r-x|...> <path>")
        mask = Permission.NONE
        spec = args[0]
        if len(spec) != 3 or any(c not in "rwx-" for c in spec):
            raise ShellError("permission spec must look like rwx / r-x / ---")
        if spec[0] == "r":
            mask |= Permission.READ
        if spec[1] == "w":
            mask |= Permission.WRITE
        if spec[2] == "x":
            mask |= Permission.EXECUTE
        self.client.setattr(self.resolve(args[1]), mask)
        return ""

    def cmd_tree(self, args: List[str]) -> str:
        root = self.resolve(args[0] if args else ".")
        lines = [root]
        for path in sorted(self.client.walk(root)):
            rel = path[len(root):].strip("/")
            indent = "  " * rel.count("/")
            lines.append(f"{indent}{rel.rsplit('/', 1)[-1]}")
        return "\n".join(lines)

    def cmd_stats(self, _args: List[str]) -> str:
        lines = [f"simulated time: {self.client.simulated_time_us:.0f} us"]
        for op, recorder in sorted(self.client.metrics.latency.items()):
            lines.append(f"{op:10s} n={recorder.count:4d} "
                         f"mean={recorder.mean:8.1f}us "
                         f"p99={recorder.p99:8.1f}us")
        cache = self.client.cache_stats()
        lines.append(f"pathcache  entries={cache['entries']} "
                     f"hit_rate={cache['hit_rate']:.2f}")
        return "\n".join(lines)

    # -- REPL -----------------------------------------------------------------

    def repl(self, stdin=None, stdout=None) -> None:  # pragma: no cover
        stdin = stdin or sys.stdin
        stdout = stdout or sys.stdout
        while True:
            stdout.write(f"mantle:{self.cwd}> ")
            stdout.flush()
            line = stdin.readline()
            if not line:
                break
            line = line.strip()
            if line in ("exit", "quit"):
                break
            try:
                output = self.execute(line)
            except (ShellError, MetadataError) as exc:
                output = f"error: {exc}"
            if output:
                stdout.write(output + "\n")
        self.client.close()


def main() -> int:  # pragma: no cover
    MantleShell().repl()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
