"""User-facing tools: the interactive namespace shell."""
