"""Tectonic-style DBtable metadata service (§2.3, baseline of §6.1).

The classic COSS architecture the paper starts from: a hierarchical
namespace as a sharded database table, level-by-level multi-RPC path
resolution, and — per the paper's re-implementation — *relaxed consistency*
for directory modifications: each row change is its own single-shard
transaction rather than one distributed transaction, and contended parent
attribute updates are optimistic read-modify-writes that abort and retry.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines.base import IdAllocator, MetadataSystem
from repro.baselines.common import StorageMixin
from repro.errors import (
    IsADirectoryError,
    NoSuchPathError,
    NotADirectoryError,
    NotEmptyError,
    RenameLoopError,
    TransactionAbort,
)
from repro.paths import is_prefix, normalize
from repro.sim.core import Simulator
from repro.sim.host import CostModel, Host
from repro.sim.network import Network
from repro.sim.stats import PHASE_EXECUTION, PHASE_LOOKUP, OpContext
from repro.tafdb.rows import Dirent, attr_key, dirent_key
from repro.tafdb.shard import WriteIntent
from repro.types import AttrMeta, EntryKind, Permission, make_stat


class TectonicSystem(StorageMixin, MetadataSystem):
    """DBtable-based baseline: Table 2 deploys it on 21 DB servers."""

    name = "tectonic"

    def __init__(self, sim: Optional[Simulator] = None,
                 network: Optional[Network] = None,
                 num_db_servers: int = 21, num_db_shards: int = 84,
                 db_cores: int = 32, num_proxies: int = 4,
                 proxy_cores: int = 32, costs: Optional[CostModel] = None):
        self.costs = costs or CostModel()
        sim = sim or Simulator()
        network = network or Network(sim, one_way_us=self.costs.net_one_way_us)
        super().__init__(sim, network)
        self.ids = IdAllocator()
        self._init_storage(num_db_servers, num_db_shards, db_cores, self.costs)
        self.proxies: List[Tuple[Host, object]] = []
        for i in range(num_proxies):
            host = Host(sim, f"{self.name}-proxy-{i}", cores=proxy_cores)
            self.proxies.append((host, self.tafdb.client()))
        self._proxy_rr = 0

    def _proxy(self):
        self._proxy_rr += 1
        return self.proxies[self._proxy_rr % len(self.proxies)]

    def shutdown(self) -> None:
        self.tafdb.stop_compactors()

    # -- lookup helper -----------------------------------------------------------

    def _lookup(self, db, path: str, upto_parent: bool, ctx: OpContext):
        ctx.begin(PHASE_LOOKUP, self.sim.now)
        result = yield from self.resolve_sequential(db, path, upto_parent, ctx)
        ctx.end(PHASE_LOOKUP, self.sim.now)
        return result

    def _read_dirent(self, db, pid: int, name: str, path: str,
                     ctx: OpContext):
        row = yield from db.read(dirent_key(pid, name), ctx=ctx)
        if row is None:
            raise NoSuchPathError(path, name)
        return row

    # -- object operations ----------------------------------------------------------

    def op_create(self, path: str, ctx: OpContext):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        pid, name, _perm = yield from self._lookup(db, path, True, ctx)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        obj_id = self.ids.next()
        now = self.sim.now
        dirent = Dirent(id=obj_id, kind=EntryKind.OBJECT,
                        attrs=AttrMeta(id=obj_id, kind=EntryKind.OBJECT,
                                       ctime=now, mtime=now))
        yield from self.insert_with_conflict_check(
            db, dirent_key(pid, name), dirent, path, ctx)
        yield from self.update_parent_attrs(db, pid, 0, 1, ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return obj_id

    def op_delete(self, path: str, ctx: OpContext):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        pid, name, _perm = yield from self._lookup(db, path, True, ctx)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        row = yield from self._read_dirent(db, pid, name, path, ctx)
        if row.value.is_dir:
            raise IsADirectoryError(path)
        try:
            yield from db.execute_txn([WriteIntent(
                dirent_key(pid, name), "delete",
                expect_version=row.version)], ctx=ctx)
        except TransactionAbort as exc:
            if exc.reason == "missing":
                raise NoSuchPathError(path) from exc
            raise
        yield from self.update_parent_attrs(db, pid, 0, -1, ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return row.value.id

    def op_objstat(self, path: str, ctx: OpContext):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        pid, name, _perm = yield from self._lookup(db, path, True, ctx)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        row = yield from self._read_dirent(db, pid, name, path, ctx)
        if row.value.is_dir:
            attrs = yield from db.read_dir_attrs(row.value.id, ctx=ctx)
        else:
            attrs = row.value.attrs
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return make_stat(normalize(path), attrs)

    # -- directory read operations ------------------------------------------------------

    def op_dirstat(self, path: str, ctx: OpContext):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        dir_id, _none, _perm = yield from self._lookup(db, path, False, ctx)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        attrs = yield from db.read_dir_attrs(dir_id, ctx=ctx)
        if attrs is None:
            raise NoSuchPathError(path)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return make_stat(normalize(path), attrs)

    def op_readdir(self, path: str, ctx: OpContext):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        dir_id, _none, _perm = yield from self._lookup(db, path, False, ctx)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        page = yield from db.scan_children(dir_id, ctx=ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return [name for name, _ in page]

    # -- directory modifications ---------------------------------------------------------

    def op_mkdir(self, path: str, ctx: OpContext,
                 permission: Permission = Permission.ALL):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        pid, name, _perm = yield from self._lookup(db, path, True, ctx)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        dir_id = self.ids.next()
        now = self.sim.now
        # Relaxed consistency: three separate single-shard transactions.
        yield from self.insert_with_conflict_check(
            db, dirent_key(pid, name),
            Dirent(id=dir_id, kind=EntryKind.DIRECTORY,
                   permission=permission),
            path, ctx)
        yield from db.execute_txn([WriteIntent(
            attr_key(dir_id), "insert",
            AttrMeta(id=dir_id, kind=EntryKind.DIRECTORY, ctime=now,
                     mtime=now, permission=permission))], ctx=ctx)
        yield from self.update_parent_attrs(db, pid, 1, 1, ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return dir_id

    def op_rmdir(self, path: str, ctx: OpContext):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        pid, name, _perm = yield from self._lookup(db, path, True, ctx)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        row = yield from self._read_dirent(db, pid, name, path, ctx)
        if not row.value.is_dir:
            raise NotADirectoryError(path, name)
        dir_id = row.value.id
        non_empty = yield from db.has_children(dir_id, ctx=ctx)
        if non_empty:
            raise NotEmptyError(path)
        yield from db.execute_txn([WriteIntent(
            dirent_key(pid, name), "delete",
            expect_version=row.version)], ctx=ctx)
        yield from db.execute_txn([WriteIntent(
            attr_key(dir_id), "delete")], ctx=ctx)
        yield from self.update_parent_attrs(db, pid, -1, -1, ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return dir_id

    def op_setattr(self, path: str, permission: Permission, ctx: OpContext):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        dir_id, _none, _perm = yield from self._lookup(db, path, False, ctx)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        attempt = 0
        while True:
            row = yield from db.read(attr_key(dir_id), ctx=ctx)
            if row is None:
                raise NoSuchPathError(path)
            attrs = row.value.copy()
            attrs.permission = permission
            attrs.mtime = self.sim.now
            try:
                yield from db.execute_txn([WriteIntent(
                    attr_key(dir_id), "update", attrs,
                    expect_version=row.version)], ctx=ctx)
                break
            except TransactionAbort:
                ctx.retries += 1
                attempt += 1
                yield self.sim.timeout(db.backoff_us(attempt))
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return make_stat(normalize(path), attrs)

    def op_dirrename(self, src: str, dst: str, ctx: OpContext):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        src_pid, src_name, _sp = yield from self._lookup(db, src, True, ctx)
        dst_pid, dst_name, _dp = yield from self._lookup(db, dst, True, ctx)

        # Relaxed consistency (§6.1: "for Tectonic, we relax the consistency
        # and avoid using distributed transactions"): no transactional loop
        # detection — only a cheap client-side prefix check on the two
        # resolved paths.  Figure 15 accordingly shows no loop-detection
        # segment for Tectonic.
        if is_prefix(normalize(src), normalize(dst)):
            raise RenameLoopError(src, dst)

        ctx.begin(PHASE_EXECUTION, self.sim.now)
        row = yield from self._read_dirent(db, src_pid, src_name, src, ctx)
        if not row.value.is_dir:
            raise NotADirectoryError(src, src_name)
        # Relaxed consistency: delete + insert as separate transactions.
        yield from db.execute_txn([WriteIntent(
            dirent_key(src_pid, src_name), "delete",
            expect_version=row.version)], ctx=ctx)
        yield from self.insert_with_conflict_check(
            db, dirent_key(dst_pid, dst_name), row.value, dst, ctx)
        if src_pid == dst_pid:
            yield from self.update_parent_attrs(db, src_pid, 0, 0, ctx)
        else:
            yield from self.update_parent_attrs(db, src_pid, -1, -1, ctx)
            yield from self.update_parent_attrs(db, dst_pid, 1, 1, ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return row.value.id
