"""InfiniFS-style metadata service (baseline of §6.1).

Reproduces the three InfiniFS mechanisms the paper engages with:

* **speculative parallel path resolution** — directory ids are predictable
  (a hash of the full path at creation time), so the proxy issues reads for
  *every* path level concurrently and validates the returned chain; renamed
  subtrees keep their old ids, so predictions under them miss and resolution
  falls back to level-by-level reads.  Every speculative sub-request costs
  proxy CPU, which is the thread-over-provisioning overhead that makes the
  technique counterproductive under high concurrency (§3.3).
* **CFS two-transaction directory updates** — mkdir/rmdir split into
  single-shard transactions plus an atomic parent-attribute increment that
  serialises instead of aborting.
* **a rename coordinator** — a dedicated server mirroring the directory
  tree for loop detection and rename locking; dirrename itself still runs a
  distributed transaction whose in-place parent updates abort under
  contention (the breakdown §3.3 describes).

The optional AM-Cache (access-metadata LRU in the proxy) is disabled by
default and enabled for the Figure 20 study.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import IdAllocator, MetadataSystem
from repro.baselines.common import StorageMixin
from repro.errors import (
    IsADirectoryError,
    NoSuchPathError,
    NotADirectoryError,
    NotEmptyError,
    RenameLockConflict,
    TransactionAbort,
)
from repro.indexnode.index_table import IndexTable
from repro.paths import normalize, parent_and_name, split_path
from repro.sim.core import Simulator
from repro.sim.host import CostModel, Host
from repro.sim.network import Network, Server
from repro.sim.stats import (
    PHASE_EXECUTION,
    PHASE_LOOKUP,
    PHASE_LOOP_DETECT,
    OpContext,
)
from repro.structures.lru import LRUCache
from repro.tafdb.rows import Dirent, attr_key, dirent_key
from repro.tafdb.shard import WriteIntent
from repro.types import ROOT_ID, AccessMeta, AttrMeta, EntryKind, Permission, make_stat


def predict_dir_id(path: str) -> int:
    """Deterministic directory id from the creation-time full path."""
    if path == "/":
        return ROOT_ID
    digest = hashlib.blake2b(path.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") | (1 << 62)


class RenameCoordinator(Server):
    """InfiniFS's dedicated rename coordinator.

    Keeps a mirror of the directory tree (updated synchronously on every
    directory mutation) so it can run loop detection locally, plus an
    in-memory rename lock table.
    """

    def __init__(self, host: Host, costs: CostModel):
        super().__init__(host)
        self.costs = costs
        self.mirror = IndexTable()
        self.locks: Dict[str, str] = {}  # src path -> owner uuid
        #: Set by the system after construction: used to validate the
        #: ancestor chain against authoritative DB state during renames.
        self.db = None

    def rpc_mirror_mkdir(self, pid: int, name: str, dir_id: int):
        yield from self.host.work(self.costs.index_probe_us)
        if self.mirror.get(pid, name) is None:
            self.mirror.insert(AccessMeta(pid=pid, name=name, id=dir_id))
        return True

    def rpc_mirror_rmdir(self, pid: int, name: str):
        yield from self.host.work(self.costs.index_probe_us)
        if self.mirror.get(pid, name) is not None:
            self.mirror.remove(pid, name)
        return True

    def rpc_rename_prepare(self, src: str, dst: str, owner: str):
        """Loop detection + lock acquisition for one rename."""
        yield from self.host.work(self.costs.index_rpc_overhead_us)
        src, dst = normalize(src), normalize(dst)
        src_parent_path, src_name = parent_and_name(src)
        dst_parent_path, dst_name = parent_and_name(dst)
        src_pid, _perm, p1 = self.mirror.resolve_dir(
            split_path(src_parent_path), path_for_errors=src)
        dst_pid, _perm, p2 = self.mirror.resolve_dir(
            split_path(dst_parent_path), path_for_errors=dst)
        meta = self.mirror.get(src_pid, src_name)
        if meta is None:
            raise NoSuchPathError(src, src_name)
        chain = self.mirror.ancestor_chain(dst_pid)
        yield from self.host.work(
            (p1 + p2 + len(chain)) * self.costs.index_probe_us)
        self.mirror.check_rename_loop(meta.id, dst_pid)
        # The mirror alone is advisory: InfiniFS must validate the ancestor
        # chain against authoritative shard state before locking, one read
        # per level — the loop-detection overhead Figure 15 charges to it.
        if self.db is not None:
            for ancestor_id in chain:
                key = self.mirror.locate(ancestor_id)
                if key is None:
                    break
                yield from self.db.read(dirent_key(key[0], key[1]))
        holder = self.locks.get(src)
        if holder is not None and holder != owner:
            raise RenameLockConflict(src)
        self.locks[src] = owner
        return {"src_pid": src_pid, "src_name": src_name, "src_id": meta.id,
                "dst_pid": dst_pid, "dst_name": dst_name}

    def rpc_rename_finish(self, src: str, owner: str, commit: bool,
                          src_pid: int = 0, src_name: str = "",
                          dst_pid: int = 0, dst_name: str = ""):
        yield from self.host.work(self.costs.index_probe_us)
        src = normalize(src)
        if self.locks.get(src) == owner:
            del self.locks[src]
        if commit:
            self.mirror.rename(src_pid, src_name, dst_pid, dst_name)
        return True


class InfiniFSSystem(StorageMixin, MetadataSystem):
    """Speculative-resolution baseline: 3 coordinator + 18 DB servers."""

    name = "infinifs"

    def __init__(self, sim: Optional[Simulator] = None,
                 network: Optional[Network] = None,
                 num_db_servers: int = 18, num_db_shards: int = 72,
                 db_cores: int = 32, num_proxies: int = 4,
                 proxy_cores: int = 32, coordinator_cores: int = 64,
                 am_cache_capacity: int = 0,
                 costs: Optional[CostModel] = None):
        self.costs = costs or CostModel()
        sim = sim or Simulator()
        network = network or Network(sim, one_way_us=self.costs.net_one_way_us)
        super().__init__(sim, network)
        self.ids = IdAllocator()
        self._init_storage(num_db_servers, num_db_shards, db_cores,
                           self.costs, new_dir_id=predict_dir_id)
        self.coordinator = RenameCoordinator(
            Host(sim, "infinifs-coordinator", cores=coordinator_cores),
            self.costs)
        self.coordinator.db = self.tafdb.client()
        self.proxies: List[Tuple[Host, object, Optional[LRUCache]]] = []
        for i in range(num_proxies):
            host = Host(sim, f"{self.name}-proxy-{i}", cores=proxy_cores)
            cache = (LRUCache(am_cache_capacity)
                     if am_cache_capacity > 0 else None)
            self.proxies.append((host, self.tafdb.client(), cache))
        self._proxy_rr = 0
        #: CPU charged per speculative sub-request on the proxy (thread
        #: spawn + marshalling) — the over-provisioning cost of §3.3.
        self.speculation_cpu_us = 10.0

    def _on_bulk_mkdir(self, pid: int, name: str, dir_id: int,
                       path: str) -> None:
        self.coordinator.mirror.insert(
            AccessMeta(pid=pid, name=name, id=dir_id))

    def _proxy(self):
        self._proxy_rr += 1
        return self.proxies[self._proxy_rr % len(self.proxies)]

    def shutdown(self) -> None:
        self.tafdb.stop_compactors()

    # -- speculative parallel resolution ------------------------------------------

    def _speculative_resolve(self, host, db, cache: Optional[LRUCache],
                             path: str, upto_parent: bool, ctx: OpContext):
        """Resolve ``path`` with one parallel round of predicted reads,
        falling back to sequential reads where predictions miss.

        Returns (dir_id, final_name, perm).  ``final_name`` is the last
        component when ``upto_parent`` (the object dirent stays with TafDB's
        execution phase), else None.
        """
        parts = split_path(path)
        if upto_parent:
            if not parts:
                raise NoSuchPathError(path)
            walk, final = parts[:-1], parts[-1]
        else:
            walk, final = parts, None
        if not walk:
            return ROOT_ID, final, Permission.ALL

        # AM-Cache: start from the deepest cached prefix.  A stale hit
        # (concurrent rename through another proxy) surfaces as a missing
        # row mid-walk; drop the entry and retry without the cache.
        start_level = 0
        start_id = ROOT_ID
        cached_prefix = None
        if cache is not None:
            for level in range(len(walk), 0, -1):
                prefix = "/" + "/".join(walk[:level])
                hit = cache.get(prefix)
                if hit is not None:
                    start_level, start_id = level, hit
                    cached_prefix = prefix
                    break
        if start_level == len(walk):
            return start_id, final, Permission.ALL

        # One parallel round: read every remaining level with predicted pids.
        predicted = [start_id]
        for level in range(start_level + 1, len(walk)):
            predicted.append(predict_dir_id("/" + "/".join(walk[:level])))

        def read_one(pid, name):
            row = yield from db.read(dirent_key(pid, name), ctx=ctx)
            return row

        # Thread over-provisioning: every speculative sub-request costs
        # proxy CPU whether or not its prediction was useful.
        yield from host.work(self.speculation_cpu_us * len(predicted))
        procs = [self.sim.process(read_one(predicted[i], walk[start_level + i]))
                 for i in range(len(predicted))]
        rows = yield self.sim.all_of(procs)

        # Validate the chain; fall back sequentially on the first miss.
        current = start_id
        perm = Permission.ALL
        level = start_level
        for i, row in enumerate(rows):
            if predicted[i] != current:
                break  # misprediction (renamed ancestry): stop trusting
            if row is None:
                raise NoSuchPathError(path, walk[level])
            if not row.value.is_dir:
                raise NotADirectoryError(path, walk[level])
            perm &= row.value.permission
            current = row.value.id
            level += 1
        while level < len(walk):
            row = yield from db.read(dirent_key(current, walk[level]), ctx=ctx)
            if row is None:
                if cached_prefix is not None:
                    # Possibly a stale cache hit: retry uncached once.
                    cache.invalidate(cached_prefix)
                    result = yield from self._speculative_resolve(
                        host, db, None, path, upto_parent, ctx)
                    if cache is not None:
                        cache.put("/" + "/".join(walk), result[0])
                    return result
                raise NoSuchPathError(path, walk[level])
            if not row.value.is_dir:
                raise NotADirectoryError(path, walk[level])
            perm &= row.value.permission
            current = row.value.id
            level += 1

        if cache is not None:
            cache.put("/" + "/".join(walk), current)
        return current, final, perm

    def _lookup_parent(self, host, db, cache, path: str, ctx: OpContext):
        ctx.begin(PHASE_LOOKUP, self.sim.now)
        pid, final, perm = yield from self._speculative_resolve(
            host, db, cache, path, upto_parent=True, ctx=ctx)
        ctx.end(PHASE_LOOKUP, self.sim.now)
        return pid, final, perm

    def _lookup_dir(self, host, db, cache, path: str, ctx: OpContext):
        ctx.begin(PHASE_LOOKUP, self.sim.now)
        dir_id, _final, perm = yield from self._speculative_resolve(
            host, db, cache, path, upto_parent=False, ctx=ctx)
        ctx.end(PHASE_LOOKUP, self.sim.now)
        return dir_id, perm

    # -- object operations -------------------------------------------------------------

    def op_create(self, path: str, ctx: OpContext):
        host, db, cache = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        pid, name, _perm = yield from self._lookup_parent(
            host, db, cache, path, ctx)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        obj_id = self.ids.next()
        now = self.sim.now
        yield from self.insert_with_conflict_check(
            db, dirent_key(pid, name),
            Dirent(id=obj_id, kind=EntryKind.OBJECT,
                   attrs=AttrMeta(id=obj_id, kind=EntryKind.OBJECT,
                                  ctime=now, mtime=now)),
            path, ctx)
        yield from db.atomic_add(pid, 0, 1, ctx=ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return obj_id

    def op_delete(self, path: str, ctx: OpContext):
        host, db, cache = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        pid, name, _perm = yield from self._lookup_parent(
            host, db, cache, path, ctx)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        row = yield from db.read(dirent_key(pid, name), ctx=ctx)
        if row is None:
            raise NoSuchPathError(path, name)
        if row.value.is_dir:
            raise IsADirectoryError(path)
        try:
            yield from db.execute_txn([WriteIntent(
                dirent_key(pid, name), "delete",
                expect_version=row.version)], ctx=ctx)
        except TransactionAbort as exc:
            if exc.reason == "missing":
                raise NoSuchPathError(path) from exc
            raise
        yield from db.atomic_add(pid, 0, -1, ctx=ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return row.value.id

    def op_objstat(self, path: str, ctx: OpContext):
        """InfiniFS resolves the object row inside the speculative round:
        execution is folded into the lookup phase (§6.3)."""
        host, db, cache = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        ctx.begin(PHASE_LOOKUP, self.sim.now)
        parts = split_path(path)
        parent_path = "/" + "/".join(parts[:-1]) if len(parts) > 1 else "/"
        pid, _final, _perm = yield from self._speculative_resolve(
            host, db, cache, parent_path, upto_parent=False, ctx=ctx)
        row = yield from db.read(dirent_key(pid, parts[-1]), ctx=ctx)
        ctx.end(PHASE_LOOKUP, self.sim.now)
        if row is None:
            raise NoSuchPathError(path, parts[-1])
        value = row.value
        if value.is_dir:
            attrs = yield from db.read_dir_attrs(value.id, ctx=ctx)
        else:
            attrs = value.attrs
        return make_stat(normalize(path), attrs)

    # -- directory read operations ---------------------------------------------------------

    def op_dirstat(self, path: str, ctx: OpContext):
        host, db, cache = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        dir_id, _perm = yield from self._lookup_dir(host, db, cache, path, ctx)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        attrs = yield from db.read_dir_attrs(dir_id, ctx=ctx)
        if attrs is None:
            raise NoSuchPathError(path)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return make_stat(normalize(path), attrs)

    def op_readdir(self, path: str, ctx: OpContext):
        host, db, cache = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        dir_id, _perm = yield from self._lookup_dir(host, db, cache, path, ctx)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        page = yield from db.scan_children(dir_id, ctx=ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return [name for name, _ in page]

    # -- directory modifications (CFS two-transaction strategy) ------------------------------

    def op_mkdir(self, path: str, ctx: OpContext,
                 permission: Permission = Permission.ALL):
        host, db, cache = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        pid, name, _perm = yield from self._lookup_parent(
            host, db, cache, path, ctx)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        dir_id = predict_dir_id(normalize(path))
        now = self.sim.now
        # Txn 1: the directory's own attribute record (its future shard).
        # The id is the path hash, so a duplicate mkdir collides right here.
        yield from self.insert_with_conflict_check(
            db, attr_key(dir_id),
            AttrMeta(id=dir_id, kind=EntryKind.DIRECTORY, ctime=now,
                     mtime=now, permission=permission),
            path, ctx)
        # Txn 2: access metadata, plus the atomic parent increment.
        yield from self.insert_with_conflict_check(
            db, dirent_key(pid, name),
            Dirent(id=dir_id, kind=EntryKind.DIRECTORY,
                   permission=permission),
            path, ctx)
        yield from db.atomic_add(pid, 1, 1, ctx=ctx)
        # Keep the rename coordinator's tree mirror current.
        yield from self.network.rpc(self.coordinator, "mirror_mkdir",
                                    pid, name, dir_id, ctx=ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return dir_id

    def op_rmdir(self, path: str, ctx: OpContext):
        host, db, cache = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        pid, name, _perm = yield from self._lookup_parent(
            host, db, cache, path, ctx)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        row = yield from db.read(dirent_key(pid, name), ctx=ctx)
        if row is None:
            raise NoSuchPathError(path, name)
        if not row.value.is_dir:
            raise NotADirectoryError(path, name)
        dir_id = row.value.id
        non_empty = yield from db.has_children(dir_id, ctx=ctx)
        if non_empty:
            raise NotEmptyError(path)
        yield from db.execute_txn([WriteIntent(
            dirent_key(pid, name), "delete",
            expect_version=row.version)], ctx=ctx)
        yield from db.execute_txn([WriteIntent(
            attr_key(dir_id), "delete")], ctx=ctx)
        yield from db.atomic_add(pid, -1, -1, ctx=ctx)
        yield from self.network.rpc(self.coordinator, "mirror_rmdir",
                                    pid, name, ctx=ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return dir_id

    def op_setattr(self, path: str, permission: Permission, ctx: OpContext):
        host, db, cache = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        dir_id, _perm = yield from self._lookup_dir(host, db, cache, path, ctx)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        attempt = 0
        while True:
            row = yield from db.read(attr_key(dir_id), ctx=ctx)
            if row is None:
                raise NoSuchPathError(path)
            attrs = row.value.copy()
            attrs.permission = permission
            attrs.mtime = self.sim.now
            try:
                yield from db.execute_txn([WriteIntent(
                    attr_key(dir_id), "update", attrs,
                    expect_version=row.version)], ctx=ctx)
                break
            except TransactionAbort:
                ctx.retries += 1
                attempt += 1
                yield self.sim.timeout(db.backoff_us(attempt))
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return make_stat(normalize(path), attrs)

    def op_dirrename(self, src: str, dst: str, ctx: OpContext):
        """Rename through the coordinator, then one distributed transaction
        whose in-place parent updates abort under contention (§3.3)."""
        host, db, cache = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        owner = self.next_uuid()

        ctx.begin(PHASE_LOOP_DETECT, self.sim.now)
        prep = None
        for attempt in range(64):
            try:
                prep = yield from self.network.rpc(
                    self.coordinator, "rename_prepare", src, dst, owner,
                    ctx=ctx)
                break
            except RenameLockConflict:
                ctx.retries += 1
                yield self.sim.timeout(db.backoff_us(attempt))
        ctx.end(PHASE_LOOP_DETECT, self.sim.now)
        if prep is None:
            raise RenameLockConflict(src)

        ctx.begin(PHASE_EXECUTION, self.sim.now)
        src_key = dirent_key(prep["src_pid"], prep["src_name"])
        dst_key = dirent_key(prep["dst_pid"], prep["dst_name"])
        committed = False
        try:
            attempt = 0
            while True:
                src_row = yield from db.read(src_key, ctx=ctx)
                if src_row is None:
                    raise NoSuchPathError(src)
                intents = [
                    WriteIntent(src_key, "delete",
                                expect_version=src_row.version),
                    WriteIntent(dst_key, "insert", src_row.value),
                ]
                for parent_id, (ld, ed) in self._rename_parent_deltas(
                        prep["src_pid"], prep["dst_pid"]).items():
                    row = yield from db.read(attr_key(parent_id), ctx=ctx)
                    if row is None:
                        raise NoSuchPathError(f"dir id {parent_id}")
                    attrs = row.value.copy()
                    attrs.link_count += ld
                    attrs.entry_count += ed
                    attrs.mtime = self.sim.now
                    intents.append(WriteIntent(
                        attr_key(parent_id), "update", attrs,
                        expect_version=row.version))
                try:
                    yield from db.execute_txn(intents, ctx=ctx)
                    committed = True
                    break
                except TransactionAbort as exc:
                    if exc.reason == "exists" and exc.key == dst_key:
                        from repro.errors import AlreadyExistsError
                        raise AlreadyExistsError(dst) from exc
                    ctx.retries += 1
                    attempt += 1
                    if attempt > 256:
                        raise
                    yield self.sim.timeout(db.backoff_us(attempt))
        finally:
            yield from self.network.rpc(
                self.coordinator, "rename_finish", src, owner, committed,
                prep["src_pid"], prep["src_name"],
                prep["dst_pid"], prep["dst_name"], ctx=ctx)
            ctx.end(PHASE_EXECUTION, self.sim.now)
        if committed:
            src_prefix = normalize(src)
            for _host, _db, proxy_cache in self.proxies:
                if proxy_cache is not None:
                    proxy_cache.invalidate_where(
                        lambda key: key == src_prefix
                        or key.startswith(src_prefix + "/"))
        return prep["src_id"]

    @staticmethod
    def _rename_parent_deltas(src_pid: int, dst_pid: int):
        if src_pid == dst_pid:
            return {src_pid: (0, 0)}
        return {src_pid: (-1, -1), dst_pid: (1, 1)}
