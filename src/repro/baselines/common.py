"""Shared plumbing for the DB-backed baseline systems.

All three baselines (and Mantle) keep bulk metadata in the same sharded
store; what differs is *how they resolve paths* and *how they coordinate
directory updates*.  This mixin provides cluster construction, bulk loading
and the level-by-level resolution primitive the DBtable approach uses.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import (
    AlreadyExistsError,
    NoSuchPathError,
    NotADirectoryError,
    TransactionAbort,
)
from repro.paths import normalize, parent_and_name, split_path
from repro.sim.host import CostModel
from repro.sim.stats import OpContext
from repro.tafdb.cluster import TafDBCluster
from repro.tafdb.rows import Dirent, attr_key, dirent_key
from repro.tafdb.shard import WriteIntent
from repro.types import ROOT_ID, AttrMeta, EntryKind, Permission


class StorageMixin:
    """TafDB-backed storage, bulk loading and sequential resolution.

    Subclasses must have ``self.sim``, ``self.network``, ``self.costs`` and
    call :meth:`_init_storage`.  ``_on_bulk_mkdir`` lets a system mirror new
    directories into its own index (IndexNode replicas, LocoFS's directory
    server, InfiniFS's rename coordinator).
    """

    def _init_storage(self, num_db_servers: int, num_db_shards: int,
                      db_cores: int, costs: CostModel,
                      deltas_enabled: bool = False,
                      new_dir_id: Optional[Callable[[str], int]] = None):
        self.tafdb = TafDBCluster(
            self.sim, self.network, num_servers=num_db_servers,
            num_shards=num_db_shards, cores=db_cores, costs=costs,
            deltas_enabled=deltas_enabled,
            start_compactors=deltas_enabled)
        self._bulk_dirs: Dict[str, int] = {"/": ROOT_ID}
        self._bulk_seq = 0
        self._new_dir_id = new_dir_id or (lambda _path: self.ids.next())
        self._bulk_execute(ROOT_ID, [WriteIntent(
            attr_key(ROOT_ID), "insert",
            AttrMeta(id=ROOT_ID, kind=EntryKind.DIRECTORY))])

    # -- bulk loading --------------------------------------------------------

    def _bulk_execute(self, pid: int, intents) -> None:
        shard_id = self.tafdb.partitioner.shard_of(pid)
        server = self.tafdb.servers[
            self.tafdb.partitioner.server_of_shard(shard_id)]
        self._bulk_seq += 1
        server.shard(shard_id).execute(f"bulk-{self._bulk_seq}", intents)

    def _bulk_bump_parent(self, pid: int, link_delta: int, entry_delta: int):
        shard_id = self.tafdb.partitioner.shard_of(pid)
        shard = self.tafdb.servers[
            self.tafdb.partitioner.server_of_shard(shard_id)].shard(shard_id)
        row = shard.read(attr_key(pid))
        if row is None:
            raise NoSuchPathError(f"dir id {pid}")
        attrs = row.value.copy()
        attrs.link_count += link_delta
        attrs.entry_count += entry_delta
        self._bulk_execute(pid, [WriteIntent(
            attr_key(pid), "update", attrs, expect_version=row.version)])

    def _on_bulk_mkdir(self, pid: int, name: str, dir_id: int,
                       path: str) -> None:
        """Hook: mirror a bulk-loaded directory into system-local indexes."""

    def bulk_mkdir(self, path: str) -> int:
        path = normalize(path)
        if path in self._bulk_dirs:
            return self._bulk_dirs[path]
        parent_path, name = parent_and_name(path)
        pid = self._bulk_dirs.get(parent_path)
        if pid is None:
            raise NoSuchPathError(path, parent_path)
        dir_id = self._new_dir_id(path)
        self._bulk_execute(pid, [WriteIntent(
            dirent_key(pid, name), "insert",
            Dirent(id=dir_id, kind=EntryKind.DIRECTORY))])
        self._bulk_execute(dir_id, [WriteIntent(
            attr_key(dir_id), "insert",
            AttrMeta(id=dir_id, kind=EntryKind.DIRECTORY))])
        self._bulk_bump_parent(pid, 1, 1)
        self._on_bulk_mkdir(pid, name, dir_id, path)
        self._bulk_dirs[path] = dir_id
        return dir_id

    def bulk_create(self, path: str, size: int = 0) -> int:
        path = normalize(path)
        parent_path, name = parent_and_name(path)
        pid = self._bulk_dirs.get(parent_path)
        if pid is None:
            raise NoSuchPathError(path, parent_path)
        obj_id = self.ids.next()
        self._bulk_execute(pid, [WriteIntent(
            dirent_key(pid, name), "insert",
            Dirent(id=obj_id, kind=EntryKind.OBJECT,
                   attrs=AttrMeta(id=obj_id, kind=EntryKind.OBJECT,
                                  size=size)))])
        self._bulk_bump_parent(pid, 0, 1)
        return obj_id

    # -- DBtable sequential resolution (§2.3) ------------------------------------

    def resolve_sequential(self, db, path: str, upto_parent: bool,
                           ctx: OpContext):
        """Level-by-level path traversal: one RPC per component.

        This is the multi-RPC resolution of Figure 2 that Mantle's
        single-RPC IndexNode lookup replaces.  Returns (dir_id, final_name,
        permission); ``final_name`` is None when resolving the full path.
        """
        parts = split_path(path)
        if upto_parent:
            if not parts:
                raise NoSuchPathError(path)
            walk, final = parts[:-1], parts[-1]
        else:
            walk, final = parts, None
        current = ROOT_ID
        perm = Permission.ALL
        for part in walk:
            row = yield from db.read(dirent_key(current, part), ctx=ctx)
            if row is None:
                raise NoSuchPathError(path, part)
            if not row.value.is_dir:
                raise NotADirectoryError(path, part)
            perm &= row.value.permission
            current = row.value.id
        return current, final, perm

    # -- parent attribute read-modify-write with retries ------------------------------

    def update_parent_attrs(self, db, parent_id: int, link_delta: int,
                            entry_delta: int, ctx: OpContext,
                            max_retries: int = 64):
        """The contended in-place parent update of the DBtable approach.

        Optimistic read-modify-write with version expectation; conflicts
        abort and retry with backoff — the mechanism behind Figure 4b.
        """
        attempt = 0
        while True:
            row = yield from db.read(attr_key(parent_id), ctx=ctx)
            if row is None:
                raise NoSuchPathError(f"dir id {parent_id}")
            attrs = row.value.copy()
            attrs.link_count += link_delta
            attrs.entry_count += entry_delta
            attrs.mtime = self.sim.now
            try:
                yield from db.execute_txn([WriteIntent(
                    attr_key(parent_id), "update", attrs,
                    expect_version=row.version)], ctx=ctx)
                return
            except TransactionAbort:
                ctx.retries += 1
                attempt += 1
                if attempt > max_retries:
                    raise
                yield self.sim.timeout(db.backoff_us(attempt))

    def insert_with_conflict_check(self, db, key, value, path: str,
                                   ctx: OpContext):
        """Single-row insert where EEXIST is a semantic error."""
        try:
            yield from db.execute_txn([WriteIntent(key, "insert", value)],
                                      ctx=ctx)
        except TransactionAbort as exc:
            if exc.reason == "exists":
                raise AlreadyExistsError(path) from exc
            raise
