"""LocoFS-style tiered metadata service (baseline of §6.1).

LocoFS decouples directory metadata from object metadata: a central
directory metadata server (here a three-replica Raft group, leader-serving)
holds the whole directory tree and its attributes, while object metadata
lives in the scalable database cluster.

Consequences the paper measures, all reproduced here:

* path resolution is local to the central node — few RPCs, but the node's
  CPU is the scalability ceiling (no TopDirPathCache, no follower reads);
* object creation must route through the directory node for the parent
  update, "imposing extra overhead" (§3.3) — though this also makes create
  competitive with Mantle (§6.3);
* every directory mutation is one Raft commit with per-operation fsync —
  "LocoFS's throughput is throttled by the Raft" (§6.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.base import IdAllocator, MetadataSystem
from repro.baselines.common import StorageMixin
from repro.errors import (
    AlreadyExistsError,
    IsADirectoryError,
    NoSuchPathError,
    NotEmptyError,
    TransactionAbort,
)
from repro.indexnode.index_table import IndexTable
from repro.paths import normalize, parent_and_name, split_path
from repro.raft.group import RaftGroup
from repro.raft.node import NotLeaderError, RaftConfig
from repro.sim.core import Simulator
from repro.sim.host import CostModel, Host
from repro.sim.network import Network, Server
from repro.sim.stats import (
    PHASE_EXECUTION,
    PHASE_LOOKUP,
    PHASE_LOOP_DETECT,
    OpContext,
)
from repro.tafdb.rows import Dirent, dirent_key
from repro.tafdb.shard import WriteIntent
from repro.types import (
    ROOT_ID,
    AccessMeta,
    AttrMeta,
    EntryKind,
    Permission,
    make_stat,
)


class LocoDirState:
    """Replicated state of the directory metadata server: the directory
    tree plus per-directory attributes."""

    def __init__(self, _node_id: int = 0):
        self.table = IndexTable()
        self.attrs: Dict[int, AttrMeta] = {
            ROOT_ID: AttrMeta(id=ROOT_ID, kind=EntryKind.DIRECTORY)}

    def resolve(self, parts: List[str], path: str):
        return self.table.resolve_dir(parts, path_for_errors=path)

    def bump(self, dir_id: int, link_delta: int, entry_delta: int,
             now: float) -> None:
        attrs = self.attrs.get(dir_id)
        if attrs is None:
            raise NoSuchPathError(f"dir id {dir_id}")
        attrs.link_count += link_delta
        attrs.entry_count += entry_delta
        attrs.mtime = now

    def snapshot(self):
        import copy
        return copy.deepcopy((self.table, self.attrs))

    def restore(self, blob) -> None:
        import copy
        table, attrs = copy.deepcopy(blob)
        self.table = table
        self.attrs = attrs

    def apply(self, command: Tuple) -> Tuple:
        op = command[0]
        if op == "mkdir":
            _op, pid, name, dir_id, perm_value, now = command
            if self.table.get(pid, name) is not None:
                existing = self.table.get(pid, name)
                if existing.id == dir_id:
                    return ("ok", dir_id)
                return ("exists", existing.id)
            self.table.insert(AccessMeta(pid=pid, name=name, id=dir_id,
                                         permission=Permission(perm_value)))
            self.attrs[dir_id] = AttrMeta(
                id=dir_id, kind=EntryKind.DIRECTORY, ctime=now, mtime=now,
                permission=Permission(perm_value))
            self.bump(pid, 1, 1, now)
            return ("ok", dir_id)
        if op == "rmdir":
            _op, pid, name, now = command
            meta = self.table.get(pid, name)
            if meta is None:
                return ("missing", None)
            self.table.remove(pid, name)
            self.attrs.pop(meta.id, None)
            self.bump(pid, -1, -1, now)
            return ("ok", meta.id)
        if op == "rename":
            _op, src_pid, src_name, dst_pid, dst_name, now = command
            if self.table.get(src_pid, src_name) is None:
                return ("missing", None)
            if self.table.get(dst_pid, dst_name) is not None:
                return ("exists", None)
            moved = self.table.rename(src_pid, src_name, dst_pid, dst_name)
            if src_pid != dst_pid:
                self.bump(src_pid, -1, -1, now)
                self.bump(dst_pid, 1, 1, now)
            return ("ok", moved.id)
        if op == "setperm":
            _op, pid, name, perm_value, now = command
            meta = self.table.get(pid, name)
            if meta is None:
                return ("missing", None)
            import dataclasses
            self.table.replace(dataclasses.replace(
                meta, permission=Permission(perm_value)))
            attrs = self.attrs.get(meta.id)
            if attrs is not None:
                attrs.permission = Permission(perm_value)
                attrs.mtime = now
            return ("ok", meta.id)
        return ("err", f"unknown command {op!r}")


class LocoDirService(Server):
    """RPC surface of the central directory metadata server (leader-only)."""

    def __init__(self, host: Host, node, state: LocoDirState,
                 costs: CostModel):
        super().__init__(host)
        self.node = node
        self.state = state
        self.costs = costs

    def _require_leader(self):
        if not self.node.is_leader:
            raise NotLeaderError(self.node.leader_hint)

    def _resolve(self, path: str, upto_parent: bool):
        """Local tree walk, charging one probe per level."""
        parts = split_path(path)
        if upto_parent:
            if not parts:
                raise NoSuchPathError(path)
            walk, final = parts[:-1], parts[-1]
        else:
            walk, final = parts, None
        dir_id, perm, probes = self.state.resolve(walk, path)
        yield from self.host.work(
            self.costs.index_rpc_overhead_us
            + probes * self.costs.index_probe_us
            + len(parts) * self.costs.permission_check_us)
        return dir_id, final, perm

    def rpc_resolve(self, path: str, upto_parent: bool = True):
        self._require_leader()
        result = yield from self._resolve(path, upto_parent)
        return result

    def rpc_dirstat(self, path: str):
        self._require_leader()
        dir_id, _final, _perm = yield from self._resolve(path, False)
        attrs = self.state.attrs.get(dir_id)
        if attrs is None:
            raise NoSuchPathError(path)
        return make_stat(normalize(path), attrs.copy())

    def rpc_list_subdirs(self, path: str):
        self._require_leader()
        dir_id, _final, _perm = yield from self._resolve(path, False)
        names = self.state.table.children_names(dir_id)
        yield from self.host.work(
            max(1, len(names)) * self.costs.index_probe_us)
        return dir_id, names

    def rpc_object_prep(self, path: str, entry_delta: int):
        """Resolve the parent and adjust its entry count for an object
        create/delete.  LocoFS relaxes durability for these counters (no
        Raft round), but they still consume the central node."""
        self._require_leader()
        pid, name, perm = yield from self._resolve(path, True)
        yield from self.host.work(self.costs.index_probe_us)
        if self.state.table.get(pid, name) is not None:
            # The name is a directory: object ops on it are semantic errors.
            if entry_delta > 0:
                raise AlreadyExistsError(path)
            raise IsADirectoryError(path)
        self.state.bump(pid, 0, entry_delta, self.sim.now)
        return pid, name, perm

    def rpc_mkdir(self, path: str, dir_id: int, perm_value: int):
        self._require_leader()
        pid, name, _perm = yield from self._resolve(path, True)
        result = yield self.node.propose(
            ("mkdir", pid, name, dir_id, perm_value, self.sim.now))
        if result[0] == "exists":
            raise AlreadyExistsError(path)
        return result[1]

    def rpc_rmdir(self, path: str):
        self._require_leader()
        pid, name, _perm = yield from self._resolve(path, True)
        meta = self.state.table.get(pid, name)
        if meta is None:
            raise NoSuchPathError(path, name)
        if self.state.table.has_child_dirs(meta.id):
            raise NotEmptyError(path)
        result = yield self.node.propose(("rmdir", pid, name, self.sim.now))
        if result[0] == "missing":
            raise NoSuchPathError(path)
        return meta.id

    def rpc_has_dir(self, path: str):
        """Check whether ``path`` resolves to a directory (rmdir support)."""
        self._require_leader()
        try:
            dir_id, _f, _p = yield from self._resolve(path, False)
        except NoSuchPathError:
            return None
        return dir_id

    def rpc_rename(self, src: str, dst: str):
        """Resolution, loop detection and the rename commit, all central."""
        self._require_leader()
        src_pid, src_name, _sp = yield from self._resolve(src, True)
        dst_pid, dst_name, _dp = yield from self._resolve(dst, True)
        meta = self.state.table.get(src_pid, src_name)
        if meta is None:
            raise NoSuchPathError(src, src_name)
        chain = self.state.table.ancestor_chain(dst_pid)
        yield from self.host.work(len(chain) * self.costs.index_probe_us)
        self.state.table.check_rename_loop(meta.id, dst_pid)
        result = yield self.node.propose(
            ("rename", src_pid, src_name, dst_pid, dst_name, self.sim.now))
        if result[0] == "missing":
            raise NoSuchPathError(src)
        if result[0] == "exists":
            raise AlreadyExistsError(dst)
        return result[1]

    def rpc_setattr(self, path: str, perm_value: int):
        self._require_leader()
        pid, name, _perm = yield from self._resolve(path, True)
        result = yield self.node.propose(
            ("setperm", pid, name, perm_value, self.sim.now))
        if result[0] == "missing":
            raise NoSuchPathError(path)
        return result[1]


class LocoFSSystem(StorageMixin, MetadataSystem):
    """Tiered baseline: 3 directory-metadata + 18 object-metadata servers."""

    name = "locofs"

    def __init__(self, sim: Optional[Simulator] = None,
                 network: Optional[Network] = None,
                 num_db_servers: int = 18, num_db_shards: int = 72,
                 db_cores: int = 32, num_proxies: int = 4,
                 proxy_cores: int = 32, dir_server_cores: int = 64,
                 dir_replicas: int = 3, costs: Optional[CostModel] = None,
                 seed: int = 11):
        self.costs = costs or CostModel()
        sim = sim or Simulator()
        network = network or Network(sim, one_way_us=self.costs.net_one_way_us)
        super().__init__(sim, network)
        self.ids = IdAllocator()
        self._init_storage(num_db_servers, num_db_shards, db_cores, self.costs)
        hosts = [Host(sim, f"locofs-dir-{i}", cores=dir_server_cores,
                      fsync_us=self.costs.fsync_us)
                 for i in range(dir_replicas)]
        # Per-operation fsync: LocoFS predates Mantle's Raft log batching.
        raft_config = RaftConfig(batching_enabled=False)
        self.dir_group = RaftGroup(
            sim, network, hosts, LocoDirState, num_voters=dir_replicas,
            config=raft_config, costs=self.costs, seed=seed)
        self.dir_services = {
            nid: LocoDirService(node.host, node, node.state_machine,
                                self.costs)
            for nid, node in self.dir_group.nodes.items()}
        self.proxies: List[Tuple[Host, object]] = []
        for i in range(num_proxies):
            host = Host(sim, f"{self.name}-proxy-{i}", cores=proxy_cores)
            self.proxies.append((host, self.tafdb.client()))
        self._proxy_rr = 0

    # -- lifecycle ----------------------------------------------------------------

    def startup(self) -> None:
        self.sim.run_process(self.dir_group.wait_for_leader())

    def shutdown(self) -> None:
        self.dir_group.stop()
        self.tafdb.stop_compactors()

    def _proxy(self):
        self._proxy_rr += 1
        return self.proxies[self._proxy_rr % len(self.proxies)]

    def _dir_service(self) -> LocoDirService:
        leader = self.dir_group.leader_or_raise()
        return self.dir_services[leader.id]

    # -- bulk loading (directories live only at the dir server) ----------------------

    def bulk_mkdir(self, path: str) -> int:
        path = normalize(path)
        if path in self._bulk_dirs:
            return self._bulk_dirs[path]
        parent_path, name = parent_and_name(path)
        pid = self._bulk_dirs.get(parent_path)
        if pid is None:
            raise NoSuchPathError(path, parent_path)
        dir_id = self.ids.next()
        for node in self.dir_group.nodes.values():
            state = node.state_machine
            state.table.insert(AccessMeta(pid=pid, name=name, id=dir_id))
            state.attrs[dir_id] = AttrMeta(id=dir_id,
                                           kind=EntryKind.DIRECTORY)
            state.bump(pid, 1, 1, 0.0)
        self._bulk_dirs[path] = dir_id
        return dir_id

    def bulk_create(self, path: str, size: int = 0) -> int:
        path = normalize(path)
        parent_path, name = parent_and_name(path)
        pid = self._bulk_dirs.get(parent_path)
        if pid is None:
            raise NoSuchPathError(path, parent_path)
        obj_id = self.ids.next()
        self._bulk_execute(pid, [WriteIntent(
            dirent_key(pid, name), "insert",
            Dirent(id=obj_id, kind=EntryKind.OBJECT,
                   attrs=AttrMeta(id=obj_id, kind=EntryKind.OBJECT,
                                  size=size)))])
        for node in self.dir_group.nodes.values():
            node.state_machine.bump(pid, 0, 1, 0.0)
        return obj_id

    # -- object operations --------------------------------------------------------------

    def op_create(self, path: str, ctx: OpContext):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        ctx.begin(PHASE_LOOKUP, self.sim.now)
        pid, name, _perm = yield from self.network.rpc(
            self._dir_service(), "object_prep", path, 1, ctx=ctx)
        ctx.end(PHASE_LOOKUP, self.sim.now)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        obj_id = self.ids.next()
        now = self.sim.now
        try:
            yield from self.insert_with_conflict_check(
                db, dirent_key(pid, name),
                Dirent(id=obj_id, kind=EntryKind.OBJECT,
                       attrs=AttrMeta(id=obj_id, kind=EntryKind.OBJECT,
                                      ctime=now, mtime=now)),
                path, ctx)
        except AlreadyExistsError:
            # Roll the speculative parent bump back.
            yield from self.network.rpc(
                self._dir_service(), "object_prep", path, -1, ctx=ctx)
            raise
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return obj_id

    def op_delete(self, path: str, ctx: OpContext):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        ctx.begin(PHASE_LOOKUP, self.sim.now)
        pid, name, _perm = yield from self.network.rpc(
            self._dir_service(), "object_prep", path, -1, ctx=ctx)
        ctx.end(PHASE_LOOKUP, self.sim.now)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        row = yield from db.read(dirent_key(pid, name), ctx=ctx)
        if row is None:
            raise NoSuchPathError(path, name)
        if row.value.is_dir:
            raise IsADirectoryError(path)
        try:
            yield from db.execute_txn([WriteIntent(
                dirent_key(pid, name), "delete",
                expect_version=row.version)], ctx=ctx)
        except TransactionAbort as exc:
            if exc.reason == "missing":
                raise NoSuchPathError(path) from exc
            raise
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return row.value.id

    def op_objstat(self, path: str, ctx: OpContext):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        ctx.begin(PHASE_LOOKUP, self.sim.now)
        pid, name, _perm = yield from self.network.rpc(
            self._dir_service(), "resolve", path, True, ctx=ctx)
        ctx.end(PHASE_LOOKUP, self.sim.now)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        row = yield from db.read(dirent_key(pid, name), ctx=ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        if row is None:
            raise NoSuchPathError(path, name)
        if row.value.is_dir:
            raise IsADirectoryError(path)
        return make_stat(normalize(path), row.value.attrs)

    # -- directory read operations -----------------------------------------------------------

    def op_dirstat(self, path: str, ctx: OpContext):
        """LocoFS resolves directory paths during the execution phase (§6.3):
        the whole dirstat is one RPC to the central node."""
        host, _db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        stat = yield from self.network.rpc(
            self._dir_service(), "dirstat", path, ctx=ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return stat

    def op_readdir(self, path: str, ctx: OpContext):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        dir_id, subdirs = yield from self.network.rpc(
            self._dir_service(), "list_subdirs", path, ctx=ctx)
        page = yield from db.scan_children(dir_id, ctx=ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return sorted(set(subdirs) | {name for name, _ in page})

    # -- directory modifications ------------------------------------------------------------------

    def op_mkdir(self, path: str, ctx: OpContext,
                 permission: Permission = Permission.ALL):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        # Tiering tax (§3.3): the name may exist as an *object* in the
        # object store, which the directory server cannot see — one extra
        # cross-component round trip per mkdir.
        pid, name, _perm = yield from self.network.rpc(
            self._dir_service(), "resolve", path, True, ctx=ctx)
        clash = yield from db.read(dirent_key(pid, name), ctx=ctx)
        if clash is not None:
            raise AlreadyExistsError(path)
        dir_id = self.ids.next()
        result = yield from self.network.rpc(
            self._dir_service(), "mkdir", path, dir_id, int(permission),
            ctx=ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return result

    def op_rmdir(self, path: str, ctx: OpContext):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        dir_id = yield from self.network.rpc(
            self._dir_service(), "has_dir", path, ctx=ctx)
        if dir_id is None:
            raise NoSuchPathError(path)
        has_objects = yield from db.has_children(dir_id, ctx=ctx)
        if has_objects:
            raise NotEmptyError(path)
        result = yield from self.network.rpc(
            self._dir_service(), "rmdir", path, ctx=ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return result

    def op_setattr(self, path: str, permission: Permission, ctx: OpContext):
        host, _db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        result = yield from self.network.rpc(
            self._dir_service(), "setattr", path, int(permission), ctx=ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return result

    def op_dirrename(self, src: str, dst: str, ctx: OpContext):
        host, db = self._proxy()
        yield from host.work(self.costs.proxy_overhead_us)
        # Resolution, loop detection and commit are all one central RPC;
        # account it to loop detection + execution like the paper does.
        ctx.begin(PHASE_LOOP_DETECT, self.sim.now)
        ctx.end(PHASE_LOOP_DETECT, self.sim.now)
        ctx.begin(PHASE_EXECUTION, self.sim.now)
        # Cross-store duplicate check: the destination name may exist as
        # an object, invisible to the directory server.
        dst_pid, dst_name, _perm = yield from self.network.rpc(
            self._dir_service(), "resolve", dst, True, ctx=ctx)
        clash = yield from db.read(dirent_key(dst_pid, dst_name), ctx=ctx)
        if clash is not None:
            raise AlreadyExistsError(dst)
        result = yield from self.network.rpc(
            self._dir_service(), "rename", src, dst, ctx=ctx)
        ctx.end(PHASE_EXECUTION, self.sim.now)
        return result
