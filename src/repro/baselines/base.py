"""The system-agnostic metadata-service interface.

Every system under evaluation (Mantle, Tectonic, InfiniFS, LocoFS) exposes
the same seven mdtest operations plus bulk-loading hooks, so the workload
generators and the benchmark harness never special-case a system.

Operation methods are *generators* running inside the discrete-event
simulation; ``submit`` is the uniform entry point that stamps the
:class:`~repro.sim.stats.OpContext` and routes through a round-robin proxy
choice, mirroring the stateless proxy layer all COSS architectures share.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.sim.core import Simulator
from repro.sim.network import Network
from repro.sim.stats import OpContext

#: The mdtest operation names used throughout benchmarks (§6.3).
OPS = ("create", "delete", "objstat", "dirstat", "readdir",
       "mkdir", "rmdir", "dirrename", "setattr")


class MetadataSystem:
    """Abstract base; subclasses implement ``op_<name>`` generators."""

    name = "abstract"

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self._uuid_counter = itertools.count(1)
        self.data_access_enabled = False

    # -- lifecycle ------------------------------------------------------------

    def startup(self) -> None:
        """Run elections / warmup; must be called before submitting ops."""

    def shutdown(self) -> None:
        """Stop background processes so the event queue can drain."""

    # -- bulk loading (pre-population, no simulated cost) -----------------------

    def bulk_mkdir(self, path: str) -> int:
        raise NotImplementedError

    def bulk_create(self, path: str, size: int = 0) -> int:
        raise NotImplementedError

    # -- uniform submission -----------------------------------------------------

    def next_uuid(self) -> str:
        """Client-generated request UUID (idempotent retry support, §5.3)."""
        return f"{self.name}-req-{next(self._uuid_counter)}"

    def submit(self, op: str, *args, ctx: Optional[OpContext] = None):
        """Run one metadata operation end to end (generator).

        Stamps start/finish times on ``ctx`` and optionally appends the
        data-service access the paper's Figure 10b end-to-end runs include.
        """
        if op not in OPS:
            raise ValueError(f"unknown operation {op!r}")
        handler = getattr(self, "op_" + op, None)
        if handler is None:
            raise NotImplementedError(f"{self.name} does not implement {op!r}")
        if ctx is None:
            ctx = OpContext(op)
        ctx.start = self.sim.now
        result = yield from handler(*args, ctx=ctx)
        if self.data_access_enabled and op in ("create", "delete", "objstat"):
            yield from self.data_access(ctx)
        ctx.finish = self.sim.now
        return result

    def data_access(self, ctx: OpContext):
        """One small-object data-service access: a single RPC plus tens of
        microseconds of SSD device time (§3)."""
        costs = getattr(self, "costs", None)
        one_way = costs.net_one_way_us if costs else 50.0
        device = costs.data_io_small_us if costs else 80.0
        yield self.sim.timeout(2 * one_way + device)

    # -- operations (override in subclasses) ---------------------------------------

    def op_create(self, path: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_delete(self, path: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_objstat(self, path: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_dirstat(self, path: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_readdir(self, path: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_mkdir(self, path: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_rmdir(self, path: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_dirrename(self, src: str, dst: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_setattr(self, path: str, permission, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover


class IdAllocator:
    """Monotonic inode-id allocator shared by bulk loading and proxies.

    Real deployments hand out per-proxy id ranges; a shared counter has the
    same correctness properties and no simulated cost, so we keep it simple.
    """

    def __init__(self, start: int = 2):
        self._counter = itertools.count(start)

    def next(self) -> int:
        return next(self._counter)
