"""The system-agnostic metadata-service interface.

Every system under evaluation (Mantle, Tectonic, InfiniFS, LocoFS) exposes
the same seven mdtest operations plus bulk-loading hooks, so the workload
generators and the benchmark harness never special-case a system.

Operation methods are *generators* running inside the discrete-event
simulation; ``perform`` is the uniform typed entry point: it dispatches a
:class:`repro.ops.Op` through the per-system handler table, stamps the
:class:`~repro.sim.stats.OpContext`, and (under an enabled tracer) opens the
operation's root span.  The legacy stringly ``submit(op, *args)`` survives
as a thin deprecation shim over ``perform``.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional

from repro.ops import OP_NAMES, Op, make_op
from repro.sim.core import Simulator
from repro.sim.network import Network
from repro.sim.stats import OpContext
from repro.sim.telemetry import OP_LATENCY_DIGEST_PREFIX

#: The mdtest operation names used throughout benchmarks (§6.3).
#: (Alias of :data:`repro.ops.OP_NAMES`; kept for existing importers.)
OPS = OP_NAMES

#: Operations followed by a data-service access in end-to-end runs (§3).
_DATA_ACCESS_OPS = frozenset(("create", "delete", "objstat"))


class MetadataSystem:
    """Abstract base; subclasses implement ``op_<name>`` generators."""

    name = "abstract"

    #: Tenant identity stamped on every op's root span (interference
    #: blame groups victims/culprits by it).  ``None`` = single-tenant;
    #: multi-namespace deployments set it to the namespace name.
    tenant: Optional[str] = None

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        # Execution seam: domain code routes RPC/time/host-work through this
        # object.  For a Simulator this is a SimRuntime (bit-identical to
        # direct kernel calls); the live facade substitutes an AsyncioRuntime
        # carried on the same attribute (see repro/runtime/).
        from repro.runtime.base import default_runtime
        self.runtime = default_runtime(sim, network)
        self._uuid_counter = itertools.count(1)
        self.data_access_enabled = False

    # -- lifecycle ------------------------------------------------------------

    def startup(self) -> None:
        """Run elections / warmup; must be called before submitting ops."""

    def shutdown(self) -> None:
        """Stop background processes so the event queue can drain."""

    # -- bulk loading (pre-population, no simulated cost) -----------------------

    def bulk_mkdir(self, path: str) -> int:
        raise NotImplementedError

    def bulk_create(self, path: str, size: int = 0) -> int:
        raise NotImplementedError

    # -- uniform submission -----------------------------------------------------

    def next_uuid(self) -> str:
        """Client-generated request UUID (idempotent retry support, §5.3)."""
        return f"{self.name}-req-{next(self._uuid_counter)}"

    def _handler_for(self, op_name: str) -> Callable:
        """Resolve (and cache) the ``op_<name>`` handler for one op type."""
        table: Optional[Dict[str, Callable]] = getattr(
            self, "_handler_table", None)
        if table is None:
            table = self._handler_table = {}
        handler = table.get(op_name)
        if handler is None:
            handler = getattr(self, "op_" + op_name, None)
            if handler is None:
                raise NotImplementedError(
                    f"{self.name} does not implement {op_name!r}")
            table[op_name] = handler
        return handler

    def perform(self, op: Op, ctx: Optional[OpContext] = None):
        """Run one typed metadata operation end to end (generator).

        Stamps start/finish times on ``ctx``, optionally appends the
        data-service access the paper's Figure 10b end-to-end runs include,
        and — under an enabled tracer — opens the operation's root span and
        threads it through ``ctx`` so phases, RPCs and transactions nest
        beneath it.
        """
        handler = self._handler_for(op.name)
        if ctx is None:
            ctx = OpContext(op.name)
        tracer = self.sim.tracer
        if tracer.enabled:
            span = tracer.begin(op.name, self.sim.now, category="op",
                                host=self.name)
            if self.tenant is not None:
                span.annotate(tenant=self.tenant)
            ctx.trace = span
            ctx.tracer = tracer
        else:
            span = None
        ctx.start = self.sim.now
        try:
            result = yield from handler(*op.handler_args(), ctx=ctx)
            if self.data_access_enabled and op.name in _DATA_ACCESS_OPS:
                yield from self.data_access(ctx)
        except BaseException:
            if span is not None:
                ctx.finish = self.sim.now
                tracer.end(span, self.sim.now, ok=False)
            telemetry = self.sim.telemetry
            if telemetry.enabled:
                telemetry.digest(OP_LATENCY_DIGEST_PREFIX + op.name).record(
                    self.sim.now, self.sim.now - ctx.start)
            raise
        ctx.finish = self.sim.now
        if span is not None:
            tracer.end(span, self.sim.now)
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            telemetry.digest(OP_LATENCY_DIGEST_PREFIX + op.name).record(
                self.sim.now, self.sim.now - ctx.start)
        return result

    def submit(self, op: str, *args, ctx: Optional[OpContext] = None):
        """Legacy stringly entry point — deprecated, emits DeprecationWarning.

        A shim over :meth:`perform`; new code should build a
        :class:`repro.ops.Op` and call ``perform`` directly.  Raises
        ``ValueError`` for unknown operation names, as it always did.
        Scheduled for removal once no in-repo caller remains (see
        docs/observability.md, "Deprecations").
        """
        import warnings
        warnings.warn(
            "MetadataSystem.submit(name, *args) is deprecated; build a typed "
            "repro.ops.Op and call perform(op) instead",
            DeprecationWarning, stacklevel=2)
        # Not itself a generator function: the warning fires at call time
        # (with a stacklevel pointing at the caller), and the returned
        # perform() generator drives exactly as before under ``yield from``.
        return self.perform(make_op(op, *args), ctx=ctx)

    def data_access(self, ctx: OpContext):
        """One small-object data-service access: a single RPC plus tens of
        microseconds of SSD device time (§3)."""
        costs = getattr(self, "costs", None)
        one_way = costs.net_one_way_us if costs else 50.0
        device = costs.data_io_small_us if costs else 80.0
        yield self.sim.timeout(2 * one_way + device)

    # -- operations (override in subclasses) ---------------------------------------

    def op_create(self, path: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_delete(self, path: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_objstat(self, path: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_dirstat(self, path: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_readdir(self, path: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_mkdir(self, path: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_rmdir(self, path: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_dirrename(self, src: str, dst: str, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def op_setattr(self, path: str, permission, ctx: OpContext):
        raise NotImplementedError
        yield  # pragma: no cover


class IdAllocator:
    """Monotonic inode-id allocator shared by bulk loading and proxies.

    Real deployments hand out per-proxy id ranges; a shared counter has the
    same correctness properties and no simulated cost, so we keep it simple.
    """

    def __init__(self, start: int = 2):
        self._counter = itertools.count(start)

    def next(self) -> int:
        return next(self._counter)
