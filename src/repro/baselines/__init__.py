"""Baseline metadata services the paper compares against (§6.1).

Faithful re-implementations, as the paper itself did ("we re-implement them
faithfully since they are not public"):

* :mod:`~repro.baselines.tectonic` — the DBtable approach: level-by-level
  path resolution over sharded tables, relaxed consistency for directory
  updates (no distributed transactions);
* :mod:`~repro.baselines.infinifs` — speculative parallel path resolution,
  AM-Cache metadata caching, CFS-style two-transaction directory updates and
  a dedicated rename coordinator;
* :mod:`~repro.baselines.locofs` — tiered design: a central directory
  metadata server (Raft-replicated) plus a scalable object-metadata DB.

All of them implement :class:`repro.baselines.base.MetadataSystem`, the same
interface Mantle exposes, so workloads and benchmarks are system-agnostic.
"""

from repro.baselines.base import MetadataSystem
from repro.baselines.tectonic import TectonicSystem
from repro.baselines.infinifs import InfiniFSSystem
from repro.baselines.locofs import LocoFSSystem

__all__ = [
    "MetadataSystem",
    "TectonicSystem",
    "InfiniFSSystem",
    "LocoFSSystem",
]
