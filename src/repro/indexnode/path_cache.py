"""TopDirPathCache — the static truncate-k prefix cache (§5.1.1).

Maps a *truncated* path prefix (the full path minus its final ``k``
components) to the resolved directory id and the Lazy-Hybrid aggregated
permission of that prefix.  Deliberately not an LRU: entries are only ever
inserted after a full resolution and removed by the Invalidator; there is no
runtime promotion/demotion, which is the design point that keeps maintenance
cheap.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.paths import truncate_prefix
from repro.types import Permission


@dataclasses.dataclass(frozen=True)
class CacheEntry:
    """Resolution result for one cached prefix."""

    dir_id: int
    permission: Permission


class TopDirPathCache:
    """Hash map from truncated path prefixes to resolution results.

    ``k`` is the distance from the leaf below which paths are never cached;
    resolving a depth-N path consults the cache for the first N-k
    components.  Production uses k=3 (Figure 18).
    """

    #: Estimated bytes per entry for the Figure 18 memory comparison:
    #: key string + id + permission + hash-table overhead.
    ENTRY_OVERHEAD_BYTES = 48

    def __init__(self, k: int = 3, enabled: bool = True):
        if k < 0:
            raise ValueError("k must be >= 0")
        self.k = k
        self.enabled = enabled
        self._entries: Dict[str, CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._entries

    def cacheable_prefix(self, path: str) -> Optional[str]:
        """The prefix of ``path`` this cache would serve, or None when the
        path is too shallow (within k levels of the root)."""
        if not self.enabled:
            return None
        prefix = truncate_prefix(path, self.k)
        return None if prefix == "/" else prefix

    def probe(self, prefix: str) -> Optional[CacheEntry]:
        entry = self._entries.get(prefix)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def insert(self, prefix: str, dir_id: int, permission: Permission) -> None:
        if not self.enabled:
            return
        if prefix == "/":
            return  # the root never needs caching
        self._entries[prefix] = CacheEntry(dir_id, permission)
        self.inserts += 1

    def remove(self, prefix: str) -> bool:
        if self._entries.pop(prefix, None) is not None:
            self.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        self.invalidations += len(self._entries)
        self._entries.clear()

    @property
    def memory_bytes(self) -> int:
        return sum(len(prefix) + self.ENTRY_OVERHEAD_BYTES
                   for prefix in self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
