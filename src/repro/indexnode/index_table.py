"""The IndexTable: directory access metadata keyed by (pid, dirname).

Figure 6's table, holding for every directory its parent id, name, own id,
permission and the rename lock bit.  A reverse id index supports the
ancestor walks rename loop detection needs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    AlreadyExistsError,
    NoSuchPathError,
    RenameLoopError,
)
from repro.types import ROOT_ID, AccessMeta, Permission


class IndexTable:
    """In-memory map of all directory access metadata for one namespace.

    The root directory (id :data:`~repro.types.ROOT_ID`) is implicit: it has
    no (pid, name) row, permission ALL, and is the starting point of every
    resolution.
    """

    #: Approximate bytes per entry, per the paper ("approximately 80 bytes
    #: per directory") — used for memory accounting, not allocation.
    ENTRY_BYTES = 80

    def __init__(self, root_id: int = ROOT_ID):
        self.root_id = root_id
        self._by_key: Dict[Tuple[int, str], AccessMeta] = {}
        self._by_id: Dict[int, Tuple[int, str]] = {}
        self._children: Dict[int, set] = {}
        # Observability: resolution volume and per-level probe work, the
        # denominator behind cache-efficiency reporting (fig18).
        self.resolve_calls = 0
        self.probe_count = 0

    @property
    def probes_per_resolve(self) -> float:
        """Mean hash probes per ``resolve_dir`` call (0 when unused)."""
        if self.resolve_calls == 0:
            return 0.0
        return self.probe_count / self.resolve_calls

    def __len__(self) -> int:
        return len(self._by_key)

    @property
    def memory_bytes(self) -> int:
        return len(self._by_key) * self.ENTRY_BYTES

    # -- basic CRUD -----------------------------------------------------------

    def get(self, pid: int, name: str) -> Optional[AccessMeta]:
        return self._by_key.get((pid, name))

    def insert(self, meta: AccessMeta) -> None:
        key = (meta.pid, meta.name)
        if key in self._by_key:
            raise AlreadyExistsError(f"{meta.pid}:{meta.name}")
        if meta.id in self._by_id or meta.id == self.root_id:
            raise AlreadyExistsError(f"directory id {meta.id}")
        self._by_key[key] = meta
        self._by_id[meta.id] = key
        self._children.setdefault(meta.pid, set()).add(meta.name)

    def remove(self, pid: int, name: str) -> AccessMeta:
        meta = self._by_key.pop((pid, name), None)
        if meta is None:
            raise NoSuchPathError(f"{pid}:{name}")
        del self._by_id[meta.id]
        bucket = self._children.get(pid)
        if bucket is not None:
            bucket.discard(name)
            if not bucket:
                del self._children[pid]
        return meta

    def children_names(self, pid: int) -> List[str]:
        """Names of child *directories* under ``pid`` (sorted)."""
        return sorted(self._children.get(pid, ()))

    def has_child_dirs(self, pid: int) -> bool:
        return bool(self._children.get(pid))

    def replace(self, meta: AccessMeta) -> None:
        """Overwrite an existing entry (permission / lock-bit updates)."""
        key = (meta.pid, meta.name)
        if key not in self._by_key:
            raise NoSuchPathError(f"{meta.pid}:{meta.name}")
        self._by_key[key] = meta

    def locate(self, dir_id: int) -> Optional[Tuple[int, str]]:
        """Reverse map: directory id -> (pid, name)."""
        if dir_id == self.root_id:
            return None
        return self._by_id.get(dir_id)

    def entries(self) -> Iterator[AccessMeta]:
        return iter(list(self._by_key.values()))

    # -- locks (§5.2.2) ----------------------------------------------------------

    def set_lock(self, pid: int, name: str, owner: str) -> None:
        meta = self._by_key.get((pid, name))
        if meta is None:
            raise NoSuchPathError(f"{pid}:{name}")
        self._by_key[(pid, name)] = meta.with_lock(owner)

    def clear_lock(self, pid: int, name: str, owner: Optional[str] = None) -> bool:
        """Release the lock; with ``owner`` given, only that owner's lock."""
        meta = self._by_key.get((pid, name))
        if meta is None or not meta.locked:
            return False
        if owner is not None and meta.lock_owner != owner:
            return False
        self._by_key[(pid, name)] = meta.without_lock()
        return True

    # -- resolution ----------------------------------------------------------------

    def resolve_dir(self, parts: List[str], start_id: Optional[int] = None,
                    start_perm: Permission = Permission.ALL,
                    path_for_errors: str = "") -> Tuple[int, Permission, int]:
        """Walk ``parts`` from ``start_id``; returns (dir id, aggregated
        permission, levels probed).

        Aggregation follows the Lazy-Hybrid rule: intersect permissions along
        the path.  Raises :class:`NoSuchPathError` on a missing component.
        """
        current = start_id if start_id is not None else self.root_id
        perm = start_perm
        probes = 0
        self.resolve_calls += 1
        try:
            for part in parts:
                meta = self._by_key.get((current, part))
                probes += 1
                if meta is None:
                    raise NoSuchPathError(
                        path_for_errors or "/".join(parts), part)
                perm &= meta.permission
                current = meta.id
        finally:
            self.probe_count += probes
        return current, perm, probes

    # -- ancestor walks (rename loop detection, §5.2.2) ------------------------------

    def path_of(self, dir_id: int) -> str:
        """Reconstruct the full path of a directory (root-relative)."""
        parts: List[str] = []
        current = dir_id
        while current != self.root_id:
            key = self._by_id.get(current)
            if key is None:
                raise NoSuchPathError(f"id:{dir_id}")
            pid, name = key
            parts.append(name)
            current = pid
        return "/" + "/".join(reversed(parts))

    def ancestor_chain(self, dir_id: int) -> List[int]:
        """Ids from ``dir_id`` up to (and including) the root."""
        chain = [dir_id]
        current = dir_id
        while current != self.root_id:
            key = self._by_id.get(current)
            if key is None:
                raise NoSuchPathError(f"id:{dir_id}")
            current = key[0]
            chain.append(current)
        return chain

    def is_ancestor(self, ancestor_id: int, dir_id: int) -> bool:
        """True if ``ancestor_id`` is ``dir_id`` itself or lies above it."""
        return ancestor_id in self.ancestor_chain(dir_id)

    def check_rename_loop(self, src_id: int, dst_parent_id: int) -> None:
        """Raise :class:`RenameLoopError` if moving ``src_id`` under
        ``dst_parent_id`` would create a cycle."""
        if self.is_ancestor(src_id, dst_parent_id):
            raise RenameLoopError(self.path_of(src_id),
                                  self.path_of(dst_parent_id))

    def locked_on_chain(self, from_id: int, stop_id: int) -> List[int]:
        """Ids holding a rename lock on the walk from ``from_id`` up to (but
        excluding) ``stop_id`` — the LCA-to-destination check of Figure 9."""
        locked = []
        current = from_id
        while current != stop_id and current != self.root_id:
            key = self._by_id.get(current)
            if key is None:
                break
            meta = self._by_key[key]
            if meta.locked:
                locked.append(current)
            current = key[0]
        return locked

    # -- rename application -------------------------------------------------------------

    def rename(self, src_pid: int, src_name: str,
               dst_pid: int, dst_name: str) -> AccessMeta:
        """Move one directory entry; clears its lock bit (the paper releases
        the rename lock "when the access metadata of the source directory is
        deleted")."""
        meta = self._by_key.get((src_pid, src_name))
        if meta is None:
            raise NoSuchPathError(f"{src_pid}:{src_name}")
        if (dst_pid, dst_name) in self._by_key:
            raise AlreadyExistsError(f"{dst_pid}:{dst_name}")
        del self._by_key[(src_pid, src_name)]
        bucket = self._children.get(src_pid)
        if bucket is not None:
            bucket.discard(src_name)
            if not bucket:
                del self._children[src_pid]
        moved = dataclasses.replace(meta.without_lock(),
                                    pid=dst_pid, name=dst_name)
        self._by_key[(dst_pid, dst_name)] = moved
        self._by_id[meta.id] = (dst_pid, dst_name)
        self._children.setdefault(dst_pid, set()).add(dst_name)
        return moved
