"""The Invalidator: lock-free-style cache invalidation (§5.1.2).

Two auxiliary structures keep TopDirPathCache coherent with directory
modifications:

* **PrefixTree** (radix tree) mirrors the directory tree of every cached
  prefix so a modification can find all affected cache entries with one
  range query;
* **RemovalList** (skiplist) records full paths of directories currently
  being modified; lookups consult it first (Figure 7 step 1) and bypass the
  cache when a modified path prefixes theirs.

A background thread periodically drains RemovalList, queries PrefixTree for
the affected range, and removes the entries from the cache.  The skiplist's
version counter provides the "conventional timestamp mechanism" lookups use
to decide whether their freshly-resolved prefix may still be cached.
"""

from __future__ import annotations

from typing import List, Optional

from repro.indexnode.path_cache import TopDirPathCache
from repro.paths import is_prefix
from repro.structures.radix_tree import PrefixTree
from repro.structures.skiplist import SkipList


class Invalidator:
    """Coordinates lookups and directory modifications for one replica."""

    def __init__(self, cache: TopDirPathCache):
        self.cache = cache
        self.prefix_tree = PrefixTree()
        self.removal_list = SkipList()
        self.purged_entries = 0
        self.purge_rounds = 0

    # -- lookup-side hooks (Figure 7) -------------------------------------------

    def blocking_modification(self, path: str) -> Optional[str]:
        """Step 1 of the lookup workflow: return a path under modification
        that prefixes ``path`` (lookup must then bypass the cache)."""
        return self.removal_list.contains_prefix_of(path)

    def version(self) -> int:
        """Snapshot for the timestamp conflict check around a resolution."""
        return self.removal_list.version

    def try_cache(self, prefix: str, dir_id: int, permission,
                  version_before: int) -> bool:
        """Cache a freshly-resolved prefix if it is safe (§5.1.2 conditions:
        not already cached, and no modification raced the resolution)."""
        if prefix in self.cache:
            return False
        if self.removal_list.version != version_before:
            return False
        if self.removal_list.contains_prefix_of(prefix) is not None:
            return False
        self.cache.insert(prefix, dir_id, permission)
        self.prefix_tree.insert(prefix)
        return True

    # -- modification-side hooks ---------------------------------------------------

    def mark_modifying(self, path: str) -> None:
        """Record that ``path`` (and so its subtree) is being modified."""
        self.removal_list.insert(path, True)

    def unmark(self, path: str) -> None:
        """Withdraw a mark without purging (aborted rename: nothing changed)."""
        self.removal_list.remove(path)

    def on_rmdir(self, path: str) -> None:
        """rmdir needs no RemovalList entry (§5.1.2: an empty directory
        cannot prefix an existing one) — only its own cached prefix entry,
        if any, must go."""
        if self.prefix_tree.remove(path):
            self.cache.remove(path)
            self.purged_entries += 1

    # -- background purge ------------------------------------------------------------

    def purge_pending(self) -> int:
        """Drain RemovalList and invalidate every affected cache range.

        Returns the number of cache entries removed.  This is the body of
        the Invalidator's background execution thread.
        """
        marked = self.removal_list.pop_all()
        if not marked:
            return 0
        self.purge_rounds += 1
        removed = 0
        for path, _flag in marked:
            for victim in self.prefix_tree.remove_subtree(path):
                if self.cache.remove(victim):
                    removed += 1
        self.purged_entries += removed
        return removed

    # -- introspection ------------------------------------------------------------------

    def pending_paths(self) -> List[str]:
        return list(self.removal_list.keys())

    def cached_under(self, prefix: str) -> List[str]:
        return [p for p in self.prefix_tree.descendants(prefix)
                if is_prefix(prefix, p)]
