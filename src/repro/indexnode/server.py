"""IndexNode RPC surface: lookups, rename preparation, mutation proposals.

One :class:`IndexNodeService` wraps each Raft replica.  Lookups are served
by any replica (followers and learners run the §5.1.3 commitIndex barrier
first); mutations and rename coordination go to the leader, which proposes
commands through Raft and awaits the applied result.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.errors import (
    AlreadyExistsError,
    NoSuchPathError,
    RenameLockConflict,
)
from repro.indexnode.state import IndexNodeState, LookupOutcome
from repro.paths import normalize
from repro.raft.node import NotLeaderError, RaftNode
from repro.sim.core import Interrupt
from repro.sim.host import CostModel, Host
from repro.sim.network import Server
from repro.types import Permission


@dataclasses.dataclass(frozen=True)
class RenamePrep:
    """What rename preparation (Figure 9 steps 1-7) hands back to the proxy."""

    src_pid: int
    src_name: str
    src_id: int
    src_path: str
    dst_parent_id: int
    dst_name: str
    permission: Permission
    loop_probes: int


class IndexNodeService(Server):
    """RPC endpoint for one IndexNode replica."""

    def __init__(self, host: Host, node: RaftNode, state: IndexNodeState,
                 costs: CostModel, purge_period_us: float = 200.0,
                 start_purger: bool = True):
        super().__init__(host)
        self.node = node
        self.state = state
        self.costs = costs
        self.purge_period_us = purge_period_us
        self.lookups_served = 0
        self._purger = None
        if start_purger:
            self._purger = host.sim.process(
                self._purge_loop(), name=f"invalidator-{host.name}")

    # -- background invalidation (§5.1.2) ---------------------------------------

    def _purge_loop(self):
        try:
            while True:
                yield self.sim.timeout(self.purge_period_us)
                if self.host.crashed:
                    continue
                telemetry = self.sim.telemetry
                if telemetry.enabled:
                    # Backlog the invalidator is about to drain: rename
                    # pressure shows up here before cache hit-rate drops.
                    telemetry.gauge("index.invalidator_queue",
                                    self.host.name).set(
                        self.sim._now,
                        len(self.state.invalidator.removal_list))
                removed = self.state.invalidator.purge_pending()
                if removed:
                    tracer = self.sim.tracer
                    if tracer.enabled:
                        span = tracer.begin("index.purge", self.sim.now,
                                            category="maintenance",
                                            host=self.host.name)
                        span.annotate(removed=removed)
                    else:
                        span = None
                    # Range-scan + hash removals are cheap per entry.
                    yield from self.host.work(0.5 * removed)
                    if span is not None:
                        tracer.end(span, self.sim.now)
        except Interrupt:
            return

    def stop(self) -> None:
        if self._purger is not None:
            self._purger.interrupt("stop")
            self._purger = None

    # -- replicated proposals with blocked-on attribution -----------------------

    def _propose_attributed(self, command):
        """Propose through Raft, decomposing the commit wait for tracing.

        The proposing handler blocks from ``propose()`` until its entry is
        applied; with tracing on, the node's commit-timeline stamps split
        that wall time into the costs that gated it:

        * ``raft.queue``  (queue) — batch-window wait until the leader's
          flush started,
        * ``raft.flush``  (fsync) — the leader's log fsync (disk queueing
          included),
        * ``raft.follower_flush`` (fsync) / ``raft.follower_apply`` (cpu)
          — the gating follower's own fsync and apply, piggybacked on its
          AppendReply (charged to the follower's host),
        * ``raft.replicate`` (wire) — the remainder of the post-flush
          wait: the replication round trips themselves, which from the
          waiting handler's perspective are network-shaped.

        Stamps can be missing (sampling raced a leadership change); the
        whole wait is then attributed as a single ``raft.commit`` edge.
        Pure bookkeeping either way: with tracing off this is exactly
        ``yield self.node.propose(command)``.  Under the live runtime the
        decomposition comes from ``SoloRaft.commit``'s wall-clock spans
        instead, so this path defers to ``runtime.propose``.
        """
        tracer = self.sim.tracer
        if not tracer.enabled or self.runtime.kind != "sim":
            result = yield from self.runtime.propose(self.node, command)
            return result
        start = self.sim.now
        waiter = self.node.propose(command)
        try:
            result = yield waiter
        finally:
            stats = self.node.pop_commit_stats(waiter)
        now = self.sim.now
        total = now - start
        host = self.node.host.name
        if stats is not None and "flush_end" in stats:
            queued = min(total, max(0.0, stats["flush_start"] - start))
            flushed = min(total - queued,
                          max(0.0, stats["flush_end"] - stats["flush_start"]))
            # Occupant tag for the batch-window wait: the op whose batch
            # held the log fsync when we proposed; with no flush in
            # progress the wait is the batching config itself.
            tracer.charge_blocked(
                "raft.queue", "queue", queued, host, resource="raft",
                by=stats.get("queued_behind") or ("(batch-window)", None))
            tracer.charge_blocked("raft.flush", "fsync", flushed, host)
            repl = total - queued - flushed
            follower_host = stats.get("follower_host", host)
            f_flush = min(repl, max(0.0, stats.get("follower_flush_us", 0.0)))
            f_apply = min(repl - f_flush,
                          max(0.0, stats.get("follower_apply_us", 0.0)))
            if f_flush > 0.0:
                tracer.charge_blocked("raft.follower_flush", "fsync",
                                      f_flush, follower_host)
            if f_apply > 0.0:
                tracer.charge_blocked("raft.follower_apply", "cpu",
                                      f_apply, follower_host)
            tracer.charge_blocked("raft.replicate", "wire",
                                  repl - f_flush - f_apply, host)
        else:
            tracer.charge_blocked("raft.commit", "wire", total, host)
        return result

    # -- lookups (Figure 7) ---------------------------------------------------------

    def _charge_lookup(self, outcome: LookupOutcome):
        cost = (outcome.index_probes * self.costs.index_probe_us
                + outcome.cache_probes * self.costs.cache_hit_us
                + outcome.depth * self.costs.permission_check_us)
        yield from self.runtime.work(self.host, cost)

    def rpc_lookup(self, path: str, want: str = "parent"):
        """Single-RPC path resolution; serves on leader or replica."""
        tracer = self.sim.tracer
        if tracer.enabled:
            span = tracer.begin("index.lookup", self.sim.now,
                                category="index", host=self.host.name)
        else:
            span = None
        yield from self.runtime.work(
            self.host, self.costs.index_rpc_overhead_us)
        if not self.node.is_leader:
            # §5.1.3: commitIndex barrier keeps replica reads consistent.
            # The wait is dominated by the commitIndex round trip to the
            # leader (shared across concurrent readers), so charge it as a
            # wire-kind blocked edge — otherwise replica reads show the
            # barrier as unexplained idle on the critical path.
            barrier_start = self.sim.now
            yield from self.node.read_barrier()
            if span is not None:
                tracer.charge_blocked("raft.read_barrier", "wire",
                                      self.sim.now - barrier_start,
                                      self.host.name)
        outcome = self.state.lookup(path, want)
        yield from self._charge_lookup(outcome)
        self.lookups_served += 1
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            now = self.sim._now
            host = self.host.name
            if outcome.bypassed_cache:
                telemetry.counter("index.cache_bypass", host).add(now)
            elif outcome.cache_hit:
                telemetry.counter("index.cache_hits", host).add(now)
            else:
                telemetry.counter("index.cache_misses", host).add(now)
            if outcome.index_probes:
                telemetry.counter("index.probes", host).add(
                    now, outcome.index_probes)
        if span is not None:
            span.annotate(cache_hit=outcome.cache_hit,
                          bypassed_cache=outcome.bypassed_cache,
                          index_probes=outcome.index_probes,
                          cache_probes=outcome.cache_probes,
                          depth=outcome.depth)
            tracer.end(span, self.sim.now)
        return outcome

    # -- rename coordination (Figure 9, §5.2.2) ------------------------------------------

    def rpc_rename_prepare(self, src_path: str, dst_path: str, owner: str):
        """Steps 1-7 of the cross-directory rename workflow: resolve both
        paths, lock the source via a Raft-replicated lock bit, and run loop
        detection locally — all in one RPC from the proxy.

        ``owner`` is the client-generated rename UUID; a retried request
        recognises its own lock (§5.3 idempotence).
        """
        yield from self.runtime.work(
            self.host, self.costs.index_rpc_overhead_us)
        if not self.node.is_leader:
            raise NotLeaderError(self.node.leader_hint)
        state = self.state
        src_parent = state.lookup(src_path, want="parent")
        yield from self._charge_lookup(src_parent)
        src_meta = state.table.get(src_parent.target_id, src_parent.final_name)
        if src_meta is None:
            raise NoSuchPathError(src_path, src_parent.final_name)
        dst_parent = state.lookup(dst_path, want="parent")
        yield from self._charge_lookup(dst_parent)

        # Loop detection before locking: moving src under its own subtree.
        chain = state.table.ancestor_chain(dst_parent.target_id)
        yield from self.runtime.work(
            self.host, len(chain) * self.costs.index_probe_us)
        state.table.check_rename_loop(src_meta.id, dst_parent.target_id)

        # Step 4+5: RemovalList insert + lock bit, replicated through Raft.
        src_full = normalize(src_path)
        result = yield from self._propose_attributed(
            ("rename_lock", src_parent.target_id, src_parent.final_name,
             owner, src_full))
        status = result[0]
        if status == "missing":
            raise NoSuchPathError(src_path)
        if status == "locked":
            raise RenameLockConflict(src_full)

        # Step 6: check lock bits from the LCA down to the destination.
        src_chain = set(state.table.ancestor_chain(src_meta.id))
        lca = next(d for d in chain if d in src_chain)
        locked = state.table.locked_on_chain(dst_parent.target_id, lca)
        locked = [d for d in locked if d != src_meta.id]
        yield from self.runtime.work(
            self.host, max(1, len(chain)) * self.costs.index_probe_us)
        if locked:
            # Conflict with another in-flight rename: release and retry.
            yield from self._propose_attributed(
                ("rename_abort", src_parent.target_id,
                 src_parent.final_name, owner, src_full))
            raise RenameLockConflict(state.table.path_of(locked[0]))

        return RenamePrep(
            src_pid=src_parent.target_id,
            src_name=src_parent.final_name,
            src_id=src_meta.id,
            src_path=src_full,
            dst_parent_id=dst_parent.target_id,
            dst_name=dst_parent.final_name,
            permission=src_parent.permission & dst_parent.permission,
            loop_probes=len(chain),
        )

    # -- replicated mutations ------------------------------------------------------------

    def rpc_mutate(self, command: Tuple):
        """Propose one state-machine command and await its applied result."""
        yield from self.runtime.work(
            self.host, self.costs.index_rpc_overhead_us)
        if not self.node.is_leader:
            raise NotLeaderError(self.node.leader_hint)
        result = yield from self._propose_attributed(command)
        return self._translate(command, result)

    @staticmethod
    def _translate(command: Tuple, result: Tuple):
        status = result[0]
        if status == "ok":
            return result[1]
        detail = f"{command[0]}:{command[1:]}"
        if status == "exists":
            raise AlreadyExistsError(detail)
        if status == "missing":
            raise NoSuchPathError(detail)
        if status == "locked":
            raise RenameLockConflict(detail)
        raise RuntimeError(f"indexnode apply failed: {result!r}")
